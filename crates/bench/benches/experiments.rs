//! The experiment suite: regenerates every table of the reconstructed
//! evaluation (`DESIGN.md`, experiment index E1–E11). Runs under
//! `cargo bench -p dgf-bench --bench experiments`; results are recorded
//! in `EXPERIMENTS.md`.

use datagridflows::prelude::*;
use dgf_bench::{
    analysis_flow, maybe_dump_metrics, mesh_dfms, notify_flow, print_table, seed_inputs, star_dfms,
};
use std::time::Instant;

fn main() {
    println!("Datagridflows experiment suite (deterministic; seeds fixed)");
    e1_scalability();
    e2_imploding_star();
    e3_exploding_star();
    e4_triggers();
    e5_planners();
    e6_binding();
    e7_virtual_data();
    e8_replicas();
    e9_provenance();
    e10_lifecycle();
    e11_prototypes();
    println!("\nall experiments completed");
}

/// Acceptance invariant for the E1 scenarios: every completed flow's
/// critical path partitions its makespan exactly — each sim-µs of the
/// flow's lifetime is attributed to exactly one wait state.
fn assert_attribution_invariant(d: &Dfms) {
    for p in d.obs().why_paths() {
        assert_eq!(
            p.segments_sum_us(),
            p.makespan_us(),
            "critical path must partition the makespan of {}",
            p.txn
        );
    }
}

/// E1 — §3.1 scalability: tasks per workflow, concurrent workflows,
/// resource count.
fn e1_scalability() {
    let mut rows = Vec::new();
    for steps in [10usize, 100, 1_000, 10_000] {
        let mut d = mesh_dfms(3, PlannerKind::CostBased, 1);
        let flow = notify_flow("scale", steps);
        let wall = Instant::now();
        let txn = d.submit_flow("u", flow).unwrap();
        d.pump();
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
        assert_attribution_invariant(&d);
        rows.push(vec![
            format!("steps/flow={steps}"),
            format!("{wall_ms:.1}"),
            format!("{:.0}", steps as f64 / (wall_ms / 1e3)),
        ]);
    }
    print_table("E1a: tasks per workflow", &["workload", "engine wall ms", "steps/s"], &rows);

    let mut rows = Vec::new();
    for flows in [1usize, 10, 100, 500] {
        let mut d = mesh_dfms(3, PlannerKind::CostBased, 1);
        let wall = Instant::now();
        let txns: Vec<String> = (0..flows)
            .map(|i| d.submit_flow("u", notify_flow(&format!("f{i}"), 20)).unwrap())
            .collect();
        d.pump();
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        assert!(txns.iter().all(|t| d.status(t, None).unwrap().state == RunState::Completed));
        assert_attribution_invariant(&d);
        rows.push(vec![
            format!("concurrent flows={flows}"),
            format!("{wall_ms:.1}"),
            format!("{:.0}", (flows * 20) as f64 / (wall_ms / 1e3)),
        ]);
    }
    print_table("E1b: concurrent workflows", &["workload", "engine wall ms", "steps/s"], &rows);

    let mut rows = Vec::new();
    for domains in [2u32, 8, 32] {
        let mut d = mesh_dfms(domains, PlannerKind::CostBased, 1);
        let tasks = 256usize;
        let mut b = FlowBuilder::parallel("compute");
        for i in 0..tasks {
            b = b.flow(
                FlowBuilder::sequential(format!("lane{i}"))
                    .step(
                        "t",
                        DglOperation::Execute {
                            code: format!("job{i}"),
                            nominal_secs: "600".into(),
                            resource_type: None,
                            inputs: vec![],
                            outputs: vec![],
                        },
                    )
                    .build()
                    .unwrap(),
            );
        }
        let txn = d.submit_flow("u", b.build().unwrap()).unwrap();
        d.pump();
        assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
        assert_attribution_invariant(&d);
        maybe_dump_metrics(&format!("E1c domains={domains}"), &d);
        rows.push(vec![
            format!("domains={domains} (slots={})", domains * 32),
            format!("{}", d.now()),
        ]);
    }
    print_table(
        "E1c: 256 parallel 600s tasks vs grid size (makespan shrinks with resources)",
        &["grid", "simulated makespan"],
        &rows,
    );
}

/// E2 — §2.1 imploding star: DfMS windowed ILM vs the cron baseline.
fn e2_imploding_star() {
    let mut rows = Vec::new();
    for sources in [4u32, 16, 64] {
        // --- DfMS path -------------------------------------------------
        let mut d = star_dfms(sources, 2);
        let mut seed = FlowBuilder::sequential("seed");
        for h in 0..sources {
            seed = seed.step(format!("mk{h}"), DglOperation::CreateCollection { path: format!("/h{h:02}") });
            for s in 0..3 {
                seed = seed.step(
                    format!("put{h}-{s}"),
                    DglOperation::Ingest {
                        path: format!("/h{h:02}/scan{s}"),
                        size: "200000000".into(),
                        resource: format!("hospital{h:02}-disk"),
                    },
                );
            }
        }
        d.submit_flow("admin", seed.build().unwrap()).unwrap();
        d.pump();
        let srcs: Vec<_> = (0..sources)
            .map(|h| (LogicalPath::parse(&format!("/h{h:02}")).unwrap(), format!("hospital{h:02}-disk")))
            .collect();
        let star = imploding_star_flow(d.grid(), &srcs, "archiver-disk", "archiver-tape").unwrap();
        let options = RunOptions { window: Some(ScheduleWindow::weekends()), ..Default::default() };
        let txn = d.submit_flow_with("admin", star, options).unwrap();
        d.pump_until(SimTime::from_days(14));
        let report = d.status(&txn, None).unwrap();
        let violations = d
            .grid()
            .events()
            .iter()
            .filter(|e| {
                matches!(e.kind, EventKind::ObjectMigrated | EventKind::ObjectReplicated)
                    && !matches!(e.time.day_of_week(), 5 | 6)
            })
            .count();
        maybe_dump_metrics(&format!("E2 sources={sources} (DfMS)"), &d);
        rows.push(vec![
            format!("{sources}"),
            "DfMS (weekend window)".into(),
            report.state.to_string(),
            format!("{:.1}", d.metrics().bytes_moved as f64 / 1e9),
            violations.to_string(),
            d.provenance().len().to_string(),
        ]);

        // --- cron baseline ----------------------------------------------
        let mut d = star_dfms(sources, 2);
        let mut seed = FlowBuilder::sequential("seed");
        for h in 0..sources {
            seed = seed.step(format!("mk{h}"), DglOperation::CreateCollection { path: format!("/h{h:02}") });
            for s in 0..3 {
                seed = seed.step(
                    format!("put{h}-{s}"),
                    DglOperation::Ingest {
                        path: format!("/h{h:02}/scan{s}"),
                        size: "200000000".into(),
                        resource: format!("hospital{h:02}-disk"),
                    },
                );
            }
        }
        d.submit_flow("admin", seed.build().unwrap()).unwrap();
        d.pump();
        let mut cron = CronScriptIlm::new();
        for h in 0..sources {
            cron.add_entry(CronEntry {
                domain: format!("hospital{h:02}"),
                user: "admin".into(),
                hour: 2, // every night at 02:00 — cron knows no windows
                rule: CronRule::PushTo {
                    scope: LogicalPath::parse(&format!("/h{h:02}")).unwrap(),
                    dst_resource: "archiver-disk".into(),
                },
            });
        }
        // Grid mutation needs the grid out of the engine: use grid_mut.
        let from = SimTime::ZERO;
        let to = SimTime::from_days(14);
        cron.run_between(d.grid_mut(), from, to);
        let s = cron.stats();
        let violations = d
            .grid()
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::ObjectReplicated && !matches!(e.time.day_of_week(), 5 | 6))
            .count();
        rows.push(vec![
            format!("{sources}"),
            "cron scripts (02:00 nightly)".into(),
            "done (no status API)".into(),
            format!("{:.1}", s.bytes_moved as f64 / 1e9),
            violations.to_string(),
            "0".into(),
        ]);
    }
    print_table(
        "E2: imploding star (hospitals → archiver), DfMS vs cron",
        &["hospitals", "system", "final status", "GB moved", "window violations", "provenance records"],
        &rows,
    );
}

/// E3 — §2.1 exploding star: staged tier replication.
fn e3_exploding_star() {
    let mut rows = Vec::new();
    for (t1, t2) in [(2u32, 2u32), (4, 3)] {
        let topology = GridBuilder::preset(GridPreset::Tiered { tier1: t1, tier2_per_tier1: t2 });
        let mut users = UserRegistry::new();
        users.register(Principal::new("u", topology.domain_by_name("tier0").unwrap()));
        users.make_admin("u").unwrap();
        let mut d = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 3));
        let mut seed = FlowBuilder::sequential("seed")
            .step("mk", DglOperation::CreateCollection { path: "/run".into() });
        for e in 0..4 {
            seed = seed.step(
                format!("e{e}"),
                DglOperation::Ingest { path: format!("/run/evt{e}"), size: "1000000000".into(), resource: "tier0-pfs".into() },
            );
        }
        d.submit_flow("u", seed.build().unwrap()).unwrap();
        d.pump();
        let seeded_bytes = d.metrics().bytes_moved;
        let tiers = vec![
            TierSpec {
                label: "tier1".into(),
                fanout: (0..t1).map(|i| ("tier0-pfs".to_owned(), format!("tier1-{i}-disk"))).collect(),
            },
            TierSpec {
                label: "tier2".into(),
                fanout: (0..t1)
                    .flat_map(|i| (0..t2).map(move |j| (format!("tier1-{i}-disk"), format!("tier2-{i}-{j}-disk"))))
                    .collect(),
            },
        ];
        let star = exploding_star_flow(d.grid(), &LogicalPath::parse("/run").unwrap(), &tiers).unwrap();
        let start = d.now();
        let txn = d.submit_flow("u", star).unwrap();
        // Sample when tier-1 finished: poll status of stage 0.
        let mut tier1_done: Option<SimTime> = None;
        loop {
            let before = d.now();
            if d.pump_until(before + Duration::from_secs(30)) == 0 && d.status(&txn, None).unwrap().state.is_terminal() {
                break;
            }
            if tier1_done.is_none() {
                if let Ok(s) = d.status(&txn, Some("/0")) {
                    if s.state == RunState::Completed {
                        tier1_done = Some(d.now());
                    }
                }
            }
            if d.status(&txn, None).unwrap().state.is_terminal() {
                break;
            }
        }
        assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
        maybe_dump_metrics(&format!("E3 shape=T1:{t1},T2:{t2}"), &d);
        let moved = (d.metrics().bytes_moved - seeded_bytes) as f64 / 1e9;
        let replicas = d.grid().stats().replicas / d.grid().stats().objects;
        rows.push(vec![
            format!("T1={t1}, T2/T1={t2}"),
            format!("{}", tier1_done.map(|t| t.since(start)).unwrap_or(Duration::ZERO)),
            format!("{}", d.now().since(start)),
            format!("{moved:.1}"),
            replicas.to_string(),
        ]);
    }
    print_table(
        "E3: exploding star (4 GB dataset staged through tiers)",
        &["shape", "tier-1 complete", "total makespan", "GB moved", "replicas/object"],
        &rows,
    );
}

/// E4 — §2.2 triggers: event-storm throughput, ordering, cascades.
fn e4_triggers() {
    let mut rows = Vec::new();
    for (events, trigger_count) in [(200usize, 1usize), (200, 10), (200, 100), (2_000, 10)] {
        let mut d = mesh_dfms(1, PlannerKind::CostBased, 4);
        for t in 0..trigger_count {
            d.triggers_mut().register(
                Trigger::new(
                    format!("t{t}"),
                    "u",
                    LogicalPath::parse("/in").unwrap(),
                    TriggerAction::Notify(format!("t{t}: ${{event.path}}")),
                )
                .on(&[EventKind::ObjectIngested])
                .when(Expr::parse("object.size > 50").unwrap()),
            );
        }
        let mut b = FlowBuilder::sequential("storm")
            .step("mk", DglOperation::CreateCollection { path: "/in".into() });
        for i in 0..events {
            b = b.step(
                format!("p{i}"),
                DglOperation::Ingest { path: format!("/in/f{i}"), size: "100".into(), resource: "site0-disk".into() },
            );
        }
        let wall = Instant::now();
        d.submit_flow("u", b.build().unwrap()).unwrap();
        d.pump();
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        let stats = d.triggers().stats();
        maybe_dump_metrics(&format!("E4a events={events} triggers={trigger_count}"), &d);
        rows.push(vec![
            format!("{events}"),
            format!("{trigger_count}"),
            format!("{}", stats.fired),
            format!("{wall_ms:.1}"),
            format!("{:.0}", stats.events_seen as f64 / (wall_ms / 1e3)),
        ]);
    }
    print_table(
        "E4a: trigger event storms",
        &["events", "triggers", "firings", "wall ms", "events/s"],
        &rows,
    );

    // Cascade-depth ablation: a trigger whose flow re-ingests (a classic
    // feedback loop), suppressed at different depth limits.
    let mut rows = Vec::new();
    for max_depth in [1u32, 2, 4, 8] {
        let mut d = mesh_dfms(1, PlannerKind::CostBased, 4);
        *d.triggers_mut() = std::mem::take(d.triggers_mut()).with_max_depth(max_depth);
        let echo_flow = FlowBuilder::sequential("echo")
            .add_step(
                Step::new(
                    "again",
                    DglOperation::Ingest { path: "${event.path}-x".into(), size: "10".into(), resource: "site0-disk".into() },
                )
                .with_error_policy(ErrorPolicy::Ignore),
            )
            .build()
            .unwrap();
        d.triggers_mut().register(
            Trigger::new("echo", "u", LogicalPath::root(), TriggerAction::Flow(echo_flow))
                .on(&[EventKind::ObjectIngested]),
        );
        let flow = FlowBuilder::sequential("seed")
            .step("p", DglOperation::Ingest { path: "/seed".into(), size: "10".into(), resource: "site0-disk".into() })
            .build()
            .unwrap();
        d.submit_flow("u", flow).unwrap();
        d.pump();
        let stats = d.triggers().stats();
        rows.push(vec![
            max_depth.to_string(),
            stats.fired.to_string(),
            stats.suppressed_by_depth.to_string(),
            d.grid().stats().objects.to_string(),
        ]);
    }
    print_table(
        "E4b: cascade control (self-feeding trigger)",
        &["depth limit", "fired", "suppressed", "objects created"],
        &rows,
    );

    // Ordering-policy ablation: two users' triggers race on the same
    // event; under non-transactional semantics the policy decides whose
    // effect lands first — observable in the final state.
    let mut rows = Vec::new();
    for (label, policy) in [
        ("registration", OrderingPolicy::Registration),
        ("priority", OrderingPolicy::Priority),
        ("owner-rank [bob, alice]", OrderingPolicy::OwnerRank(vec!["bob".into(), "alice".into()])),
    ] {
        let mut d = mesh_dfms(1, PlannerKind::CostBased, 4);
        let home = d.grid().topology().domain_ids().next().unwrap();
        d.grid_mut().users_mut().register(Principal::new("alice", home));
        d.grid_mut().users_mut().register(Principal::new("bob", home));
        d.grid_mut().users_mut().make_admin("alice").unwrap();
        d.grid_mut().users_mut().make_admin("bob").unwrap();
        *d.triggers_mut() = std::mem::take(d.triggers_mut()).with_policy(policy);
        // Both triggers stamp the same metadata attribute; last writer is
        // whoever the policy fires second.
        for (owner, priority) in [("alice", 1), ("bob", 10)] {
            let stamp = FlowBuilder::sequential("stamp")
                .step(
                    "tag",
                    DglOperation::SetMetadata { path: "${event.path}".into(), attribute: "stamped-by".into(), value: owner.into() },
                )
                .build()
                .unwrap();
            d.triggers_mut().register(
                Trigger::new(format!("{owner}-stamp"), owner, LogicalPath::root(), TriggerAction::Flow(stamp))
                    .on(&[EventKind::ObjectIngested])
                    .with_priority(priority),
            );
        }
        let flow = FlowBuilder::sequential("seed")
            .step("p", DglOperation::Ingest { path: "/contested".into(), size: "1".into(), resource: "site0-disk".into() })
            .build()
            .unwrap();
        d.submit_flow("u", flow).unwrap();
        d.pump();
        let final_stamp = d
            .grid()
            .stat_object(&LogicalPath::parse("/contested").unwrap())
            .unwrap()
            .metadata
            .iter()
            .rfind(|t| t.attribute == "stamped-by")
            .map(|t| t.value.clone())
            .unwrap_or_default();
        rows.push(vec![label.to_string(), final_stamp]);
    }
    print_table(
        "E4c: trigger ordering policy decides the last writer (§2.2)",
        &["policy", "final stamped-by"],
        &rows,
    );
}

/// E5 — §2.3 planners on a data-intensive workload, plus cost-term
/// ablation.
fn e5_planners() {
    let run = |planner: PlannerKind, weights: Option<CostWeights>| {
        let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 4 });
        let mut users = UserRegistry::new();
        users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
        users.make_admin("u").unwrap();
        let mut scheduler = Scheduler::new(planner, 42);
        if let Some(w) = weights {
            scheduler = scheduler.with_weights(w);
        }
        let mut d = Dfms::new(DataGrid::new(topology, users), scheduler);
        seed_inputs(&mut d, 8, 2_000_000_000);
        let seeded = d.metrics().bytes_moved;
        let start = d.now();
        let txn = d.submit_flow("u", analysis_flow("e5", 8, 300)).unwrap();
        d.pump();
        assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
        maybe_dump_metrics(&format!("E5a planner={planner}"), &d);
        let moved = (d.metrics().bytes_moved - seeded) as f64 / 1e9;
        (moved, d.now().since(start))
    };
    let mut rows = Vec::new();
    for planner in PlannerKind::ALL {
        let (moved, makespan) = run(planner, None);
        rows.push(vec![planner.to_string(), format!("{moved:.1}"), format!("{makespan}")]);
    }
    print_table(
        "E5a: planners on 8×(2 GB input, 300 s) tasks, data at site0",
        &["planner", "GB moved", "makespan"],
        &rows,
    );

    // Ablation needs a real trade-off: the data sits next to a *slow*
    // cluster; a fast cluster is one WAN hop away. Makespan-weights move
    // the data; data-movement-weights stay local and run slow.
    let run_hetero = |weights: CostWeights| {
        let mut builder = GridBuilder::new();
        let slow = builder.add_site("slowsite", 32);
        let fast = builder.add_site("fastsite", 32);
        builder.wan_link(slow, fast);
        let topology = {
            let mut t = builder.build();
            let slow_cluster = t.domain(slow).compute[0];
            let fast_cluster = t.domain(fast).compute[0];
            t.compute_mut(slow_cluster).speed = 0.1; // 10× slower
            t.compute_mut(fast_cluster).speed = 2.0;
            t
        };
        let mut users = UserRegistry::new();
        users.register(Principal::new("u", slow));
        users.make_admin("u").unwrap();
        let mut d = Dfms::new(
            DataGrid::new(topology, users),
            Scheduler::new(PlannerKind::CostBased, 42).with_weights(weights),
        );
        // 2 GB of input at the slow site.
        let seed = FlowBuilder::sequential("seed")
            .step("mk", DglOperation::CreateCollection { path: "/data".into() })
            .step("put", DglOperation::Ingest { path: "/data/in0".into(), size: "2000000000".into(), resource: "slowsite-pfs".into() })
            .build()
            .unwrap();
        d.submit_flow("u", seed).unwrap();
        d.pump();
        let seeded = d.metrics().bytes_moved;
        let start = d.now();
        let txn = d.submit_flow("u", analysis_flow("e5b", 1, 600)).unwrap();
        d.pump();
        assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
        let moved = (d.metrics().bytes_moved - seeded) as f64 / 1e9;
        (moved, d.now().since(start))
    };
    let mut rows = Vec::new();
    for (label, weights) in [
        ("balanced (default)", CostWeights::default()),
        ("makespan-only", CostWeights::makespan_only()),
        ("data-movement-only", CostWeights::data_only()),
    ] {
        let (moved, makespan) = run_hetero(weights);
        rows.push(vec![label.to_string(), format!("{moved:.1}"), format!("{makespan}")]);
    }
    print_table(
        "E5b: cost-term ablation (2 GB input at a 10x-slow site; fast site one hop away)",
        &["weights", "GB moved", "makespan"],
        &rows,
    );
}

/// E6 — §2.3 late vs early binding under resource churn.
fn e6_binding() {
    let run = |mode: BindingMode, mtbf_hours: u64, seed: u64| {
        let mut d = mesh_dfms(4, PlannerKind::RoundRobin, seed);
        d.set_binding_mode(mode);
        let tasks = 24;
        let flow = {
            let mut b = FlowBuilder::sequential("churny");
            for i in 0..tasks {
                b = b.add_step(
                    Step::new(
                        format!("t{i}"),
                        DglOperation::Execute { code: format!("j{i}"), nominal_secs: "120".into(), resource_type: None, inputs: vec![], outputs: vec![] },
                    )
                    .with_error_policy(ErrorPolicy::Retry(1)),
                );
            }
            b.build().unwrap()
        };
        let plan = if mtbf_hours == 0 {
            FailurePlan::none()
        } else {
            FailurePlan::generate(
                d.grid().topology(),
                Duration::from_days(2),
                Duration::from_hours(mtbf_hours),
                Duration::from_hours(1),
                seed,
            )
        };
        let txn = d.submit_flow("u", flow).unwrap();
        // Interleave failure events with engine pumping.
        let mut cursor = SimTime::ZERO;
        let state = loop {
            let next = cursor + Duration::from_secs(60);
            d.pump_until(next);
            let events = plan.apply_between(d.grid_mut().topology_mut(), cursor, next);
            let _ = events;
            cursor = next;
            let state = d.status(&txn, None).unwrap().state;
            if state.is_terminal() {
                break state;
            }
            if cursor > SimTime::from_days(2) {
                break d.status(&txn, None).unwrap().state;
            }
        };
        maybe_dump_metrics(&format!("E6 {mode:?} mtbf={mtbf_hours}h seed={seed}"), &d);
        state
    };
    let mut rows = Vec::new();
    for (label, mtbf) in [("no churn", 0u64), ("MTBF 8h", 8), ("MTBF 1h", 1)] {
        let mut late_ok = 0;
        let mut early_ok = 0;
        let trials = 5;
        for seed in 0..trials {
            if run(BindingMode::Late, mtbf, seed) == RunState::Completed {
                late_ok += 1;
            }
            if run(BindingMode::Early, mtbf, seed) == RunState::Completed {
                early_ok += 1;
            }
        }
        rows.push(vec![
            label.to_string(),
            format!("{late_ok}/{trials}"),
            format!("{early_ok}/{trials}"),
        ]);
    }
    print_table(
        "E6: 24-task workflows completing under churn (late vs early binding, retry=1)",
        &["churn", "late binding", "early binding"],
        &rows,
    );
}

/// E7 — §2.3 virtual data: derivation reuse.
fn e7_virtual_data() {
    let mut rows = Vec::new();
    for reuse_pct in [0usize, 25, 50, 75, 100] {
        let mut d = mesh_dfms(2, PlannerKind::CostBased, 5);
        seed_inputs(&mut d, 8, 1_000);
        let tasks = 8;
        let repeated = tasks * reuse_pct / 100;
        // First wave derives `repeated` of the products.
        if repeated > 0 {
            let txn = d.submit_flow("u", analysis_flow("warm", repeated, 600)).unwrap();
            d.pump();
            assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
        }
        // Second wave derives all 8 — the warm ones should be skipped.
        // (Same codes+inputs for the first `repeated`, new for the rest.)
        let mut b = FlowBuilder::sequential("wave2");
        for i in 0..tasks {
            let (code, out) = if i < repeated {
                (format!("warm-job{i}"), format!("/data/warm-out{i}"))
            } else {
                (format!("cold-job{i}"), format!("/data/cold-out{i}"))
            };
            b = b.step(
                format!("t{i}"),
                DglOperation::Execute {
                    code,
                    nominal_secs: "600".into(),
                    resource_type: None,
                    inputs: vec![format!("/data/in{i}")],
                    outputs: vec![(out, "1000".into())],
                },
            );
        }
        let start = d.now();
        let txn = d.submit_flow("u", b.build().unwrap()).unwrap();
        d.pump();
        assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
        maybe_dump_metrics(&format!("E7 reuse={reuse_pct}%"), &d);
        let (hits, _misses) = d.catalog().stats();
        rows.push(vec![
            format!("{reuse_pct}%"),
            format!("{}", d.metrics().steps_skipped_virtual),
            format!("{hits}"),
            format!("{}", d.now().since(start)),
        ]);
    }
    print_table(
        "E7: virtual data (8 × 600 s derivations, varying reuse)",
        &["reuse", "derivations skipped", "catalog hits", "wave-2 makespan"],
        &rows,
    );
}

/// E8 — replica selection: more replicas, shorter transfers.
fn e8_replicas() {
    let mut rows = Vec::new();
    for replicas in [1usize, 2, 4, 8] {
        // A consumer site connected to 8 provider sites over links of
        // increasing bandwidth: provider k gets 10*(k+1) MB/s. Replicas
        // are placed slowest-provider-first, so each added replica opens
        // a faster path for the DGMS replica selector.
        let mut builder = GridBuilder::new();
        let consumer = builder.add_site("consumer", 8);
        let providers: Vec<_> = (0..8).map(|k| builder.add_leaf_site(&format!("prov{k}"))).collect();
        for (k, p) in providers.iter().enumerate() {
            builder.link(*p, consumer, Duration::from_millis(40), (10 + 10 * k as u64) * 1_000_000);
        }
        let topology = builder.build();
        let mut users = UserRegistry::new();
        users.register(Principal::new("u", consumer));
        users.make_admin("u").unwrap();
        let mut d = Dfms::new(DataGrid::new(topology, users), Scheduler::new(PlannerKind::CostBased, 6));
        let mut b = FlowBuilder::sequential("seed")
            .step("put", DglOperation::Ingest { path: "/big".into(), size: "4000000000".into(), resource: "prov0-disk".into() });
        for r in 1..replicas {
            b = b.step(
                format!("cp{r}"),
                DglOperation::Replicate { path: "/big".into(), src: Some("prov0-disk".into()), dst: format!("prov{r}-disk") },
            );
        }
        d.submit_flow("u", b.build().unwrap()).unwrap();
        d.pump();
        let consume = FlowBuilder::sequential("consume")
            .step("cp", DglOperation::Replicate { path: "/big".into(), src: None, dst: "consumer-disk".into() })
            .build()
            .unwrap();
        let start = d.now();
        let txn = d.submit_flow("u", consume).unwrap();
        d.pump();
        assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
        maybe_dump_metrics(&format!("E8 replicas={replicas}"), &d);
        rows.push(vec![replicas.to_string(), format!("{}", d.now().since(start))]);
    }
    print_table(
        "E8: replica selection (4 GB to the consumer; replica k sits behind a 10(k+1) MB/s link)",
        &["replicas available", "transfer time"],
        &rows,
    );
}

/// E9 — provenance capture overhead and query latency vs log size.
fn e9_provenance() {
    let mut rows = Vec::new();
    for steps in [1_000usize, 10_000, 50_000] {
        let mut d = mesh_dfms(1, PlannerKind::CostBased, 9);
        let txn = d.submit_flow("u", notify_flow("p", steps)).unwrap();
        d.pump();
        assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
        maybe_dump_metrics(&format!("E9 steps={steps}"), &d);
        let records = d.provenance().len();
        let wall = Instant::now();
        let hits = d.provenance().query(&ProvenanceQuery::transaction(&txn)).len();
        let query_us = wall.elapsed().as_secs_f64() * 1e6;
        let wall = Instant::now();
        let snapshot = d.provenance().snapshot();
        let snap_ms = wall.elapsed().as_secs_f64() * 1e3;
        let wall = Instant::now();
        let restored = ProvenanceStore::restore(&snapshot).unwrap();
        let restore_ms = wall.elapsed().as_secs_f64() * 1e3;
        assert_eq!(restored.len(), records);
        rows.push(vec![
            records.to_string(),
            hits.to_string(),
            format!("{query_us:.0}"),
            format!("{:.1}", snapshot.len() as f64 / 1e6),
            format!("{snap_ms:.1}"),
            format!("{restore_ms:.1}"),
        ]);
    }
    print_table(
        "E9: provenance store scaling",
        &["records", "query hits", "query µs", "snapshot MB", "snapshot ms", "restore ms"],
        &rows,
    );
}

/// E10 — §3.1 lifecycle + §5 client-side contrast: work lost on
/// interruption.
fn e10_lifecycle() {
    let steps = 20usize;
    let mut rows = Vec::new();
    for stop_frac in [25usize, 50, 75] {
        let stop_after = steps * stop_frac / 100;
        // --- DfMS: stop mid-run, restart, count re-executed steps. ------
        let mut d = mesh_dfms(2, PlannerKind::CostBased, 10);
        let flow = {
            let mut b = FlowBuilder::sequential("work");
            for i in 0..steps {
                b = b.step(
                    format!("s{i}"),
                    DglOperation::Ingest { path: format!("/f{i}"), size: "80000000".into(), resource: "site0-disk".into() },
                );
            }
            b.build().unwrap()
        };
        let txn = d.submit_flow("u", flow.clone()).unwrap();
        // Each step ≈ 1 s; stop after `stop_after` steps' worth of time.
        d.pump_until(SimTime::from_secs(stop_after as u64) + Duration::from_millis(500));
        let done_before = d.status(&txn, None).unwrap().steps_completed;
        d.stop(&txn).unwrap();
        d.pump();
        let txn2 = d.restart(&txn).unwrap();
        let executed_before = d.metrics().steps_executed;
        d.pump();
        assert_eq!(d.status(&txn2, None).unwrap().state, RunState::Completed);
        maybe_dump_metrics(&format!("E10 stop={stop_frac}%"), &d);
        let re_executed = d.metrics().steps_executed - executed_before;
        let skipped = d.metrics().steps_skipped_restart;
        rows.push(vec![
            format!("{stop_frac}%"),
            "DfMS stop+restart".into(),
            done_before.to_string(),
            skipped.to_string(),
            re_executed.to_string(),
        ]);

        // --- client-side engine: crash loses the bookmark. --------------
        let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
        let mut users = UserRegistry::new();
        users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
        users.make_admin("u").unwrap();
        let mut grid = DataGrid::new(topology, users);
        let mut client = ClientSideEngine::new("u");
        let (s1, t1) = client.run(&mut grid, &flow, SimTime::ZERO, Some(ClientCrash { after_steps: stop_after }));
        assert!(!s1.completed);
        client.crash_and_restart();
        let (s2, _) = client.run(&mut grid, &flow, t1, None);
        assert!(s2.completed);
        rows.push(vec![
            format!("{stop_frac}%"),
            "client-side crash+rerun".into(),
            s1.steps_executed.to_string(),
            "0".into(),
            s2.steps_executed.to_string(),
        ]);
    }
    print_table(
        "E10: interruption recovery on a 20-step flow",
        &["interrupted at", "system", "steps done before", "steps skipped on recovery", "steps executed on recovery"],
        &rows,
    );
}

/// E11 — the §4 prototype runs, end to end.
fn e11_prototypes() {
    let mut rows = Vec::new();
    // UCSD Libraries MD5 integrity pipeline.
    {
        let mut d = mesh_dfms(2, PlannerKind::CostBased, 11);
        let mut b = FlowBuilder::sequential("ucsd")
            .step("mk", DglOperation::CreateCollection { path: "/lib".into() });
        for i in 0..10 {
            b = b
                .step(format!("put{i}"), DglOperation::Ingest { path: format!("/lib/d{i}"), size: "20000000".into(), resource: "site0-disk".into() })
                .step(format!("sum{i}"), DglOperation::Checksum { path: format!("/lib/d{i}"), resource: None, register: true })
                .step(format!("cp{i}"), DglOperation::Replicate { path: format!("/lib/d{i}"), src: None, dst: "site1-disk".into() });
        }
        d.submit_flow("u", b.build().unwrap()).unwrap();
        d.pump();
        d.grid_mut().corrupt_replica(&LogicalPath::parse("/lib/d4").unwrap(), "site1-disk").unwrap();
        let sweep = FlowBuilder::for_each_in_collection("sweep", "f", "/lib")
            .add_step(
                Step::new("verify", DglOperation::Checksum { path: "${f}".into(), resource: Some("site1-disk".into()), register: false })
                    .with_error_policy(ErrorPolicy::Ignore),
            )
            .build()
            .unwrap();
        let txn = d.submit_flow("u", sweep).unwrap();
        d.pump();
        let mismatches = d.grid().events().iter().filter(|e| e.kind == EventKind::ChecksumMismatch).count();
        maybe_dump_metrics("E11 ucsd-md5", &d);
        rows.push(vec![
            "UCSD MD5 integrity".into(),
            d.status(&txn, None).unwrap().state.to_string(),
            format!("{}", d.metrics().dgms_ops),
            format!("{:.2}", d.metrics().bytes_moved as f64 / 1e9),
            format!("{}", d.now()),
            format!("{mismatches} corruption(s) found"),
        ]);
    }
    // SCEC ingest + derive pipeline.
    {
        let mut d = mesh_dfms(3, PlannerKind::CostBased, 12);
        let mut b = FlowBuilder::sequential("scec")
            .step("mk", DglOperation::CreateCollection { path: "/scec".into() });
        for i in 0..4 {
            b = b
                .step(format!("in{i}"), DglOperation::Ingest { path: format!("/scec/w{i}"), size: "2000000000".into(), resource: "site0-pfs".into() })
                .step(
                    format!("dv{i}"),
                    DglOperation::Execute {
                        code: format!("pgm{i}"),
                        nominal_secs: "1800".into(),
                        resource_type: None,
                        inputs: vec![format!("/scec/w{i}")],
                        outputs: vec![(format!("/scec/pgm{i}"), "50000000".into())],
                    },
                )
                .step(format!("ar{i}"), DglOperation::Replicate { path: format!("/scec/pgm{i}"), src: None, dst: "site1-archive".into() });
        }
        let txn = d.submit_flow("u", b.build().unwrap()).unwrap();
        d.pump();
        rows.push(vec![
            "SCEC ingest+derive".into(),
            d.status(&txn, None).unwrap().state.to_string(),
            format!("{}", d.metrics().dgms_ops),
            format!("{:.2}", d.metrics().bytes_moved as f64 / 1e9),
            format!("{}", d.now()),
            format!("{} exec tasks", d.metrics().exec_tasks),
        ]);
    }
    print_table(
        "E11: the paper's §4 prototype runs",
        &["pipeline", "status", "DGMS ops", "GB moved", "simulated time", "notes"],
        &rows,
    );
}
