//! Time-travel micro-bench: `Dfms::recover_to` latency as a function
//! of the requested ordinal's distance from genesis.
//!
//! Replay-to-ordinal re-drives the command script from genesis and
//! halts once the limiting transition derives, so materialization cost
//! should grow roughly linearly with the *target* ordinal, not the
//! journal length — stepping to early history is cheap even in a long
//! journal, and a bisection's probes get cheaper as the search narrows
//! toward early ordinals. Plain `main` harness (like `experiments`),
//! so it runs in offline environments where criterion is stubbed:
//!
//! ```sh
//! cargo bench -p dgf-bench --bench time_travel
//! ```

use datagridflows::prelude::*;
use dgf_bench::{mesh_dfms, notify_flow, print_table};
use std::path::{Path, PathBuf};
use std::time::Instant;

const LABEL: &str = "bench-grid";
const FLOWS: usize = 400;
const STEPS: usize = 5;

fn factory() -> Dfms {
    mesh_dfms(2, PlannerKind::CostBased, 42)
}

/// Grow a journal with `FLOWS` drained flows of `STEPS` steps each and
/// return its path. Checkpoints are disabled so the journal keeps the
/// full transition history (the worst case for replay length).
fn grow_journal() -> PathBuf {
    let dir = std::env::temp_dir().join("dgf-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("time-travel-{}.dgj", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut d = factory();
    let config = JournalConfig { checkpoint_every: 0, compact_on_checkpoint: false, ..Default::default() };
    d.attach_journal(&path, LABEL, config).unwrap();
    for i in 0..FLOWS {
        d.submit_flow("u", notify_flow(&format!("f{i}"), STEPS)).unwrap();
        d.pump();
    }
    path
}

fn time_materialize(path: &Path, ordinal: Option<u64>) -> (f64, u64) {
    let start = Instant::now();
    let m = Dfms::recover_to(path, LABEL, ordinal, factory).expect("journal replays cleanly");
    (start.elapsed().as_secs_f64() * 1e3, m.transitions_derived)
}

fn main() {
    let path = grow_journal();
    let full = Dfms::recover_to(&path, LABEL, None, factory).expect("journal replays cleanly");
    let last = full.ordinal.expect("the grown journal derives transitions");

    let mut rows = Vec::new();
    for pct in [0u64, 10, 25, 50, 75, 100] {
        let ordinal = last * pct / 100;
        let (ms, derived) = time_materialize(&path, Some(ordinal));
        rows.push(vec![
            format!("{pct}%"),
            ordinal.to_string(),
            derived.to_string(),
            format!("{ms:.2}"),
        ]);
    }
    let (ms, derived) = time_materialize(&path, None);
    rows.push(vec!["end".into(), format!("{last} (full)"), derived.to_string(), format!("{ms:.2}")]);

    print_table(
        &format!("recover_to latency vs ordinal distance ({FLOWS} flows x {STEPS} steps, no compaction)"),
        &["distance", "ordinal", "transitions", "ms"],
        &rows,
    );
    let _ = std::fs::remove_file(&path);
}
