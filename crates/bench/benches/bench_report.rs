//! The BENCH trajectory runner: executes the engine-throughput,
//! journal-replay, and DGL-parse workloads under the deterministic
//! phase profiler (`dgf-prof`) and emits `BENCH_engine.json`.
//!
//! Wall-clock numbers are **report-only** — they vary between machines
//! and runs. The profile *structure* (phase tree shape, call counts,
//! sim-time totals) is deterministic: two runs of this bench on any
//! machine produce identical phase trees. `scripts/verify.sh` gates on
//! exactly that.
//!
//! Plain `main` harness (like `experiments`), so it runs in offline
//! environments where criterion is stubbed:
//!
//! ```sh
//! cargo bench -p dgf-bench --bench bench_report           # full run
//! DGF_BENCH_SMOKE=1 cargo bench -p dgf-bench --bench bench_report
//! DGF_BENCH_OUT=/tmp/b.json ...                           # output path
//! ```

use datagridflows::prelude::*;
use dgf_bench::{mesh_dfms, notify_flow, wide_request};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

// Per-phase allocation deltas in the profile are live only when the
// counting allocator is global — benches opt in, the library never does.
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const LABEL: &str = "bench-grid";

struct WallStats {
    iters: u64,
    min_ns: u64,
    mean_ns: u64,
    max_ns: u64,
}

fn wall_stats(samples: &[u64]) -> WallStats {
    let iters = samples.len() as u64;
    let sum: u64 = samples.iter().sum();
    WallStats {
        iters,
        min_ns: samples.iter().copied().min().unwrap_or(0),
        mean_ns: sum.checked_div(iters).unwrap_or(0),
        max_ns: samples.iter().copied().max().unwrap_or(0),
    }
}

struct WorkloadResult {
    name: &'static str,
    /// Workload size (steps, commands, or documents per iteration).
    size: u64,
    wall: WallStats,
    profile: ProfileSnapshot,
}

/// E1 shape: pure engine overhead — dispatch, provenance, scopes.
fn engine_throughput(iters: usize, steps: usize) -> WorkloadResult {
    let mut samples = Vec::with_capacity(iters);
    let mut profile = ProfileSnapshot::default();
    for _ in 0..iters {
        let mut d = mesh_dfms(1, PlannerKind::CostBased, 1);
        let started = Instant::now();
        let txn = d.submit_flow("u", notify_flow("bench", steps)).unwrap();
        d.pump();
        samples.push(started.elapsed().as_nanos() as u64);
        assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
        profile = d.profile_snapshot();
    }
    WorkloadResult { name: "engine_throughput", size: steps as u64, wall: wall_stats(&samples), profile }
}

/// Crash-recovery shape: replay a journal of `commands` flows. The
/// profile comes from the *recovered* engine — replay drives the same
/// phase scopes live execution does.
fn journal_replay(iters: usize, commands: usize) -> WorkloadResult {
    let dir = std::env::temp_dir().join("dgf-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("bench-report-{}.dgj", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let config = JournalConfig::default();
    let factory = || mesh_dfms(2, PlannerKind::CostBased, 42);
    {
        let mut d = factory();
        d.attach_journal(&path, LABEL, config).unwrap();
        for i in 0..commands {
            d.submit_flow("u", notify_flow(&format!("f{i}"), 4)).unwrap();
            d.pump();
        }
    }
    let mut samples = Vec::with_capacity(iters);
    let mut profile = ProfileSnapshot::default();
    for _ in 0..iters {
        let started = Instant::now();
        let (d, report) = Dfms::recover(&path, LABEL, config, factory).unwrap();
        samples.push(started.elapsed().as_nanos() as u64);
        assert_eq!(report.replay.unwrap().divergences, 0);
        profile = d.profile_snapshot();
    }
    let _ = std::fs::remove_file(&path);
    WorkloadResult { name: "journal_replay", size: commands as u64, wall: wall_stats(&samples), profile }
}

/// F-series shape: DGL document handling without execution — each
/// iteration parses and lints `docs` wide validation requests through
/// the full `handle_xml` path, so the profile shows the dgl-parse and
/// lint-gate phases in isolation.
fn dgl_parse(iters: usize, docs: usize, steps: usize) -> WorkloadResult {
    let flow = match wide_request(steps).body {
        RequestBody::Flow(flow) => flow,
        _ => unreachable!("wide_request builds a flow"),
    };
    let xml = DataGridRequest::validation("bench", "u", flow).to_xml();
    let mut samples = Vec::with_capacity(iters);
    let mut profile = ProfileSnapshot::default();
    for _ in 0..iters {
        let mut d = mesh_dfms(1, PlannerKind::CostBased, 1);
        let started = Instant::now();
        for _ in 0..docs {
            let response = d.handle_xml(&xml);
            assert!(response.contains("validationReport"), "{response}");
        }
        samples.push(started.elapsed().as_nanos() as u64);
        profile = d.profile_snapshot();
    }
    WorkloadResult { name: "dgl_parse", size: docs as u64, wall: wall_stats(&samples), profile }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// One run of the trajectory: a labeled entry holding every workload.
/// No trailing newline — the caller splices it into the document.
fn render_entry(results: &[WorkloadResult], label: &str, smoke: bool) -> String {
    let mut out = String::new();
    out.push_str("    {\n");
    let _ = writeln!(out, "      \"label\": \"{}\",", json_escape(label));
    let _ = writeln!(out, "      \"smoke\": {smoke},");
    out.push_str("      \"workloads\": [\n");
    for (wi, w) in results.iter().enumerate() {
        out.push_str("        {\n");
        let _ = writeln!(out, "          \"name\": \"{}\",", w.name);
        let _ = writeln!(out, "          \"size\": {},", w.size);
        let _ = writeln!(out, "          \"iters\": {},", w.wall.iters);
        let _ = writeln!(
            out,
            "          \"wall_ns\": {{\"min\": {}, \"mean\": {}, \"max\": {}}},",
            w.wall.min_ns, w.wall.mean_ns, w.wall.max_ns
        );
        let _ = writeln!(out, "          \"folded\": \"{}\",", json_escape(&w.profile.folded()));
        out.push_str("          \"profile\": [\n");
        for (ni, node) in w.profile.nodes.iter().enumerate() {
            let _ = write!(
                out,
                "            {{\"phase\": \"{}\", \"depth\": {}, \"calls\": {}, \"sim_us\": {}, \"wall_ns\": {}, \"allocs\": {}}}",
                node.phase.name(),
                node.depth,
                node.stats.calls,
                node.stats.sim_us,
                node.stats.wall_ns,
                node.stats.allocs
            );
            out.push_str(if ni + 1 < w.profile.nodes.len() { ",\n" } else { "\n" });
        }
        out.push_str("          ]\n");
        out.push_str(if wi + 1 < results.len() { "        },\n" } else { "        }\n" });
    }
    out.push_str("      ]\n");
    out.push_str("    }");
    out
}

/// A fresh single-entry trajectory document.
fn render_document(entry: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"engine\",");
    let _ = writeln!(out, "  \"wall_clock_note\": \"wall_ns and allocs are report-only; phases/calls/sim_us are deterministic\",");
    out.push_str("  \"trajectory\": [\n");
    out.push_str(entry);
    out.push_str("\n  ]\n}\n");
    out
}

/// Append the entry to an existing trajectory file, or start a new
/// document. A file in any other shape (the pre-trajectory format, a
/// truncated write) is replaced wholesale rather than corrupted further.
fn append_entry(existing: Option<&str>, entry: &str) -> String {
    const TAIL: &str = "\n  ]\n}\n";
    match existing {
        Some(prev) if prev.contains("\"trajectory\": [") => match prev.strip_suffix(TAIL) {
            Some(head) => format!("{head},\n{entry}{TAIL}"),
            None => render_document(entry),
        },
        _ => render_document(entry),
    }
}

fn main() {
    let smoke = std::env::var("DGF_BENCH_SMOKE").is_ok_and(|v| v != "0");
    let label = std::env::var("DGF_BENCH_LABEL").unwrap_or_else(|_| "dev".to_string());
    let out_path = std::env::var("DGF_BENCH_OUT").map_or_else(|_| PathBuf::from("BENCH_engine.json"), PathBuf::from);
    let (iters, steps, commands, docs) = if smoke { (2, 100, 10, 5) } else { (10, 1_000, 100, 50) };

    println!("dgf-prof bench report ({} mode, label {label:?})", if smoke { "smoke" } else { "full" });
    let results = vec![
        engine_throughput(iters, steps),
        journal_replay(iters, commands),
        dgl_parse(iters, docs, 50),
    ];
    for w in &results {
        println!(
            "  {:18} size={:<5} iters={} wall mean {:.3} ms  ({} profile nodes)",
            w.name,
            w.size,
            w.wall.iters,
            w.wall.mean_ns as f64 / 1e6,
            w.profile.nodes.len()
        );
    }
    let entry = render_entry(&results, &label, smoke);
    let existing = std::fs::read_to_string(&out_path).ok();
    let json = append_entry(existing.as_deref(), &entry);
    std::fs::write(&out_path, &json).expect("write bench report");
    println!("wrote {} ({} trajectory entries)", out_path.display(), json.matches("\"label\": ").count());
}
