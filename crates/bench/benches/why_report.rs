//! Attribution micro-bench: `whyQuery` evaluation and wire rendering
//! against a grid that has completed flows, wait-state history, and
//! resolved SLA alerts.
//!
//! The why report is an operator-console hot path — `dgf_top` refreshes
//! it alongside the telemetry scrape — so critical-path extraction and
//! bottleneck aggregation must stay cheap as the path set grows. Plain
//! `main` harness (like `experiments`), so it runs in offline
//! environments where criterion is stubbed:
//!
//! ```sh
//! cargo bench -p dgf-bench --bench why_report
//! ```

use datagridflows::prelude::*;
use dgf_bench::mesh_dfms;
use std::time::Instant;

/// A two-site grid that completed `flows` pipelines under a class
/// objective. Even flows run locally; odd flows pin their compute to
/// site1 so the critical path crosses the WAN and the bottleneck table
/// has links to blame. Distinct job codes defeat virtual-data
/// memoization — every flow really executes.
fn warmed_dfms(flows: usize) -> Dfms {
    let mut d = mesh_dfms(2, PlannerKind::CostBased, 7);
    d.set_class_objective("batch", Duration::from_secs(900));
    for i in 0..flows {
        let base = format!("/w{i}");
        let pin = if i % 2 == 1 { Some("compute@site1".to_string()) } else { None };
        let flow = FlowBuilder::sequential(format!("why-{i}"))
            .with_class("batch")
            .step("mk", DglOperation::CreateCollection { path: base.clone() })
            .step(
                "put",
                DglOperation::Ingest {
                    path: format!("{base}/in"),
                    size: "200000000".into(),
                    resource: "site0-disk".into(),
                },
            )
            .step(
                "run",
                DglOperation::Execute {
                    code: format!("why-job{i}"),
                    nominal_secs: "120".into(),
                    resource_type: pin,
                    inputs: vec![format!("{base}/in")],
                    outputs: vec![(format!("{base}/out"), "1000000".into())],
                },
            )
            .build()
            .unwrap();
        let txn = d.submit_flow("u", flow).unwrap();
        d.pump();
        assert_eq!(d.status(&txn, None).unwrap().state, RunState::Completed);
    }
    d
}

fn time_per_iter(iters: u32, mut f: impl FnMut()) -> f64 {
    // One warm-up pass, then the timed loop.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn main() {
    println!("why-report micro-bench (wall time, {ITERS} iters per point)");

    println!("\nfull report (paths + bottlenecks + alerts):");
    println!("  {:>6} {:>6} {:>8} {:>8} {:>12}", "flows", "paths", "segs", "alerts", "us/iter");
    for flows in [8usize, 32, 128] {
        let mut d = warmed_dfms(flows);
        let query = WhyQuery::new().with_top_k(16);
        let report = d.why_query(&query);
        // The tentpole invariant holds for every path in the report.
        for p in &report.paths {
            assert_eq!(p.segments_sum_us(), p.makespan_us(), "critical path partitions the makespan");
        }
        let segs: usize = report.paths.iter().map(|p| p.segments.len()).sum();
        let us = time_per_iter(ITERS, || {
            std::hint::black_box(d.why_query(&query));
        });
        println!(
            "  {flows:>6} {:>6} {segs:>8} {:>8} {us:>12.1}",
            report.paths.len(),
            report.alerts.len()
        );
    }

    println!("\nfiltered single-flow query:");
    println!("  {:>6} {:>12}", "flows", "us/iter");
    for flows in [32usize, 128] {
        let mut d = warmed_dfms(flows);
        let query = WhyQuery::new().with_flow("why-3");
        let us = time_per_iter(ITERS, || {
            let report = d.why_query(&query);
            assert_eq!(report.paths.len(), 1);
            std::hint::black_box(report);
        });
        println!("  {flows:>6} {us:>12.1}");
    }

    println!("\nwire render (whyReport → pretty XML):");
    println!("  {:>6} {:>10} {:>12}", "flows", "bytes", "us/iter");
    for flows in [32usize, 128] {
        let mut d = warmed_dfms(flows);
        let report = d.why_query(&WhyQuery::new().with_top_k(16));
        let bytes = report.to_element().to_xml_pretty().len();
        let us = time_per_iter(ITERS, || {
            std::hint::black_box(report.to_element().to_xml_pretty());
        });
        println!("  {flows:>6} {bytes:>10} {us:>12.1}");
    }
}

const ITERS: u32 = 100;
