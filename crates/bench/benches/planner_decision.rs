//! E5 micro-bench: one placement decision per planner as the grid grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagridflows::prelude::*;

fn grid_with_data(domains: u32) -> DataGrid {
    let topology = GridBuilder::preset(GridPreset::UniformMesh { domains });
    let mut users = UserRegistry::new();
    users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
    users.make_admin("u").unwrap();
    let mut g = DataGrid::new(topology, users);
    g.execute(
        "u",
        Operation::Ingest { path: LogicalPath::parse("/in").unwrap(), size: 1_000_000_000, resource: "site0-pfs".into() },
        SimTime::ZERO,
    )
    .unwrap();
    g
}

fn task() -> AbstractTask {
    AbstractTask {
        code: "job".into(),
        nominal: Duration::from_secs(300),
        inputs: vec![LogicalPath::parse("/in").unwrap()],
        outputs: vec![(LogicalPath::parse("/out").unwrap(), 1_000_000)],
        requirement: Default::default(),
        vo: None,
    }
}

fn bench_planners(c: &mut Criterion) {
    for domains in [4u32, 16, 64] {
        let grid = grid_with_data(domains);
        let t = task();
        let mut group = c.benchmark_group(format!("plan_{domains}_domains"));
        for kind in PlannerKind::ALL {
            group.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, &kind| {
                let mut scheduler = Scheduler::new(kind, 1);
                b.iter(|| scheduler.plan(std::hint::black_box(&grid), std::hint::black_box(&t)).unwrap());
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_planners);
criterion_main!(benches);
