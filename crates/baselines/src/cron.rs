//! The cron + shell-script ILM baseline (§2.1).

use dgf_dgms::{DataGrid, DgmsError, LogicalPath, Operation};
use dgf_simgrid::{Duration, SimTime, StorageTier};

/// What one administrator's script does when it fires.
#[derive(Debug, Clone, PartialEq)]
pub enum CronRule {
    /// Migrate every replica on `from_tier` under `scope` older than
    /// `age_days` to this domain's `to_tier` resource.
    MigrateOlderThan { scope: LogicalPath, age_days: u64, from_tier: StorageTier, to_tier: StorageTier },
    /// Delete every object under `scope` older than `age_days`.
    DeleteOlderThan { scope: LogicalPath, age_days: u64 },
    /// Replicate everything under `scope` to a named resource (the
    /// hospital-to-archiver push, hard-wired).
    PushTo { scope: LogicalPath, dst_resource: String },
}

/// One crontab line: "at `hour` every day, as `user`, on `domain`".
#[derive(Debug, Clone)]
pub struct CronEntry {
    /// Domain whose resources the script manages (by name).
    pub domain: String,
    /// Acting administrator account.
    pub user: String,
    /// Hour of day the script fires (cron has no notion of grid-wide
    /// windows — every admin picks an hour independently).
    pub hour: u8,
    /// What the script does.
    pub rule: CronRule,
}

/// Counters for the E2 comparison.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CronStats {
    /// Script invocations.
    pub invocations: u64,
    /// Operations attempted.
    pub ops_attempted: u64,
    /// Operations that succeeded.
    pub ops_succeeded: u64,
    /// Operations that failed and were silently dropped (scripts have no
    /// retry or reporting path — failures land in a mailbox nobody reads).
    pub ops_dropped: u64,
    /// Bytes moved.
    pub bytes_moved: u64,
    /// Busy time accumulated across scripts (serial within a script).
    pub busy: Duration,
}

/// The whole baseline: a set of crontab entries driven day by day.
///
/// Scripts run serially within a domain and know nothing about each
/// other: two admins pushing to the archiver at the same hour simply
/// contend. There is no provenance — the only record is these counters.
#[derive(Debug, Default)]
pub struct CronScriptIlm {
    entries: Vec<CronEntry>,
    stats: CronStats,
}

impl CronScriptIlm {
    /// An empty crontab.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a crontab entry.
    pub fn add_entry(&mut self, entry: CronEntry) {
        assert!(entry.hour < 24, "cron hour out of range");
        self.entries.push(entry);
    }

    /// Counters so far.
    pub fn stats(&self) -> CronStats {
        self.stats
    }

    /// Fire every entry scheduled in the window `(from, to]`, mutating
    /// the grid directly (no DfMS involved). Returns how many scripts ran.
    pub fn run_between(&mut self, grid: &mut DataGrid, from: SimTime, to: SimTime) -> u64 {
        let mut fired = 0;
        let mut day = from.day();
        while day <= to.day() {
            // Clone to appease the borrow checker: entries are few.
            for entry in self.entries.clone() {
                let fire_at = SimTime::from_days(day) + Duration::from_hours(entry.hour as u64);
                if fire_at > from && fire_at <= to {
                    fired += 1;
                    self.fire(grid, &entry, fire_at);
                }
            }
            day += 1;
        }
        fired
    }

    fn fire(&mut self, grid: &mut DataGrid, entry: &CronEntry, now: SimTime) {
        self.stats.invocations += 1;
        match &entry.rule {
            CronRule::MigrateOlderThan { scope, age_days, from_tier, to_tier } => {
                let Some(domain) = grid.topology().domain_by_name(&entry.domain) else { return };
                let storages = grid.topology().domain(domain).storage.clone();
                let from_resources: Vec<_> =
                    storages.iter().filter(|s| grid.topology().storage(**s).tier == *from_tier).copied().collect();
                let to_resource = storages
                    .iter()
                    .find(|s| grid.topology().storage(**s).tier == *to_tier)
                    .map(|s| grid.topology().storage(*s).name.clone());
                let Some(to_resource) = to_resource else { return };
                for src in from_resources {
                    let src_name = grid.topology().storage(src).name.clone();
                    for obj_path in grid.objects_on(src) {
                        if !obj_path.is_under(scope) {
                            continue;
                        }
                        let old_enough = grid
                            .stat_object(&obj_path)
                            .map(|o| now.since(o.created) >= Duration::from_days(*age_days))
                            .unwrap_or(false);
                        if !old_enough {
                            continue;
                        }
                        self.attempt(
                            grid,
                            &entry.user,
                            Operation::Migrate { path: obj_path, from: src_name.clone(), to: to_resource.clone() },
                            now,
                        );
                    }
                }
            }
            CronRule::DeleteOlderThan { scope, age_days } => {
                let paths = grid.query(scope, &dgf_dgms::MetaQuery::Any);
                for obj_path in paths {
                    let old_enough = grid
                        .stat_object(&obj_path)
                        .map(|o| now.since(o.created) >= Duration::from_days(*age_days))
                        .unwrap_or(false);
                    if old_enough {
                        self.attempt(grid, &entry.user, Operation::Delete { path: obj_path }, now);
                    }
                }
            }
            CronRule::PushTo { scope, dst_resource } => {
                let paths = grid.query(scope, &dgf_dgms::MetaQuery::Any);
                for obj_path in paths {
                    self.attempt(
                        grid,
                        &entry.user,
                        Operation::Replicate { path: obj_path, src: None, dst: dst_resource.clone() },
                        now,
                    );
                }
            }
        }
    }

    fn attempt(&mut self, grid: &mut DataGrid, user: &str, op: Operation, now: SimTime) {
        self.stats.ops_attempted += 1;
        match grid.begin(user, op, now) {
            Ok(pending) => {
                self.stats.bytes_moved += pending.bytes_moved;
                self.stats.busy += pending.duration;
                let duration = pending.duration;
                match grid.complete(pending, now + duration) {
                    Ok(_) => self.stats.ops_succeeded += 1,
                    Err(_) => self.stats.ops_dropped += 1,
                }
            }
            Err(DgmsError::ReplicaExists { .. }) => {
                // Script re-pushes everything every night; already-pushed
                // objects are "fine" (but the attempt still burned a scan).
                self.stats.ops_succeeded += 1;
            }
            Err(_) => self.stats.ops_dropped += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_dgms::{Principal, UserRegistry};
    use dgf_simgrid::{GridBuilder, GridPreset};

    fn path(s: &str) -> LogicalPath {
        LogicalPath::parse(s).unwrap()
    }

    fn grid() -> DataGrid {
        let topology = GridBuilder::preset(GridPreset::ImplodingStar { sources: 2 });
        let mut users = UserRegistry::new();
        users.register(Principal::new("admin", topology.domain_by_name("archiver").unwrap()));
        users.make_admin("admin").unwrap();
        let mut g = DataGrid::new(topology, users);
        for h in 0..2 {
            let coll = format!("/h{h}");
            g.execute("admin", Operation::CreateCollection { path: path(&coll) }, SimTime::ZERO).unwrap();
            for j in 0..3 {
                g.execute(
                    "admin",
                    Operation::Ingest { path: path(&format!("{coll}/f{j}")), size: 1000, resource: format!("hospital0{h}-disk") },
                    SimTime::ZERO,
                )
                .unwrap();
            }
        }
        g
    }

    #[test]
    fn push_rule_replicates_everything_nightly() {
        let mut g = grid();
        let mut cron = CronScriptIlm::new();
        for h in 0..2 {
            cron.add_entry(CronEntry {
                domain: format!("hospital0{h}"),
                user: "admin".into(),
                hour: 2,
                rule: CronRule::PushTo { scope: path(&format!("/h{h}")), dst_resource: "archiver-disk".into() },
            });
        }
        let fired = cron.run_between(&mut g, SimTime::ZERO, SimTime::from_days(1));
        assert_eq!(fired, 2, "both scripts fired at 02:00");
        let s = cron.stats();
        assert_eq!(s.ops_succeeded, 6);
        assert_eq!(s.bytes_moved, 6_000);
        // All six objects now have an archiver replica.
        let archiver_disk = g.resolve_resource("archiver-disk").unwrap();
        assert_eq!(g.objects_on(archiver_disk).len(), 6);
        // Second night: re-push attempts are wasted scans, not errors.
        cron.run_between(&mut g, SimTime::from_days(1), SimTime::from_days(2));
        assert_eq!(cron.stats().ops_dropped, 0);
        assert_eq!(cron.stats().ops_attempted, 12);
    }

    #[test]
    fn migrate_rule_ages_data_down_tier() {
        let mut g = grid();
        let mut cron = CronScriptIlm::new();
        cron.add_entry(CronEntry {
            domain: "archiver".into(),
            user: "admin".into(),
            hour: 3,
            rule: CronRule::MigrateOlderThan {
                scope: path("/"),
                age_days: 7,
                from_tier: StorageTier::Disk,
                to_tier: StorageTier::Tape,
            },
        });
        // Stage data at the archiver first.
        for h in 0..2 {
            for j in 0..3 {
                g.execute(
                    "admin",
                    Operation::Replicate { path: path(&format!("/h{h}/f{j}")), src: None, dst: "archiver-disk".into() },
                    SimTime::ZERO,
                )
                .unwrap();
            }
        }
        // Too young on day 1: nothing moves.
        cron.run_between(&mut g, SimTime::ZERO, SimTime::from_days(1));
        let tape = g.resolve_resource("archiver-tape").unwrap();
        assert_eq!(g.objects_on(tape).len(), 0);
        // Day 8: everything at the archiver migrates to tape.
        cron.run_between(&mut g, SimTime::from_days(7), SimTime::from_days(8));
        assert_eq!(g.objects_on(tape).len(), 6);
        let disk = g.resolve_resource("archiver-disk").unwrap();
        assert_eq!(g.objects_on(disk).len(), 0);
    }

    #[test]
    fn failures_are_silently_dropped() {
        let mut g = grid();
        // Fill the archiver disk so pushes fail.
        let disk = g.resolve_resource("archiver-disk").unwrap();
        let free = g.topology().storage(disk).free();
        assert!(g.topology_mut().storage_mut(disk).allocate(free));
        let mut cron = CronScriptIlm::new();
        cron.add_entry(CronEntry {
            domain: "hospital00".into(),
            user: "admin".into(),
            hour: 2,
            rule: CronRule::PushTo { scope: path("/h0"), dst_resource: "archiver-disk".into() },
        });
        cron.run_between(&mut g, SimTime::ZERO, SimTime::from_days(1));
        let s = cron.stats();
        assert_eq!(s.ops_dropped, 3, "no retry, no report — just dropped");
        assert_eq!(s.ops_succeeded, 0);
    }

    #[test]
    fn delete_rule_retires_old_data() {
        let mut g = grid();
        let mut cron = CronScriptIlm::new();
        cron.add_entry(CronEntry {
            domain: "hospital00".into(),
            user: "admin".into(),
            hour: 4,
            rule: CronRule::DeleteOlderThan { scope: path("/h0"), age_days: 30 },
        });
        cron.run_between(&mut g, SimTime::from_days(29), SimTime::from_days(30));
        assert_eq!(g.query(&path("/h0"), &dgf_dgms::MetaQuery::Any).len(), 3, "too young");
        cron.run_between(&mut g, SimTime::from_days(30), SimTime::from_days(31));
        assert_eq!(g.query(&path("/h0"), &dgf_dgms::MetaQuery::Any).len(), 0);
        assert_eq!(g.query(&path("/h1"), &dgf_dgms::MetaQuery::Any).len(), 3, "other domain untouched");
    }

    #[test]
    #[should_panic(expected = "cron hour")]
    fn bad_hours_rejected() {
        CronScriptIlm::new().add_entry(CronEntry {
            domain: "x".into(),
            user: "u".into(),
            hour: 25,
            rule: CronRule::DeleteOlderThan { scope: LogicalPath::root(), age_days: 1 },
        });
    }
}
