//! # dgf-baselines — the comparison points the paper argues against
//!
//! Two systems the paper positions the DfMS against:
//!
//! * [`CronScriptIlm`] — "currently, some simple datagrid ILM processes
//!   can be implemented using simple scripts and cron jobs" (§2.1). Each
//!   domain's administrator runs an independent script at a fixed hour;
//!   there is no cross-domain coordination, no provenance, no pause /
//!   restart, and no status interface — exactly the shortcomings §2.1
//!   lists. Experiment E2 compares it against DfMS-driven ILM.
//!
//! * [`ClientSideEngine`] — "GridAnt is a client-side workflow engine
//!   ... the state information of the workflow is managed at the client
//!   side" (§5). It interprets the same DGL flows, but all run state
//!   lives in the client process: a client crash loses it, and recovery
//!   re-executes (or trips over) already-completed work. Experiment E10
//!   compares its crash recovery against DfMS server-side restart.

mod client_engine;
mod cron;

pub use client_engine::{ClientCrash, ClientRunStats, ClientSideEngine};
pub use cron::{CronEntry, CronRule, CronScriptIlm, CronStats};
