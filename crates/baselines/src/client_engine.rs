//! The client-side workflow engine baseline (GridAnt-style, §5).
//!
//! It executes the same DGL flows as the DfMS, but **all run state lives
//! in the client process**: there is no server-side transaction, no
//! provenance, and no way for anyone else to query status. A client
//! crash loses the bookmark; recovery re-runs the flow from the top,
//! re-executing completed steps (idempotence is the flow author's
//! problem).

use dgf_dgl::{interpolate, Children, ControlPattern, DglOperation, Flow, IterSource, Scope, Value};
use dgf_dgms::{DataGrid, LogicalPath, MetaQuery, MetaTriple, Operation, Permission};
use dgf_simgrid::{Duration, SimTime};

/// An injected client crash: the process dies after `after_steps`
/// successfully executed steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientCrash {
    /// How many steps complete before the crash.
    pub after_steps: usize,
}

/// Counters for one client-side run (E10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientRunStats {
    /// Steps executed this run (including re-executions).
    pub steps_executed: u64,
    /// Steps that were *re*-executions of work a previous run finished.
    pub steps_redone: u64,
    /// Steps that failed because earlier work already exists
    /// (`AlreadyExists` / `ReplicaExists` on re-run).
    pub rerun_collisions: u64,
    /// Simulated busy time.
    pub busy: Duration,
    /// Whether the run finished the whole flow.
    pub completed: bool,
}

/// The client-side engine.
///
/// Control coverage is the subset GridAnt-era tools handled: sequential
/// and parallel-as-sequential flows, for-each over collections and item
/// lists, and plain DGMS steps. (No rules, no switch, no business-logic
/// scheduling — the limitations are part of the baseline.)
#[derive(Debug)]
pub struct ClientSideEngine {
    user: String,
    /// Volatile bookmark: step paths completed by *this* client process.
    completed: Vec<String>,
    /// Step paths completed by any previous (crashed) process — known to
    /// the experiment, invisible to the recovered client.
    previously_completed: Vec<String>,
}

impl ClientSideEngine {
    /// A fresh client for `user`.
    pub fn new(user: impl Into<String>) -> Self {
        ClientSideEngine { user: user.into(), completed: Vec::new(), previously_completed: Vec::new() }
    }

    /// Simulate a process crash + new process: the bookmark is lost (the
    /// work itself, of course, persists in the grid).
    pub fn crash_and_restart(&mut self) {
        self.previously_completed.append(&mut self.completed);
    }

    /// Execute `flow` against the grid starting at `now`, optionally
    /// dying after N steps. Returns the stats and the end time.
    pub fn run(
        &mut self,
        grid: &mut DataGrid,
        flow: &Flow,
        now: SimTime,
        crash: Option<ClientCrash>,
    ) -> (ClientRunStats, SimTime) {
        let mut stats = ClientRunStats::default();
        let mut clock = now;
        let mut scope = Scope::root();
        let completed = self.exec_flow(grid, flow, &mut scope, &mut clock, &mut stats, crash, "".to_owned());
        stats.completed = completed;
        (stats, clock)
    }

    #[allow(clippy::too_many_arguments)] // explicit state threading reads clearer than a context struct
    fn exec_flow(
        &mut self,
        grid: &mut DataGrid,
        flow: &Flow,
        scope: &mut Scope,
        clock: &mut SimTime,
        stats: &mut ClientRunStats,
        crash: Option<ClientCrash>,
        path_prefix: String,
    ) -> bool {
        scope.push();
        for var in &flow.variables {
            let Ok(text) = interpolate(&var.initial, scope) else {
                scope.pop();
                return false;
            };
            scope.declare(var.name.clone(), Value::from_text(&text));
        }
        let ok = match &flow.logic.pattern {
            ControlPattern::Sequential | ControlPattern::Parallel => {
                // GridAnt-era clients serialize "parallel" targets too.
                self.exec_children(grid, flow, scope, clock, stats, crash, &path_prefix)
            }
            ControlPattern::ForEach { var, source, .. } => {
                let items: Vec<String> = match source {
                    IterSource::Items(templates) => templates
                        .iter()
                        .filter_map(|t| interpolate(t, scope).ok())
                        .collect(),
                    IterSource::Collection(c) => match interpolate(c, scope).ok().and_then(|p| LogicalPath::parse(&p).ok()) {
                        Some(p) => grid.query(&p, &MetaQuery::Any).iter().map(|x| x.to_string()).collect(),
                        None => Vec::new(),
                    },
                    IterSource::Query { collection, attribute, value } => {
                        match interpolate(collection, scope).ok().and_then(|p| LogicalPath::parse(&p).ok()) {
                            Some(p) => grid
                                .query(&p, &MetaQuery::Eq(attribute.clone(), value.clone()))
                                .iter()
                                .map(|x| x.to_string())
                                .collect(),
                            None => Vec::new(),
                        }
                    }
                    IterSource::Variable(_) => Vec::new(), // unsupported by the baseline
                };
                let mut all_ok = true;
                for (i, item) in items.iter().enumerate() {
                    scope.push();
                    scope.declare(var.clone(), Value::Str(item.clone()));
                    let ok = self.exec_children(grid, flow, scope, clock, stats, crash, &format!("{path_prefix}/it{i}"));
                    scope.pop();
                    if !ok {
                        all_ok = false;
                        break;
                    }
                }
                all_ok
            }
            // Unsupported patterns simply fail, as 2004-era tools did.
            ControlPattern::While(_) | ControlPattern::Switch { .. } => false,
        };
        scope.pop();
        ok
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_children(
        &mut self,
        grid: &mut DataGrid,
        flow: &Flow,
        scope: &mut Scope,
        clock: &mut SimTime,
        stats: &mut ClientRunStats,
        crash: Option<ClientCrash>,
        path_prefix: &str,
    ) -> bool {
        match &flow.children {
            Children::Flows(flows) => {
                for (i, sub) in flows.iter().enumerate() {
                    if !self.exec_flow(grid, sub, scope, clock, stats, crash, format!("{path_prefix}/{i}")) {
                        return false;
                    }
                }
                true
            }
            Children::Steps(steps) => {
                for (i, step) in steps.iter().enumerate() {
                    let step_path = format!("{path_prefix}/{i}:{}", step.name);
                    if let Some(c) = crash {
                        if stats.steps_executed as usize >= c.after_steps {
                            return false; // the process dies here
                        }
                    }
                    let redo = self.previously_completed.contains(&step_path);
                    let op = match self.build_op(&step.operation, scope) {
                        Some(op) => op,
                        None => return false,
                    };
                    stats.steps_executed += 1;
                    if redo {
                        stats.steps_redone += 1;
                    }
                    match grid.execute(&self.user, op, *clock) {
                        Ok((d, _)) => {
                            *clock += d;
                            stats.busy += d;
                            self.completed.push(step_path);
                        }
                        Err(dgf_dgms::DgmsError::AlreadyExists(_)) | Err(dgf_dgms::DgmsError::ReplicaExists { .. }) => {
                            // The re-run tripped over its own earlier work.
                            stats.rerun_collisions += 1;
                            self.completed.push(step_path);
                        }
                        Err(_) => return false,
                    }
                }
                true
            }
        }
    }

    fn build_op(&self, op: &DglOperation, scope: &Scope) -> Option<Operation> {
        let path = |t: &str| interpolate(t, scope).ok().and_then(|p| LogicalPath::parse(&p).ok());
        let text = |t: &str| interpolate(t, scope).ok();
        Some(match op {
            DglOperation::CreateCollection { path: p } => Operation::CreateCollection { path: path(p)? },
            DglOperation::Ingest { path: p, size, resource } => Operation::Ingest {
                path: path(p)?,
                size: text(size)?.parse().ok()?,
                resource: text(resource)?,
            },
            DglOperation::Replicate { path: p, src, dst } => Operation::Replicate {
                path: path(p)?,
                src: match src {
                    Some(s) => Some(text(s)?),
                    None => None,
                },
                dst: text(dst)?,
            },
            DglOperation::Migrate { path: p, from, to } => {
                Operation::Migrate { path: path(p)?, from: text(from)?, to: text(to)? }
            }
            DglOperation::Trim { path: p, resource } => Operation::Trim { path: path(p)?, resource: text(resource)? },
            DglOperation::Delete { path: p } => Operation::Delete { path: path(p)? },
            DglOperation::Rename { path: p, to } => Operation::Rename { path: path(p)?, to: path(to)? },
            DglOperation::Checksum { path: p, resource, register } => Operation::Checksum {
                path: path(p)?,
                resource: match resource {
                    Some(r) => Some(text(r)?),
                    None => None,
                },
                register: *register,
            },
            DglOperation::SetMetadata { path: p, attribute, value } => Operation::SetMetadata {
                path: path(p)?,
                triple: MetaTriple::new(text(attribute)?, text(value)?),
            },
            DglOperation::SetPermission { path: p, grantee, level } => Operation::SetPermission {
                path: path(p)?,
                grantee: text(grantee)?,
                permission: match text(level)?.as_str() {
                    "read" => Permission::Read,
                    "write" => Permission::Write,
                    "own" => Permission::Own,
                    _ => return None,
                },
            },
            // Business logic and engine-local ops are beyond the baseline.
            DglOperation::Execute { .. }
            | DglOperation::Assign { .. }
            | DglOperation::Notify { .. }
            | DglOperation::Query { .. } => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_dgl::FlowBuilder;
    use dgf_dgms::{Principal, UserRegistry};
    use dgf_simgrid::{GridBuilder, GridPreset};

    fn path(s: &str) -> LogicalPath {
        LogicalPath::parse(s).unwrap()
    }

    fn grid() -> DataGrid {
        let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
        let mut users = UserRegistry::new();
        users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
        users.make_admin("u").unwrap();
        DataGrid::new(topology, users)
    }

    fn three_step_flow() -> Flow {
        FlowBuilder::sequential("f")
            .step("a", DglOperation::Ingest { path: "/a".into(), size: "100".into(), resource: "site0-disk".into() })
            .step("b", DglOperation::Ingest { path: "/b".into(), size: "100".into(), resource: "site0-disk".into() })
            .step("c", DglOperation::Ingest { path: "/c".into(), size: "100".into(), resource: "site0-disk".into() })
            .build()
            .unwrap()
    }

    #[test]
    fn happy_path_executes_whole_flows() {
        let mut g = grid();
        let mut client = ClientSideEngine::new("u");
        let (stats, end) = client.run(&mut g, &three_step_flow(), SimTime::ZERO, None);
        assert!(stats.completed);
        assert_eq!(stats.steps_executed, 3);
        assert_eq!(stats.steps_redone, 0);
        assert!(end > SimTime::ZERO);
        assert!(g.exists(&path("/c")));
    }

    #[test]
    fn crash_recovery_redoes_finished_work() {
        let mut g = grid();
        let mut client = ClientSideEngine::new("u");
        // Crash after 2 of 3 steps.
        let (stats, _) = client.run(&mut g, &three_step_flow(), SimTime::ZERO, Some(ClientCrash { after_steps: 2 }));
        assert!(!stats.completed);
        assert_eq!(stats.steps_executed, 2);
        assert!(g.exists(&path("/b")) && !g.exists(&path("/c")));

        // The client process restarts with no memory of its bookmark.
        client.crash_and_restart();
        let (stats2, _) = client.run(&mut g, &three_step_flow(), SimTime::from_secs(100), None);
        assert!(stats2.completed);
        assert_eq!(stats2.steps_executed, 3, "re-runs everything");
        assert_eq!(stats2.steps_redone, 2, "two steps were wasted re-execution");
        assert_eq!(stats2.rerun_collisions, 2, "and tripped over their own results");
        assert!(g.exists(&path("/c")));
    }

    #[test]
    fn foreach_flows_are_supported() {
        let mut g = grid();
        g.execute("u", Operation::CreateCollection { path: path("/in") }, SimTime::ZERO).unwrap();
        for i in 0..3 {
            g.execute("u", Operation::Ingest { path: path(&format!("/in/f{i}")), size: 1, resource: "site0-disk".into() }, SimTime::ZERO)
                .unwrap();
        }
        let flow = FlowBuilder::for_each_in_collection("sweep", "f", "/in")
            .step("tag", DglOperation::SetMetadata { path: "${f}".into(), attribute: "seen".into(), value: "1".into() })
            .build()
            .unwrap();
        let mut client = ClientSideEngine::new("u");
        let (stats, _) = client.run(&mut g, &flow, SimTime::ZERO, None);
        assert!(stats.completed);
        assert_eq!(stats.steps_executed, 3);
    }

    #[test]
    fn modern_constructs_are_beyond_the_baseline() {
        let mut g = grid();
        let while_flow = FlowBuilder::while_loop("w", "true").unwrap().build().unwrap();
        let mut client = ClientSideEngine::new("u");
        let (stats, _) = client.run(&mut g, &while_flow, SimTime::ZERO, None);
        assert!(!stats.completed, "while loops unsupported");
        let exec_flow = FlowBuilder::sequential("e")
            .step(
                "x",
                DglOperation::Execute { code: "c".into(), nominal_secs: "1".into(), resource_type: None, inputs: vec![], outputs: vec![] },
            )
            .build()
            .unwrap();
        let (stats, _) = client.run(&mut g, &exec_flow, SimTime::ZERO, None);
        assert!(!stats.completed, "no scheduler on the client side");
    }
}
