//! The flight recorder: a bounded, deterministic event log.

use crate::event::{EventKind, ObsEvent};
use crate::ring::RingBuffer;
use dgf_simgrid::SimTime;

/// Default ring capacity — roomy enough to hold every event of the
/// repository's example scenarios; see `docs/OBSERVABILITY.md` for
/// sizing guidance on larger workloads.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// A bounded log of [`ObsEvent`]s stamped with the simulation clock.
///
/// Sequence numbers are global and gap-free: when the ring wraps, old
/// events are dropped but `seq` keeps counting, so an operator reading
/// `events()` can tell exactly how much history was clipped
/// ([`FlightRecorder::dropped`]).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: RingBuffer<ObsEvent>,
    next_seq: u64,
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder { ring: RingBuffer::new(capacity), next_seq: 0 }
    }

    /// Record one event at simulation time `time`.
    pub fn record(&mut self, time: SimTime, kind: EventKind) -> &ObsEvent {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.ring.push(ObsEvent { seq, time, kind });
        self.ring.iter().last().expect("just pushed")
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.ring.iter().cloned().collect()
    }

    /// The `n` most recent retained events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<ObsEvent> {
        let events: Vec<_> = self.ring.iter().cloned().collect();
        let skip = events.len().saturating_sub(n);
        events.into_iter().skip(skip).collect()
    }

    /// Count of events ever recorded.
    pub fn total(&self) -> u64 {
        self.ring.total()
    }

    /// Count of events evicted by the bounded ring.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// The ring's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_RING_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fired(n: u32) -> EventKind {
        EventKind::TriggerFired { trigger: format!("t{n}"), action: "notify".into() }
    }

    #[test]
    fn sequence_numbers_survive_wraparound() {
        let mut r = FlightRecorder::new(2);
        for i in 0..5 {
            r.record(SimTime(i), fired(i as u32));
        }
        let events = r.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 3);
        assert_eq!(events[1].seq, 4);
        assert_eq!(r.total(), 5);
        assert_eq!(r.dropped(), 3);
    }

    #[test]
    fn exactly_at_capacity_drops_nothing() {
        let mut r = FlightRecorder::new(3);
        for i in 0..3 {
            r.record(SimTime(i), fired(i as u32));
        }
        let events = r.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(r.total(), 3);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn past_capacity_overwrites_oldest_first_and_stays_ordered() {
        let mut r = FlightRecorder::new(3);
        for i in 0..4 {
            r.record(SimTime(i), fired(i as u32));
        }
        // One past capacity: the single oldest event (seq 0) is gone and
        // events() is still oldest-first with gap-free seqs.
        let events = r.events();
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(events.iter().map(|e| e.time.0).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(r.dropped(), 1);
        // events() is stable: reading does not consume or reorder.
        assert_eq!(r.events(), events);
        // Keep wrapping a second full lap; order still holds.
        for i in 4..9 {
            r.record(SimTime(i), fired(i as u32));
        }
        assert_eq!(r.events().iter().map(|e| e.seq).collect::<Vec<_>>(), vec![6, 7, 8]);
        assert_eq!(r.total(), 9);
        assert_eq!(r.dropped(), 6);
    }

    #[test]
    fn recent_takes_the_tail() {
        let mut r = FlightRecorder::new(8);
        for i in 0..6 {
            r.record(SimTime(i), fired(i as u32));
        }
        let tail = r.recent(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 4);
        assert_eq!(tail[1].seq, 5);
        assert_eq!(r.recent(100).len(), 6, "asking for more than retained is fine");
    }
}
