//! The flight recorder: a bounded, deterministic event log.

use crate::event::{EventKind, ObsEvent};
use crate::ring::RingBuffer;
use dgf_simgrid::SimTime;

/// Default ring capacity — roomy enough to hold every event of the
/// repository's example scenarios; see `docs/OBSERVABILITY.md` for
/// sizing guidance on larger workloads.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// A bounded log of [`ObsEvent`]s stamped with the simulation clock.
///
/// Sequence numbers are global and gap-free: when the ring wraps, old
/// events are dropped but `seq` keeps counting, so an operator reading
/// `events()` can tell exactly how much history was clipped
/// ([`FlightRecorder::dropped`]).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: RingBuffer<ObsEvent>,
    next_seq: u64,
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder { ring: RingBuffer::new(capacity), next_seq: 0 }
    }

    /// Record one event at simulation time `time`.
    pub fn record(&mut self, time: SimTime, kind: EventKind) -> &ObsEvent {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.ring.push(ObsEvent { seq, time, kind });
        self.ring.iter().last().expect("just pushed")
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.ring.iter().cloned().collect()
    }

    /// The `n` most recent retained events, oldest first.
    pub fn recent(&self, n: usize) -> Vec<ObsEvent> {
        let events: Vec<_> = self.ring.iter().cloned().collect();
        let skip = events.len().saturating_sub(n);
        events.into_iter().skip(skip).collect()
    }

    /// Count of events ever recorded.
    pub fn total(&self) -> u64 {
        self.ring.total()
    }

    /// Count of events evicted by the bounded ring.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// The ring's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Read from `cursor` (a sequence number; `0` means "from the
    /// beginning"), returning at most `limit` events.
    ///
    /// The cursor protocol gives an at-most-once, no-gap guarantee per
    /// event: resuming from [`EventTail::next_cursor`] never re-delivers
    /// an event already returned, and any history the bounded ring
    /// evicted before the reader caught up is reported explicitly as
    /// [`EventTail::dropped`] rather than silently skipped.
    pub fn tail(&self, cursor: u64, limit: usize) -> EventTail {
        let oldest_retained = self.next_seq - self.ring.len() as u64;
        let dropped = oldest_retained.saturating_sub(cursor);
        let start = cursor.max(oldest_retained);
        let events: Vec<ObsEvent> =
            self.ring.iter().filter(|e| e.seq >= start).take(limit).cloned().collect();
        let next_cursor = events.last().map(|e| e.seq + 1).unwrap_or(start);
        EventTail { events, next_cursor, dropped }
    }
}

/// One page of a cursor-based read of the flight recorder
/// ([`FlightRecorder::tail`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventTail {
    /// Events with `seq >= cursor`, oldest first, at most `limit`.
    pub events: Vec<ObsEvent>,
    /// Pass this as the next call's cursor to resume without gaps or
    /// duplicates. Unchanged (modulo eviction) when nothing new exists.
    pub next_cursor: u64,
    /// Events in `[cursor, oldest retained)` that the ring evicted
    /// before this read — lost history, reported, never silently
    /// skipped.
    pub dropped: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_RING_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fired(n: u32) -> EventKind {
        EventKind::TriggerFired { trigger: format!("t{n}"), action: "notify".into() }
    }

    #[test]
    fn sequence_numbers_survive_wraparound() {
        let mut r = FlightRecorder::new(2);
        for i in 0..5 {
            r.record(SimTime(i), fired(i as u32));
        }
        let events = r.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 3);
        assert_eq!(events[1].seq, 4);
        assert_eq!(r.total(), 5);
        assert_eq!(r.dropped(), 3);
    }

    #[test]
    fn exactly_at_capacity_drops_nothing() {
        let mut r = FlightRecorder::new(3);
        for i in 0..3 {
            r.record(SimTime(i), fired(i as u32));
        }
        let events = r.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(r.total(), 3);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn past_capacity_overwrites_oldest_first_and_stays_ordered() {
        let mut r = FlightRecorder::new(3);
        for i in 0..4 {
            r.record(SimTime(i), fired(i as u32));
        }
        // One past capacity: the single oldest event (seq 0) is gone and
        // events() is still oldest-first with gap-free seqs.
        let events = r.events();
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(events.iter().map(|e| e.time.0).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(r.dropped(), 1);
        // events() is stable: reading does not consume or reorder.
        assert_eq!(r.events(), events);
        // Keep wrapping a second full lap; order still holds.
        for i in 4..9 {
            r.record(SimTime(i), fired(i as u32));
        }
        assert_eq!(r.events().iter().map(|e| e.seq).collect::<Vec<_>>(), vec![6, 7, 8]);
        assert_eq!(r.total(), 9);
        assert_eq!(r.dropped(), 6);
    }

    #[test]
    fn tail_pages_without_gaps_or_duplicates() {
        let mut r = FlightRecorder::new(16);
        for i in 0..10 {
            r.record(SimTime(i), fired(i as u32));
        }
        let mut cursor = 0;
        let mut seen = Vec::new();
        loop {
            let page = r.tail(cursor, 3);
            assert_eq!(page.dropped, 0);
            if page.events.is_empty() {
                break;
            }
            seen.extend(page.events.iter().map(|e| e.seq));
            cursor = page.next_cursor;
        }
        assert_eq!(seen, (0..10).collect::<Vec<u64>>());
        // Idle tail: cursor stays put, nothing is re-delivered.
        assert_eq!(r.tail(cursor, 3).next_cursor, cursor);
    }

    #[test]
    fn slow_reader_sees_an_explicit_dropped_count_after_wraparound() {
        let mut r = FlightRecorder::new(4);
        for i in 0..10 {
            r.record(SimTime(i), fired(i as u32));
        }
        // Reader last stopped at seq 2; seqs 2..6 were evicted (ring
        // retains 6..10).
        let page = r.tail(2, 100);
        assert_eq!(page.dropped, 4);
        assert_eq!(page.events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert_eq!(page.next_cursor, 10);
        // Resuming is clean: no duplicates, no phantom drops.
        let next = r.tail(page.next_cursor, 100);
        assert!(next.events.is_empty());
        assert_eq!(next.dropped, 0);
        assert_eq!(next.next_cursor, 10);
    }

    #[test]
    fn tail_interleaved_with_writes_never_duplicates_across_wraps() {
        let mut r = FlightRecorder::new(3);
        let mut cursor = 0;
        let mut delivered = Vec::new();
        let mut dropped_total = 0;
        for i in 0..20u64 {
            r.record(SimTime(i), fired(i as u32));
            if i % 5 == 4 {
                // Reader polls only every 5 writes with a 3-slot ring,
                // so it must lose events — but knowably.
                let page = r.tail(cursor, 100);
                dropped_total += page.dropped;
                delivered.extend(page.events.iter().map(|e| e.seq));
                cursor = page.next_cursor;
            }
        }
        let mut unique = delivered.clone();
        unique.dedup();
        assert_eq!(delivered, unique, "no duplicates across wraps");
        assert!(delivered.windows(2).all(|w| w[1] > w[0]), "strictly increasing");
        assert_eq!(delivered.len() as u64 + dropped_total, cursor, "every seq accounted for");
        assert!(dropped_total > 0, "the scenario must actually wrap");
    }

    #[test]
    fn tail_cursor_past_the_head_returns_nothing() {
        let mut r = FlightRecorder::new(4);
        r.record(SimTime(0), fired(0));
        let page = r.tail(99, 10);
        assert!(page.events.is_empty());
        assert_eq!(page.dropped, 0);
        assert_eq!(page.next_cursor, 99, "a future cursor is preserved, not rewound");
    }

    #[test]
    fn recent_takes_the_tail() {
        let mut r = FlightRecorder::new(8);
        for i in 0..6 {
            r.record(SimTime(i), fired(i as u32));
        }
        let tail = r.recent(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 4);
        assert_eq!(tail[1].seq, 5);
        assert_eq!(r.recent(100).len(), 6, "asking for more than retained is fine");
    }
}
