//! The metrics registry: counters, gauges, and sim-time histograms,
//! organized into scopes.
//!
//! A *scope* names the subsystem (or run) a metric belongs to:
//! `engine`, `scheduler`, `triggers`, `server`, `network`, `grid`, and
//! one `run:<txn>` scope per transaction. Metric names are dotted
//! (`steps.executed`, `bytes.moved`); `docs/OBSERVABILITY.md` lists
//! every name with its unit. Storage is `BTreeMap`-backed so snapshots
//! and exports are deterministically ordered.

use dgf_simgrid::Duration;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Summary statistics of a simulation-time histogram. All values are in
/// microseconds of *simulation* time (never wall-clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimHistogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations, µs.
    pub sum_us: u64,
    /// Smallest observation, µs (0 when empty).
    pub min_us: u64,
    /// Largest observation, µs (0 when empty).
    pub max_us: u64,
}

impl SimHistogram {
    /// Fold one observation in.
    pub fn observe(&mut self, d: Duration) {
        let us = d.0;
        if self.count == 0 {
            self.min_us = us;
            self.max_us = us;
        } else {
            self.min_us = self.min_us.min(us);
            self.max_us = self.max_us.max(us);
        }
        self.count += 1;
        self.sum_us += us;
    }

    /// Mean observation in µs (0.0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }
}

/// One metric's current value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing count.
    Counter(u64),
    /// A point-in-time level (may go down).
    Gauge(i64),
    /// A simulation-time distribution summary.
    Histogram(SimHistogram),
}

impl MetricValue {
    /// The value's kind as a lowercase string (`counter`, `gauge`,
    /// `histogram`) — used by the exporters and the DGL status surface.
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }

    /// A compact single-token rendering: the count/level for counters
    /// and gauges, `count:sum_us:min_us:max_us` for histograms.
    pub fn render(&self) -> String {
        match self {
            MetricValue::Counter(v) => v.to_string(),
            MetricValue::Gauge(v) => v.to_string(),
            MetricValue::Histogram(h) => {
                format!("{}:{}:{}:{}", h.count, h.sum_us, h.min_us, h.max_us)
            }
        }
    }
}

/// The writable registry. Subsystems hold a shared handle
/// ([`crate::Obs`]) and call `inc`/`add`/`gauge_set`/`observe`; readers
/// take a [`MetricsSnapshot`].
///
/// ```
/// use dgf_obs::MetricsRegistry;
/// use dgf_simgrid::Duration;
///
/// let mut reg = MetricsRegistry::new();
/// reg.inc("engine", "steps.executed");
/// reg.add("engine", "bytes.moved", 1024);
/// reg.observe("engine", "step.duration", Duration::from_secs(2));
/// let snap = reg.snapshot();
/// assert_eq!(snap.counter("engine", "steps.executed"), 1);
/// assert_eq!(snap.counter("engine", "bytes.moved"), 1024);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    values: BTreeMap<(String, String), MetricValue>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment the counter `scope/name` by one.
    pub fn inc(&mut self, scope: &str, name: &str) {
        self.add(scope, name, 1);
    }

    /// Increment the counter `scope/name` by `n`.
    pub fn add(&mut self, scope: &str, name: &str, n: u64) {
        let entry = self
            .values
            .entry((scope.to_owned(), name.to_owned()))
            .or_insert(MetricValue::Counter(0));
        if let MetricValue::Counter(v) = entry {
            *v += n;
        } else {
            debug_assert!(false, "metric {scope}/{name} is not a counter");
        }
    }

    /// Set the gauge `scope/name` to `value`.
    pub fn gauge_set(&mut self, scope: &str, name: &str, value: i64) {
        self.values.insert((scope.to_owned(), name.to_owned()), MetricValue::Gauge(value));
    }

    /// Fold a duration into the histogram `scope/name`.
    pub fn observe(&mut self, scope: &str, name: &str, d: Duration) {
        let entry = self
            .values
            .entry((scope.to_owned(), name.to_owned()))
            .or_insert(MetricValue::Histogram(SimHistogram::default()));
        if let MetricValue::Histogram(h) = entry {
            h.observe(d);
        } else {
            debug_assert!(false, "metric {scope}/{name} is not a histogram");
        }
    }

    /// A point-in-time copy of every metric, deterministically ordered
    /// by `(scope, name)`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            samples: self
                .values
                .iter()
                .map(|((scope, name), value)| MetricSample {
                    scope: scope.clone(),
                    name: name.clone(),
                    value: *value,
                })
                .collect(),
        }
    }
}

/// One `(scope, name, value)` triple of a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Owning scope (`engine`, `scheduler`, `run:<txn>`, ...).
    pub scope: String,
    /// Dotted metric name.
    pub name: String,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// An immutable, ordered copy of the registry, with plain-text and JSON
/// exporters and cross-scope aggregation helpers.
///
/// ```
/// use dgf_obs::MetricsRegistry;
///
/// let mut reg = MetricsRegistry::new();
/// reg.inc("run:t1", "steps.completed");
/// reg.inc("run:t2", "steps.completed");
/// let snap = reg.snapshot();
/// // Aggregate one metric name across every `run:` scope:
/// assert_eq!(snap.total_counter("steps.completed"), 2);
/// let text = snap.to_text();
/// assert!(text.contains("run:t1/steps.completed counter 1"));
/// let json = snap.to_json();
/// assert!(json.starts_with('[') && json.ends_with(']'));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All samples, sorted by `(scope, name)`.
    pub samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// Look up one metric.
    pub fn get(&self, scope: &str, name: &str) -> Option<&MetricValue> {
        self.samples
            .iter()
            .find(|s| s.scope == scope && s.name == name)
            .map(|s| &s.value)
    }

    /// The counter `scope/name`, or 0 when absent.
    pub fn counter(&self, scope: &str, name: &str) -> u64 {
        match self.get(scope, name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// The gauge `scope/name`, or 0 when absent.
    pub fn gauge(&self, scope: &str, name: &str) -> i64 {
        match self.get(scope, name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// The histogram `scope/name`, or an empty summary when absent.
    pub fn histogram(&self, scope: &str, name: &str) -> SimHistogram {
        match self.get(scope, name) {
            Some(MetricValue::Histogram(h)) => *h,
            _ => SimHistogram::default(),
        }
    }

    /// Sum the counter `name` across *all* scopes (e.g. total
    /// `steps.completed` over every `run:<txn>` scope).
    pub fn total_counter(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| match s.value {
                MetricValue::Counter(v) => v,
                _ => 0,
            })
            .sum()
    }

    /// All samples of one scope.
    pub fn scoped(&self, scope: &str) -> Vec<&MetricSample> {
        self.samples.iter().filter(|s| s.scope == scope).collect()
    }

    /// Insert (or replace) a sample, keeping `(scope, name)` order.
    pub fn insert(&mut self, scope: &str, name: &str, value: MetricValue) {
        let key = (scope.to_owned(), name.to_owned());
        match self
            .samples
            .binary_search_by(|s| (s.scope.clone(), s.name.clone()).cmp(&key))
        {
            Ok(i) => self.samples[i].value = value,
            Err(i) => self.samples.insert(
                i,
                MetricSample { scope: key.0, name: key.1, value },
            ),
        }
    }

    /// Plain-text export: one `scope/name kind value` line per sample,
    /// sorted, newline-terminated. Histograms render as
    /// `count:sum_us:min_us:max_us`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            let _ = writeln!(out, "{}/{} {} {}", s.scope, s.name, s.value.kind(), s.value.render());
        }
        out
    }

    /// JSON export: an array of objects with `scope`, `name`, `kind`,
    /// and a numeric `value` (histograms expand to `count`/`sum_us`/
    /// `min_us`/`max_us` fields instead of `value`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"scope\":\"{}\",\"name\":\"{}\",\"kind\":\"{}\",",
                json_escape(&s.scope),
                json_escape(&s.name),
                s.value.kind()
            );
            match s.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "\"value\":{v}}}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "\"value\":{v}}}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "\"count\":{},\"sum_us\":{},\"min_us\":{},\"max_us\":{}}}",
                        h.count, h.sum_us, h.min_us, h.max_us
                    );
                }
            }
        }
        out.push(']');
        out
    }
}

/// Nearest-rank percentile over an ascending-sorted slice: the smallest
/// element with at least `p`% of the samples at or below it. Returns 0
/// for an empty slice; `p` is clamped to `(0, 100]`.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let p = p.clamp(f64::MIN_POSITIVE, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank_at_tiny_sample_counts() {
        // 0 samples: defined as 0 for every percentile.
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[], 99.0), 0);
        // 1 sample: every percentile is that sample.
        assert_eq!(percentile(&[7], 50.0), 7);
        assert_eq!(percentile(&[7], 95.0), 7);
        assert_eq!(percentile(&[7], 99.0), 7);
        // 2 samples: p50 is the lower, p95/p99 the upper.
        assert_eq!(percentile(&[3, 9], 50.0), 3);
        assert_eq!(percentile(&[3, 9], 95.0), 9);
        assert_eq!(percentile(&[3, 9], 99.0), 9);
        // Degenerate p values clamp instead of panicking.
        assert_eq!(percentile(&[3, 9], 0.0), 3);
        assert_eq!(percentile(&[3, 9], 200.0), 9);
    }

    #[test]
    fn percentile_matches_nearest_rank_on_a_larger_sample() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 95.0), 95);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
    }

    #[test]
    fn counters_accumulate_and_scopes_stay_separate() {
        let mut reg = MetricsRegistry::new();
        reg.inc("engine", "steps.executed");
        reg.inc("engine", "steps.executed");
        reg.add("run:t1", "steps.executed", 5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("engine", "steps.executed"), 2);
        assert_eq!(snap.counter("run:t1", "steps.executed"), 5);
        assert_eq!(snap.counter("run:t2", "steps.executed"), 0);
        assert_eq!(snap.total_counter("steps.executed"), 7);
    }

    #[test]
    fn scope_aggregation_ignores_non_counters() {
        let mut reg = MetricsRegistry::new();
        reg.inc("run:t1", "retries");
        reg.inc("run:t2", "retries");
        reg.inc("run:t2", "retries");
        reg.gauge_set("engine", "retries", 99); // same name, different kind
        let snap = reg.snapshot();
        assert_eq!(snap.total_counter("retries"), 3, "gauges are not summed");
        assert_eq!(snap.scoped("run:t2").len(), 1);
    }

    #[test]
    fn histograms_track_bounds_and_mean() {
        let mut reg = MetricsRegistry::new();
        reg.observe("engine", "step.duration", Duration::from_secs(2));
        reg.observe("engine", "step.duration", Duration::from_secs(4));
        let h = reg.snapshot().histogram("engine", "step.duration");
        assert_eq!(h.count, 2);
        assert_eq!(h.min_us, 2_000_000);
        assert_eq!(h.max_us, 4_000_000);
        assert_eq!(h.mean_us(), 3_000_000.0);
    }

    #[test]
    fn exports_are_deterministic_and_ordered() {
        let mut reg = MetricsRegistry::new();
        reg.inc("z", "last");
        reg.inc("a", "first");
        reg.gauge_set("m", "level", -3);
        let snap = reg.snapshot();
        let text = snap.to_text();
        let a = text.find("a/first").unwrap();
        let z = text.find("z/last").unwrap();
        assert!(a < z, "sorted by scope");
        assert!(text.contains("m/level gauge -3"));
        assert_eq!(snap.to_text(), reg.snapshot().to_text());
        let json = snap.to_json();
        assert!(json.contains("\"scope\":\"m\",\"name\":\"level\",\"kind\":\"gauge\",\"value\":-3"));
    }

    #[test]
    fn snapshot_insert_keeps_order_and_replaces() {
        let mut snap = MetricsSnapshot::default();
        snap.insert("grid", "b", MetricValue::Counter(1));
        snap.insert("grid", "a", MetricValue::Counter(2));
        snap.insert("grid", "b", MetricValue::Counter(3));
        assert_eq!(snap.samples.len(), 2);
        assert_eq!(snap.samples[0].name, "a");
        assert_eq!(snap.counter("grid", "b"), 3);
    }

    /// A minimal recursive-descent JSON reader, independent of the
    /// exporter under test (and of the `dgf-xml` crate), so `to_json`
    /// escaping bugs can't hide behind a matching un-escaper.
    mod json {
        #[derive(Debug, Clone, PartialEq)]
        pub enum Value {
            Str(String),
            Num(f64),
            Int(i128),
            Array(Vec<Value>),
            Object(Vec<(String, Value)>),
        }

        impl Value {
            pub fn field(&self, key: &str) -> &Value {
                let Value::Object(fields) = self else { panic!("not an object: {self:?}") };
                &fields.iter().find(|(k, _)| k == key).unwrap_or_else(|| panic!("no field {key}")).1
            }
            pub fn as_str(&self) -> &str {
                let Value::Str(s) = self else { panic!("not a string: {self:?}") };
                s
            }
            pub fn as_int(&self) -> i128 {
                match self {
                    Value::Int(i) => *i,
                    other => panic!("not an integer: {other:?}"),
                }
            }
        }

        pub fn parse(input: &str) -> Value {
            let mut chars: Vec<char> = input.chars().collect();
            chars.reverse(); // pop() from the front
            let v = value(&mut chars);
            skip_ws(&mut chars);
            assert!(chars.is_empty(), "trailing input: {chars:?}");
            v
        }

        fn skip_ws(c: &mut Vec<char>) {
            while c.last().is_some_and(|ch| ch.is_ascii_whitespace()) {
                c.pop();
            }
        }

        fn expect(c: &mut Vec<char>, ch: char) {
            skip_ws(c);
            assert_eq!(c.pop(), Some(ch));
        }

        fn value(c: &mut Vec<char>) -> Value {
            skip_ws(c);
            match *c.last().expect("eof") {
                '"' => Value::Str(string(c)),
                '[' => {
                    expect(c, '[');
                    let mut items = Vec::new();
                    skip_ws(c);
                    if c.last() == Some(&']') {
                        c.pop();
                        return Value::Array(items);
                    }
                    loop {
                        items.push(value(c));
                        skip_ws(c);
                        match c.pop() {
                            Some(',') => continue,
                            Some(']') => return Value::Array(items),
                            other => panic!("bad array: {other:?}"),
                        }
                    }
                }
                '{' => {
                    expect(c, '{');
                    let mut fields = Vec::new();
                    skip_ws(c);
                    if c.last() == Some(&'}') {
                        c.pop();
                        return Value::Object(fields);
                    }
                    loop {
                        skip_ws(c);
                        let key = string(c);
                        expect(c, ':');
                        fields.push((key, value(c)));
                        skip_ws(c);
                        match c.pop() {
                            Some(',') => continue,
                            Some('}') => return Value::Object(fields),
                            other => panic!("bad object: {other:?}"),
                        }
                    }
                }
                _ => number(c),
            }
        }

        fn string(c: &mut Vec<char>) -> String {
            expect(c, '"');
            let mut out = String::new();
            loop {
                match c.pop().expect("unterminated string") {
                    '"' => return out,
                    '\\' => match c.pop().expect("bad escape") {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let hex: String = (0..4).map(|_| c.pop().expect("short \\u")).collect();
                            let code = u32::from_str_radix(&hex, 16).expect("bad \\u hex");
                            out.push(char::from_u32(code).expect("surrogate"));
                        }
                        other => panic!("bad escape \\{other}"),
                    },
                    ch => out.push(ch),
                }
            }
        }

        fn number(c: &mut Vec<char>) -> Value {
            let mut text = String::new();
            while c.last().is_some_and(|ch| ch.is_ascii_digit() || "+-.eE".contains(*ch)) {
                text.push(c.pop().unwrap());
            }
            if let Ok(i) = text.parse::<i128>() {
                Value::Int(i)
            } else {
                Value::Num(text.parse().expect("bad number"))
            }
        }
    }

    #[test]
    fn to_json_escapes_quotes_backslashes_and_control_chars() {
        let mut snap = MetricsSnapshot::default();
        snap.insert("sc\"ope", "na\\me", MetricValue::Counter(1));
        snap.insert("tab\there", "new\nline", MetricValue::Gauge(-7));
        snap.insert("bell\u{7}", "cr\rhere", MetricValue::Counter(2));
        let parsed = json::parse(&snap.to_json());
        let json::Value::Array(items) = &parsed else { panic!("not an array") };
        assert_eq!(items.len(), 3);
        let find = |scope: &str| {
            items
                .iter()
                .find(|v| v.field("scope").as_str() == scope)
                .unwrap_or_else(|| panic!("missing scope {scope:?}"))
        };
        assert_eq!(find("sc\"ope").field("name").as_str(), "na\\me");
        assert_eq!(find("tab\there").field("name").as_str(), "new\nline");
        assert_eq!(find("tab\there").field("value").as_int(), -7);
        assert_eq!(find("bell\u{7}").field("name").as_str(), "cr\rhere");
        // The bell control char must travel as a \uXXXX escape, not raw.
        assert!(snap.to_json().contains("\\u0007"));
    }

    #[test]
    fn to_json_keeps_non_ascii_and_extreme_numbers_exact() {
        let mut snap = MetricsSnapshot::default();
        snap.insert("grid", "байт.перемещено", MetricValue::Counter(u64::MAX));
        snap.insert("grid", "容量", MetricValue::Gauge(i64::MIN));
        let mut h = SimHistogram::default();
        h.observe(Duration(u64::MAX / 2));
        snap.insert("grid", "émoji-🚀", MetricValue::Histogram(h));
        let parsed = json::parse(&snap.to_json());
        let json::Value::Array(items) = &parsed else { panic!("not an array") };
        let find = |name: &str| {
            items
                .iter()
                .find(|v| v.field("name").as_str() == name)
                .unwrap_or_else(|| panic!("missing name {name:?}"))
        };
        // u64::MAX survives as an exact integer token (no float rounding).
        assert_eq!(find("байт.перемещено").field("value").as_int(), u64::MAX as i128);
        assert_eq!(find("容量").field("value").as_int(), i64::MIN as i128);
        let hist = find("émoji-🚀");
        assert_eq!(hist.field("kind").as_str(), "histogram");
        assert_eq!(hist.field("count").as_int(), 1);
        assert_eq!(hist.field("sum_us").as_int(), (u64::MAX / 2) as i128);
        assert_eq!(hist.field("min_us").as_int(), (u64::MAX / 2) as i128);
    }

    #[test]
    fn to_json_of_an_empty_snapshot_is_an_empty_array() {
        assert_eq!(MetricsSnapshot::default().to_json(), "[]");
        assert_eq!(json::parse("[]"), json::Value::Array(vec![]));
    }
}
