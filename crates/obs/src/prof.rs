//! `dgf-prof` — deterministic phase-attribution profiling.
//!
//! The engine's hot path is a handful of phases (DGL parse, the lint
//! gate, scheduling, step execution, trigger evaluation, provenance and
//! journal appends, telemetry sampling). This module attributes cost to
//! those phases as a *scoped tree*: a phase entered while another is on
//! the stack becomes (or reuses) a child node, so the profile reads
//! like a folded flamegraph of the engine's control flow.
//!
//! Every node accumulates four quantities:
//!
//! * `calls` — how many times the phase ran at this position;
//! * `sim_us` — simulation-clock time elapsed inside the phase;
//! * `wall_ns` — wall-clock time elapsed inside the phase;
//! * `allocs` — heap allocations performed inside the phase (zero
//!   unless [`CountingAllocator`] is installed as the global
//!   allocator).
//!
//! **Determinism contract:** the tree *structure*, `calls`, and
//! `sim_us` are pure functions of the engine's (deterministic)
//! execution, so two identically-seeded runs produce byte-identical
//! [`ProfileSnapshot::structure_text`] output — `scripts/verify.sh`
//! gates on this. `wall_ns` and `allocs` are report-only: they vary
//! between runs and machines and are excluded from the structure
//! rendering.

use dgf_simgrid::SimTime;
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The fixed phase catalogue. Interned: a phase's id is its discriminant,
/// and the profile tree keys children by it, so lookups never hash or
/// compare strings on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Phase {
    /// Parsing an inbound DGL XML document into a request.
    DglParse,
    /// The submit-time static-analysis gate (`dgf-lint`).
    LintGate,
    /// Scheduler binding: resolving an abstract task to a placement.
    Schedule,
    /// Dispatching one engine work item (start/op-done/exec-done/ilm).
    StepExecute,
    /// Polling the trigger engine and handling its firings.
    TriggerEval,
    /// Building and storing one provenance record.
    ProvenanceAppend,
    /// Framing and writing a journal record (command or transition).
    JournalAppend,
    /// The fsync beneath a journal append (write-ahead durability).
    JournalFsync,
    /// A telemetry sample pass (time-series gauges + health watchdog).
    TelemetrySample,
}

impl Phase {
    /// Every phase, in id order.
    pub const ALL: [Phase; 9] = [
        Phase::DglParse,
        Phase::LintGate,
        Phase::Schedule,
        Phase::StepExecute,
        Phase::TriggerEval,
        Phase::ProvenanceAppend,
        Phase::JournalAppend,
        Phase::JournalFsync,
        Phase::TelemetrySample,
    ];

    /// The phase's stable, kebab-case name (the wire and folded-stack
    /// vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            Phase::DglParse => "dgl-parse",
            Phase::LintGate => "lint-gate",
            Phase::Schedule => "schedule",
            Phase::StepExecute => "step-execute",
            Phase::TriggerEval => "trigger-eval",
            Phase::ProvenanceAppend => "provenance-append",
            Phase::JournalAppend => "journal-append",
            Phase::JournalFsync => "journal-fsync",
            Phase::TelemetrySample => "telemetry-sample",
        }
    }

    /// Parse a phase name produced by [`Phase::name`].
    pub fn parse(name: &str) -> Option<Phase> {
        Phase::ALL.iter().copied().find(|p| p.name() == name)
    }

    fn id(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The accumulated cost of one profile-tree node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Times the phase ran at this tree position.
    pub calls: u64,
    /// Simulation-clock µs elapsed inside the phase (deterministic).
    pub sim_us: u64,
    /// Wall-clock ns elapsed inside the phase (report-only).
    pub wall_ns: u64,
    /// Heap allocations inside the phase (report-only; zero unless
    /// [`CountingAllocator`] is the global allocator).
    pub allocs: u64,
}

#[derive(Debug)]
struct Node {
    phase: Phase,
    children: BTreeMap<u8, usize>,
    stats: PhaseStats,
}

#[derive(Debug)]
struct Frame {
    node: usize,
    wall: Instant,
    sim: SimTime,
    allocs: u64,
}

/// The phase profiler: a scope stack over an accumulating profile tree.
///
/// Not a public entry point on its own — the engine drives it through
/// the shared [`crate::Obs`] handle (`prof_enter` / `prof_exit`), which
/// stamps phases with the simulation clock it already maintains.
#[derive(Debug, Default)]
pub struct Profiler {
    nodes: Vec<Node>,
    roots: BTreeMap<u8, usize>,
    stack: Vec<Frame>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    fn child_of(&mut self, parent: Option<usize>, phase: Phase) -> usize {
        let map = match parent {
            Some(p) => &mut self.nodes[p].children,
            None => &mut self.roots,
        };
        if let Some(&idx) = map.get(&phase.id()) {
            return idx;
        }
        let idx = self.nodes.len();
        match parent {
            Some(p) => self.nodes[p].children.insert(phase.id(), idx),
            None => self.roots.insert(phase.id(), idx),
        };
        self.nodes.push(Node { phase, children: BTreeMap::new(), stats: PhaseStats::default() });
        idx
    }

    /// Enter `phase` at simulation time `now`, nesting under the
    /// currently open phase (if any).
    pub fn enter(&mut self, phase: Phase, now: SimTime) {
        let parent = self.stack.last().map(|f| f.node);
        let node = self.child_of(parent, phase);
        self.stack.push(Frame { node, wall: Instant::now(), sim: now, allocs: allocations() });
    }

    /// Exit the innermost open phase at simulation time `now`,
    /// accumulating its cost. `phase` documents the caller's intent;
    /// enters and exits must pair, and a mismatch is a bug in the
    /// instrumented code (debug builds assert). Exiting with nothing
    /// open is a no-op.
    pub fn exit(&mut self, phase: Phase, now: SimTime) {
        let Some(frame) = self.stack.pop() else { return };
        debug_assert_eq!(self.nodes[frame.node].phase, phase, "unbalanced phase scope");
        let _ = phase;
        let stats = &mut self.nodes[frame.node].stats;
        stats.calls += 1;
        stats.sim_us += now.0.saturating_sub(frame.sim.0);
        stats.wall_ns += frame.wall.elapsed().as_nanos() as u64;
        stats.allocs += allocations().saturating_sub(frame.allocs);
    }

    /// Fold an externally-measured leaf into the tree as a child of the
    /// currently open phase: `calls` occurrences totalling `wall_ns`.
    /// Used for costs measured below the engine's instrumentation
    /// boundary (the journal's fsyncs), which are instantaneous in
    /// simulation time.
    pub fn record_leaf(&mut self, phase: Phase, calls: u64, wall_ns: u64) {
        if calls == 0 && wall_ns == 0 {
            return;
        }
        let parent = self.stack.last().map(|f| f.node);
        let node = self.child_of(parent, phase);
        let stats = &mut self.nodes[node].stats;
        stats.calls += calls;
        stats.wall_ns += wall_ns;
    }

    /// Drop every accumulated node and any open scopes. Resets happen
    /// between requests (`profileQuery reset="true"`), never inside an
    /// instrumented phase, so abandoning open frames is safe: the
    /// matching exits become no-ops against the emptied stack.
    pub fn reset(&mut self) {
        self.nodes.clear();
        self.roots.clear();
        self.stack.clear();
    }

    /// A point-in-time copy of the profile tree, in deterministic
    /// depth-first order (children by phase id).
    pub fn snapshot(&self) -> ProfileSnapshot {
        let mut nodes = Vec::with_capacity(self.nodes.len());
        let mut work: Vec<(usize, u32)> =
            self.roots.values().rev().map(|&idx| (idx, 0)).collect();
        while let Some((idx, depth)) = work.pop() {
            let node = &self.nodes[idx];
            let child_wall: u64 =
                node.children.values().map(|&c| self.nodes[c].stats.wall_ns).sum();
            let child_sim: u64 =
                node.children.values().map(|&c| self.nodes[c].stats.sim_us).sum();
            nodes.push(ProfileNode {
                phase: node.phase,
                depth,
                stats: node.stats,
                self_wall_ns: node.stats.wall_ns.saturating_sub(child_wall),
                self_sim_us: node.stats.sim_us.saturating_sub(child_sim),
            });
            for &child in node.children.values().rev() {
                work.push((child, depth + 1));
            }
        }
        ProfileSnapshot { nodes }
    }
}

/// One node of a [`ProfileSnapshot`], positioned by `depth` in the
/// snapshot's depth-first order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileNode {
    /// The phase at this tree position.
    pub phase: Phase,
    /// Nesting depth (roots are 0).
    pub depth: u32,
    /// Accumulated cost, inclusive of children.
    pub stats: PhaseStats,
    /// Wall ns net of children (the folded-stack "self" value).
    pub self_wall_ns: u64,
    /// Sim µs net of children.
    pub self_sim_us: u64,
}

/// A point-in-time copy of the profile tree, in depth-first order with
/// children ordered by phase id — a deterministic serialization of the
/// tree shape.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// The nodes, depth-first.
    pub nodes: Vec<ProfileNode>,
}

impl ProfileSnapshot {
    /// True when nothing was profiled.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// `(stack-path, node)` pairs in depth-first order, paths rendered
    /// as semicolon-joined phase names (`step-execute;schedule`).
    pub fn flattened(&self) -> Vec<(String, &ProfileNode)> {
        let mut stack: Vec<&'static str> = Vec::new();
        self.nodes
            .iter()
            .map(|node| {
                stack.truncate(node.depth as usize);
                stack.push(node.phase.name());
                (stack.join(";"), node)
            })
            .collect()
    }

    /// The profile as folded-stack text: one `path value` line per
    /// node, value = *self* wall nanoseconds. The format is what
    /// `flamegraph.pl` and inferno consume directly:
    ///
    /// ```text
    /// step-execute;schedule 182934
    /// ```
    ///
    /// Ends with exactly one newline (empty when nothing was profiled).
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for (path, node) in self.flattened() {
            out.push_str(&path);
            out.push(' ');
            out.push_str(&node.self_wall_ns.to_string());
            out.push('\n');
        }
        out
    }

    /// The deterministic half of the profile: tree shape, call counts,
    /// and sim-time totals, with the report-only fields (wall, allocs)
    /// omitted. Two identically-seeded runs render byte-identical
    /// structure text; `scripts/verify.sh` gates on it.
    pub fn structure_text(&self) -> String {
        let mut out = String::from("# dgf profile structure (wall/alloc fields zeroed)\n");
        for (path, node) in self.flattened() {
            out.push_str(&format!(
                "{path} calls={} sim_us={}\n",
                node.stats.calls, node.stats.sim_us
            ));
        }
        out
    }

    /// Total wall ns across root nodes (the profiled grand total).
    pub fn total_wall_ns(&self) -> u64 {
        self.nodes.iter().filter(|n| n.depth == 0).map(|n| n.stats.wall_ns).sum()
    }
}

// ---------------------------------------------------------------------
// Allocation counting
// ---------------------------------------------------------------------

static ALLOCATION_COUNT: AtomicU64 = AtomicU64::new(0);

/// The number of heap allocations observed by [`CountingAllocator`]
/// since process start — zero forever if it was never installed.
pub fn allocations() -> u64 {
    ALLOCATION_COUNT.load(Ordering::Relaxed)
}

/// An opt-in counting wrapper around the system allocator. Binaries
/// that want per-phase allocation deltas (the bench runner does)
/// install it:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: dgf_obs::CountingAllocator = dgf_obs::CountingAllocator;
/// ```
///
/// The count is process-global; attribute it per phase only in
/// single-threaded measurement harnesses.
pub struct CountingAllocator;

// SAFETY: delegates every operation to `System` unchanged; the only
// addition is a relaxed atomic increment, which cannot violate the
// GlobalAlloc contract.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime(us)
    }

    #[test]
    fn phases_nest_into_a_tree() {
        let mut p = Profiler::new();
        p.enter(Phase::StepExecute, t(0));
        p.enter(Phase::Schedule, t(0));
        p.exit(Phase::Schedule, t(5));
        p.exit(Phase::StepExecute, t(10));
        p.enter(Phase::StepExecute, t(10));
        p.exit(Phase::StepExecute, t(12));

        let snap = p.snapshot();
        let flat = snap.flattened();
        let paths: Vec<&str> = flat.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["step-execute", "step-execute;schedule"]);
        assert_eq!(flat[0].1.stats.calls, 2);
        assert_eq!(flat[0].1.stats.sim_us, 12);
        assert_eq!(flat[1].1.stats.calls, 1);
        assert_eq!(flat[1].1.stats.sim_us, 5);
        assert_eq!(flat[0].1.self_sim_us, 7, "self time nets out the child");
    }

    #[test]
    fn same_phase_at_different_depths_is_distinct() {
        let mut p = Profiler::new();
        p.enter(Phase::TriggerEval, t(0));
        p.enter(Phase::LintGate, t(0));
        p.exit(Phase::LintGate, t(0));
        p.exit(Phase::TriggerEval, t(0));
        p.enter(Phase::LintGate, t(0));
        p.exit(Phase::LintGate, t(0));
        let snap = p.snapshot();
        let paths: Vec<String> = snap.flattened().into_iter().map(|(p, _)| p).collect();
        assert_eq!(paths, vec!["lint-gate", "trigger-eval", "trigger-eval;lint-gate"]);
    }

    #[test]
    fn structure_text_is_wall_free_and_deterministic() {
        let build = || {
            let mut p = Profiler::new();
            p.enter(Phase::DglParse, t(1));
            p.exit(Phase::DglParse, t(2));
            p.enter(Phase::StepExecute, t(2));
            p.enter(Phase::JournalAppend, t(2));
            p.record_leaf(Phase::JournalFsync, 3, 999);
            p.exit(Phase::JournalAppend, t(2));
            p.exit(Phase::StepExecute, t(9));
            p.snapshot().structure_text()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "wall time must not leak into structure text");
        assert!(a.contains("dgl-parse calls=1 sim_us=1"), "{a}");
        assert!(a.contains("step-execute;journal-append;journal-fsync calls=3 sim_us=0"), "{a}");
        let body: Vec<&str> = a.lines().skip(1).collect();
        assert!(!body.iter().any(|l| l.contains("wall")), "{a}");
    }

    #[test]
    fn folded_lines_parse_as_stack_space_value() {
        let mut p = Profiler::new();
        p.enter(Phase::StepExecute, t(0));
        p.enter(Phase::ProvenanceAppend, t(0));
        p.exit(Phase::ProvenanceAppend, t(0));
        p.exit(Phase::StepExecute, t(0));
        let folded = p.snapshot().folded();
        for line in folded.lines() {
            let (stack, value) = line.rsplit_once(' ').expect("folded line has a value");
            assert!(!stack.is_empty());
            value.parse::<u64>().expect("folded value is an integer");
            for frame in stack.split(';') {
                assert!(Phase::parse(frame).is_some(), "unknown frame {frame:?}");
            }
        }
        assert!(folded.ends_with('\n'));
    }

    #[test]
    fn exit_without_enter_is_a_noop_and_reset_clears() {
        let mut p = Profiler::new();
        p.exit(Phase::DglParse, t(0));
        assert!(p.snapshot().is_empty());
        p.enter(Phase::DglParse, t(0));
        p.exit(Phase::DglParse, t(1));
        assert!(!p.snapshot().is_empty());
        p.reset();
        assert!(p.snapshot().is_empty());
    }

    #[test]
    fn phase_names_round_trip() {
        for phase in Phase::ALL {
            assert_eq!(Phase::parse(phase.name()), Some(phase));
        }
        assert_eq!(Phase::parse("nonsense"), None);
    }
}
