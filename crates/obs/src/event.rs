//! The typed event taxonomy of the flight recorder.
//!
//! Each variant of [`EventKind`] is one observable action of the DfMS
//! stack, chosen to make the §3.1 promise — a system whose state "can be
//! queried at any time" — concrete: what the engine dispatched, what the
//! planner chose, what the grid moved, and what the fault machinery did
//! about failures. Event names are dotted and stable
//! (`subsystem.action`); `docs/OBSERVABILITY.md` is the normative list.

use dgf_simgrid::SimTime;
use std::fmt;

/// One typed observation. Fields carry the identifiers an operator needs
/// to correlate the event with a transaction, a flow-tree node, and the
/// grid resources involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A flow was accepted and a transaction opened (`run.submitted`).
    RunSubmitted {
        /// Transaction id.
        txn: String,
        /// Root flow name.
        flow: String,
        /// Submitting principal.
        user: String,
    },
    /// A run's root node reached a terminal state (`run.finished`).
    RunFinished {
        /// Transaction id.
        txn: String,
        /// Terminal state (`completed`, `failed`, `stopped`).
        state: String,
    },
    /// A step node began executing (`step.started`).
    StepStarted {
        /// Transaction id.
        txn: String,
        /// Hierarchical node path (`/0/2`).
        node: String,
        /// The step's DGL name.
        name: String,
    },
    /// A step node reached a terminal state (`step.finished`).
    StepFinished {
        /// Transaction id.
        txn: String,
        /// Hierarchical node path.
        node: String,
        /// The step's DGL name.
        name: String,
        /// Outcome (`completed`, `failed`, `skipped`).
        outcome: String,
    },
    /// The planner bound an abstract task to concrete infrastructure
    /// (`planner.decision`) — §2.3's "final infrastructure-based
    /// execution logic".
    PlannerDecision {
        /// Transaction id.
        txn: String,
        /// Hierarchical node path.
        node: String,
        /// The task's code identifier.
        code: String,
        /// Chosen compute resource name.
        compute: String,
        /// Its domain name.
        domain: String,
        /// Estimated stage-in + execution time, in µs.
        est_us: u64,
    },
    /// An input-staging transfer was scheduled (`transfer.scheduled`).
    TransferScheduled {
        /// Transaction id.
        txn: String,
        /// Hierarchical node path.
        node: String,
        /// Logical path being staged.
        path: String,
        /// Source storage resource name.
        src: String,
        /// Destination storage resource name.
        dst: String,
        /// Bytes moved.
        bytes: u64,
    },
    /// A node was parked until its schedule window reopens
    /// (`window.wait`).
    WindowWait {
        /// Transaction id.
        txn: String,
        /// Hierarchical node path.
        node: String,
        /// Simulation time (µs) at which dispatch resumes.
        resume_us: u64,
    },
    /// A trigger's condition matched and its action was dispatched
    /// (`trigger.fired`).
    TriggerFired {
        /// Trigger name.
        trigger: String,
        /// Action kind (`notify` or `flow`).
        action: String,
    },
    /// A step failed and its error policy scheduled a retry
    /// (`fault.retry`).
    FaultRetry {
        /// Transaction id.
        txn: String,
        /// Hierarchical node path.
        node: String,
        /// Attempt number just consumed (1-based).
        attempt: u32,
    },
    /// A provenance record was appended (`provenance.write`) — the §2.1
    /// record that stays inspectable "even (years) after the execution".
    ProvenanceWrite {
        /// Transaction id.
        txn: String,
        /// Hierarchical node path.
        node: String,
        /// The recorded verb (operation name or `flow`).
        verb: String,
        /// The recorded outcome.
        outcome: String,
    },
    /// The submit-time lint gate analyzed a flow (`lint.report`, or
    /// `lint.rejected` when error-severity diagnostics refused it).
    LintReport {
        /// Root flow name (no transaction exists yet at lint time).
        flow: String,
        /// Error-severity diagnostics found.
        errors: u64,
        /// Warning-severity diagnostics found.
        warnings: u64,
        /// True when the gate refused submission.
        rejected: bool,
    },
    /// An SLA deadline alert changed lifecycle state (`sla.pending` /
    /// `sla.firing` / `sla.resolved` — named by the state the alert
    /// *entered*).
    SlaAlert {
        /// Transaction id of the governed flow.
        txn: String,
        /// Objective class (`flow` for a per-flow deadline).
        class: String,
        /// The lifecycle state entered.
        state: crate::AlertState,
        /// Budget consumed at the transition, integer
        /// parts-per-million (1_000_000 = deadline reached).
        burn_ppm: u64,
    },
    /// The flow-progress watchdog re-classified a flow
    /// (`health.healthy` / `health.slow` / `health.stalled` — named by
    /// the state the flow *entered*).
    HealthTransition {
        /// Transaction id.
        txn: String,
        /// Classification the flow left.
        from: crate::HealthState,
        /// Classification the flow entered.
        to: crate::HealthState,
        /// Sim-time (µs) of the flow's last progress (completed step or
        /// submission).
        last_progress_us: u64,
    },
}

impl EventKind {
    /// The stable dotted event name (`run.submitted`, `step.finished`,
    /// ...). `docs/OBSERVABILITY.md` documents every name.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::RunSubmitted { .. } => "run.submitted",
            EventKind::RunFinished { .. } => "run.finished",
            EventKind::StepStarted { .. } => "step.started",
            EventKind::StepFinished { .. } => "step.finished",
            EventKind::PlannerDecision { .. } => "planner.decision",
            EventKind::TransferScheduled { .. } => "transfer.scheduled",
            EventKind::WindowWait { .. } => "window.wait",
            EventKind::TriggerFired { .. } => "trigger.fired",
            EventKind::FaultRetry { .. } => "fault.retry",
            EventKind::ProvenanceWrite { .. } => "provenance.write",
            EventKind::LintReport { rejected, .. } => {
                if *rejected {
                    "lint.rejected"
                } else {
                    "lint.report"
                }
            }
            EventKind::SlaAlert { state, .. } => match state {
                crate::AlertState::Pending => "sla.pending",
                crate::AlertState::Firing => "sla.firing",
                crate::AlertState::Resolved => "sla.resolved",
            },
            EventKind::HealthTransition { to, .. } => match to {
                crate::HealthState::Healthy => "health.healthy",
                crate::HealthState::Slow => "health.slow",
                crate::HealthState::Stalled => "health.stalled",
            },
        }
    }

    /// The transaction this event belongs to, when it has one (trigger
    /// firings are grid-global and return `None`).
    pub fn transaction(&self) -> Option<&str> {
        match self {
            EventKind::RunSubmitted { txn, .. }
            | EventKind::RunFinished { txn, .. }
            | EventKind::StepStarted { txn, .. }
            | EventKind::StepFinished { txn, .. }
            | EventKind::PlannerDecision { txn, .. }
            | EventKind::TransferScheduled { txn, .. }
            | EventKind::WindowWait { txn, .. }
            | EventKind::FaultRetry { txn, .. }
            | EventKind::ProvenanceWrite { txn, .. }
            | EventKind::SlaAlert { txn, .. }
            | EventKind::HealthTransition { txn, .. } => Some(txn),
            EventKind::TriggerFired { .. } | EventKind::LintReport { .. } => None,
        }
    }

    /// The flow-tree node path this event is anchored to, when any.
    pub fn node(&self) -> Option<&str> {
        match self {
            EventKind::StepStarted { node, .. }
            | EventKind::StepFinished { node, .. }
            | EventKind::PlannerDecision { node, .. }
            | EventKind::TransferScheduled { node, .. }
            | EventKind::WindowWait { node, .. }
            | EventKind::FaultRetry { node, .. }
            | EventKind::ProvenanceWrite { node, .. } => Some(node),
            EventKind::RunSubmitted { .. } => Some("/"),
            EventKind::RunFinished { .. } => Some("/"),
            EventKind::SlaAlert { .. } => Some("/"),
            EventKind::HealthTransition { .. } => Some("/"),
            EventKind::TriggerFired { .. } | EventKind::LintReport { .. } => None,
        }
    }

    /// A one-line human-readable rendering of the variant's payload
    /// (without the event name).
    pub fn detail(&self) -> String {
        match self {
            EventKind::RunSubmitted { txn, flow, user } => {
                format!("{txn} flow={flow} user={user}")
            }
            EventKind::RunFinished { txn, state } => format!("{txn} state={state}"),
            EventKind::StepStarted { txn, node, name } => format!("{txn}{node} name={name}"),
            EventKind::StepFinished { txn, node, name, outcome } => {
                format!("{txn}{node} name={name} outcome={outcome}")
            }
            EventKind::PlannerDecision { txn, node, code, compute, domain, est_us } => {
                format!("{txn}{node} code={code} compute={compute} domain={domain} est_us={est_us}")
            }
            EventKind::TransferScheduled { txn, node, path, src, dst, bytes } => {
                format!("{txn}{node} path={path} src={src} dst={dst} bytes={bytes}")
            }
            EventKind::WindowWait { txn, node, resume_us } => {
                format!("{txn}{node} resume_us={resume_us}")
            }
            EventKind::TriggerFired { trigger, action } => {
                format!("trigger={trigger} action={action}")
            }
            EventKind::FaultRetry { txn, node, attempt } => {
                format!("{txn}{node} attempt={attempt}")
            }
            EventKind::ProvenanceWrite { txn, node, verb, outcome } => {
                format!("{txn}{node} verb={verb} outcome={outcome}")
            }
            EventKind::LintReport { flow, errors, warnings, rejected } => {
                format!("flow={flow} errors={errors} warnings={warnings} rejected={rejected}")
            }
            EventKind::SlaAlert { txn, class, state, burn_ppm } => {
                format!("{txn} class={class} state={state} burn_ppm={burn_ppm}")
            }
            EventKind::HealthTransition { txn, from, to, last_progress_us } => {
                format!("{txn} {from}->{to} last_progress_us={last_progress_us}")
            }
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name(), self.detail())
    }
}

/// A recorded event: a sequence number (total order within one
/// recorder), the simulation-clock timestamp, and the typed payload.
///
/// Timestamps come from the engine's deterministic clock, so two runs of
/// the same seeded scenario produce bit-for-bit identical streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsEvent {
    /// Monotonic sequence number (gap-free even when the ring drops).
    pub seq: u64,
    /// Simulation time at which the event occurred.
    pub time: SimTime,
    /// The typed payload.
    pub kind: EventKind,
}

impl fmt::Display for ObsEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} @{} {}", self.seq, self.time, self.kind)
    }
}
