//! `dgf-obs` — the observability layer of the Datagridflow Management
//! System.
//!
//! The paper requires a DfMS whose state "can be queried at any time"
//! at any granularity (§3.1) and provenance that stays inspectable
//! "even (years) after the execution" (§2.1). This crate supplies the
//! runtime half of that promise:
//!
//! * a **flight recorder** ([`FlightRecorder`]): a bounded ring buffer
//!   of typed [`ObsEvent`]s stamped with the *simulation* clock, so a
//!   recording of a seeded scenario is bit-for-bit deterministic;
//! * a **metrics registry** ([`MetricsRegistry`]): counters, gauges,
//!   and sim-time histograms under per-subsystem and per-run scopes,
//!   with plain-text and JSON exporters ([`MetricsSnapshot`]);
//! * a cheap, clonable, thread-safe handle ([`Obs`]) that every
//!   subsystem (engine, scheduler, triggers, server, network) holds to
//!   write into one shared recorder + registry.
//!
//! The engine advances the handle's notion of "now" ([`Obs::set_now`])
//! once per dispatched work item; subsystems below the engine record
//! events without threading a clock through their signatures.
//!
//! ```
//! use dgf_obs::{EventKind, Obs};
//! use dgf_simgrid::SimTime;
//!
//! let obs = Obs::new(1024);
//! obs.set_now(SimTime(5));
//! obs.record(EventKind::TriggerFired { trigger: "t".into(), action: "notify".into() });
//! obs.inc("triggers", "fired");
//! assert_eq!(obs.events().len(), 1);
//! assert_eq!(obs.events()[0].time, SimTime(5));
//! assert_eq!(obs.snapshot().counter("triggers", "fired"), 1);
//! ```

#![warn(missing_docs)]

mod event;
mod metrics;
mod recorder;
mod ring;

pub use event::{EventKind, ObsEvent};
pub use metrics::{MetricSample, MetricValue, MetricsRegistry, MetricsSnapshot, SimHistogram};
pub use recorder::{FlightRecorder, DEFAULT_RING_CAPACITY};
pub use ring::RingBuffer;

use dgf_simgrid::{Duration, SimTime};
use std::sync::{Arc, Mutex, MutexGuard};

#[derive(Debug)]
struct Inner {
    now: SimTime,
    recorder: FlightRecorder,
    metrics: MetricsRegistry,
}

/// The shared observability handle: one flight recorder plus one
/// metrics registry behind a mutex, cloned into every subsystem.
///
/// All writes are cheap (a lock, a push or a map update). The handle is
/// `Send + Sync`; the threaded server front-end shares it with client
/// threads safely. Lock poisoning is ignored — observability data is
/// advisory and a panicking writer must not take readers down.
#[derive(Debug, Clone)]
pub struct Obs {
    inner: Arc<Mutex<Inner>>,
}

impl Obs {
    /// A fresh recorder + registry; the ring retains `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Obs {
            inner: Arc::new(Mutex::new(Inner {
                now: SimTime::ZERO,
                recorder: FlightRecorder::new(capacity),
                metrics: MetricsRegistry::new(),
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Advance the recorder's simulation clock. The engine calls this
    /// once per dispatched work item; everything recorded until the next
    /// call is stamped with this instant.
    pub fn set_now(&self, now: SimTime) {
        self.lock().now = now;
    }

    /// The recorder's current simulation clock.
    pub fn now(&self) -> SimTime {
        self.lock().now
    }

    /// Record an event stamped with the current simulation clock.
    pub fn record(&self, kind: EventKind) {
        let mut inner = self.lock();
        let now = inner.now;
        inner.recorder.record(now, kind);
    }

    /// Record an event at an explicit simulation time (the engine uses
    /// this to stamp precisely even before `set_now` has caught up).
    pub fn record_at(&self, time: SimTime, kind: EventKind) {
        self.lock().recorder.record(time, kind);
    }

    /// Increment the counter `scope/name` by one.
    pub fn inc(&self, scope: &str, name: &str) {
        self.lock().metrics.inc(scope, name);
    }

    /// Increment the counter `scope/name` by `n`.
    pub fn add(&self, scope: &str, name: &str, n: u64) {
        self.lock().metrics.add(scope, name, n);
    }

    /// Set the gauge `scope/name`.
    pub fn gauge_set(&self, scope: &str, name: &str, value: i64) {
        self.lock().metrics.gauge_set(scope, name, value);
    }

    /// Fold a duration into the histogram `scope/name`.
    pub fn observe(&self, scope: &str, name: &str, d: Duration) {
        self.lock().metrics.observe(scope, name, d);
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.lock().recorder.events()
    }

    /// The `n` most recent retained events, oldest first.
    pub fn recent_events(&self, n: usize) -> Vec<ObsEvent> {
        self.lock().recorder.recent(n)
    }

    /// Count of events ever recorded (including evicted ones).
    pub fn events_total(&self) -> u64 {
        self.lock().recorder.total()
    }

    /// Count of events evicted by the bounded ring.
    pub fn events_dropped(&self) -> u64 {
        self.lock().recorder.dropped()
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.lock().metrics.snapshot()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Self::new(DEFAULT_RING_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_recorder() {
        let a = Obs::new(16);
        let b = a.clone();
        a.set_now(SimTime(7));
        b.record(EventKind::TriggerFired { trigger: "x".into(), action: "flow".into() });
        b.inc("triggers", "fired");
        assert_eq!(a.events().len(), 1);
        assert_eq!(a.events()[0].time, SimTime(7));
        assert_eq!(a.snapshot().counter("triggers", "fired"), 1);
    }

    #[test]
    fn record_at_overrides_the_shared_clock() {
        let obs = Obs::new(16);
        obs.set_now(SimTime(100));
        obs.record_at(SimTime(42), EventKind::TriggerFired { trigger: "t".into(), action: "notify".into() });
        assert_eq!(obs.events()[0].time, SimTime(42));
        assert_eq!(obs.now(), SimTime(100));
    }

    #[test]
    fn handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Obs>();
    }
}
