//! `dgf-obs` — the observability layer of the Datagridflow Management
//! System.
//!
//! The paper requires a DfMS whose state "can be queried at any time"
//! at any granularity (§3.1) and provenance that stays inspectable
//! "even (years) after the execution" (§2.1). This crate supplies the
//! runtime half of that promise:
//!
//! * a **flight recorder** ([`FlightRecorder`]): a bounded ring buffer
//!   of typed [`ObsEvent`]s stamped with the *simulation* clock, so a
//!   recording of a seeded scenario is bit-for-bit deterministic;
//! * a **metrics registry** ([`MetricsRegistry`]): counters, gauges,
//!   and sim-time histograms under per-subsystem and per-run scopes,
//!   with plain-text and JSON exporters ([`MetricsSnapshot`]);
//! * a cheap, clonable, thread-safe handle ([`Obs`]) that every
//!   subsystem (engine, scheduler, triggers, server, network) holds to
//!   write into one shared recorder + registry.
//!
//! The engine advances the handle's notion of "now" ([`Obs::set_now`])
//! once per dispatched work item; subsystems below the engine record
//! events without threading a clock through their signatures.
//!
//! ```
//! use dgf_obs::{EventKind, Obs};
//! use dgf_simgrid::SimTime;
//!
//! let obs = Obs::new(1024);
//! obs.set_now(SimTime(5));
//! obs.record(EventKind::TriggerFired { trigger: "t".into(), action: "notify".into() });
//! obs.inc("triggers", "fired");
//! assert_eq!(obs.events().len(), 1);
//! assert_eq!(obs.events()[0].time, SimTime(5));
//! assert_eq!(obs.snapshot().counter("triggers", "fired"), 1);
//! ```

#![warn(missing_docs)]

mod event;
mod health;
mod metrics;
mod perfetto;
mod prof;
mod recorder;
mod ring;
mod span;
mod timeseries;
mod trace;
mod trace_export;
mod why;

pub use event::{EventKind, ObsEvent};
pub use health::{FlowHealth, HealthConfig, HealthMonitor, HealthState, HealthTransition};
pub use metrics::{percentile, MetricSample, MetricValue, MetricsRegistry, MetricsSnapshot, SimHistogram};
pub use perfetto::{
    decode_perfetto, to_perfetto_trace, to_perfetto_trace_with_profile, PerfettoEvent,
    PerfettoPacket, PerfettoTrack, SLICE_BEGIN, SLICE_END,
};
pub use prof::{
    allocations, CountingAllocator, Phase, PhaseStats, ProfileNode, ProfileSnapshot, Profiler,
};
pub use recorder::{EventTail, FlightRecorder, DEFAULT_RING_CAPACITY};
pub use ring::RingBuffer;
pub use span::{Span, SpanContext, SpanId, SpanKind, TraceId};
pub use timeseries::{render_scrape, Rollup, SamplingConfig, SeriesPoint, TimeSeries, TimeSeriesStore};
pub use trace_export::{to_chrome_trace, to_chrome_trace_with_profile};
pub use why::{
    critical_path, AlertState, Bottleneck, CriticalPath, PathSegment, SlaAlert, WaitMark,
    WaitState,
};

use dgf_simgrid::{Duration, SimTime};
use std::sync::{Arc, Mutex, MutexGuard};

#[derive(Debug)]
struct Inner {
    now: SimTime,
    recorder: FlightRecorder,
    metrics: MetricsRegistry,
    traces: trace::TraceStore,
    timeseries: TimeSeriesStore,
    health: HealthMonitor,
    prof: Profiler,
    why: why::WhyStore,
}

/// The shared observability handle: one flight recorder plus one
/// metrics registry behind a mutex, cloned into every subsystem.
///
/// All writes are cheap (a lock, a push or a map update). The handle is
/// `Send + Sync`; the threaded server front-end shares it with client
/// threads safely. Lock poisoning is ignored — observability data is
/// advisory and a panicking writer must not take readers down.
#[derive(Debug, Clone)]
pub struct Obs {
    inner: Arc<Mutex<Inner>>,
}

impl Obs {
    /// A fresh recorder + registry; the ring retains `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Obs {
            inner: Arc::new(Mutex::new(Inner {
                now: SimTime::ZERO,
                recorder: FlightRecorder::new(capacity),
                metrics: MetricsRegistry::new(),
                traces: trace::TraceStore::default(),
                timeseries: TimeSeriesStore::new(SamplingConfig::default()),
                health: HealthMonitor::new(HealthConfig::default()),
                prof: Profiler::new(),
                why: why::WhyStore::default(),
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Advance the recorder's simulation clock. The engine calls this
    /// once per dispatched work item; everything recorded until the next
    /// call is stamped with this instant.
    ///
    /// The clock is monotonic: an attempt to move it backwards is
    /// ignored (the recorder keeps the later time), so a misordered
    /// caller can never make recordings non-replayable by stamping
    /// events before ones already recorded.
    pub fn set_now(&self, now: SimTime) {
        let mut inner = self.lock();
        if now > inner.now {
            inner.now = now;
        }
    }

    /// The recorder's current simulation clock.
    pub fn now(&self) -> SimTime {
        self.lock().now
    }

    /// Record an event stamped with the current simulation clock.
    pub fn record(&self, kind: EventKind) {
        let mut inner = self.lock();
        let now = inner.now;
        inner.recorder.record(now, kind);
    }

    /// Record an event at an explicit simulation time (the engine uses
    /// this to stamp precisely even before `set_now` has caught up).
    pub fn record_at(&self, time: SimTime, kind: EventKind) {
        self.lock().recorder.record(time, kind);
    }

    /// Increment the counter `scope/name` by one.
    pub fn inc(&self, scope: &str, name: &str) {
        self.lock().metrics.inc(scope, name);
    }

    /// Increment the counter `scope/name` by `n`.
    pub fn add(&self, scope: &str, name: &str, n: u64) {
        self.lock().metrics.add(scope, name, n);
    }

    /// Set the gauge `scope/name`.
    pub fn gauge_set(&self, scope: &str, name: &str, value: i64) {
        self.lock().metrics.gauge_set(scope, name, value);
    }

    /// Fold a duration into the histogram `scope/name`.
    pub fn observe(&self, scope: &str, name: &str, d: Duration) {
        self.lock().metrics.observe(scope, name, d);
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.lock().recorder.events()
    }

    /// The `n` most recent retained events, oldest first.
    pub fn recent_events(&self, n: usize) -> Vec<ObsEvent> {
        self.lock().recorder.recent(n)
    }

    /// Count of events ever recorded (including evicted ones).
    pub fn events_total(&self) -> u64 {
        self.lock().recorder.total()
    }

    /// Count of events evicted by the bounded ring.
    pub fn events_dropped(&self) -> u64 {
        self.lock().recorder.dropped()
    }

    /// A point-in-time copy of every metric, including the per-span-kind
    /// latency percentiles (`trace/span.<kind>.p{50,95,99}_us` gauges,
    /// nearest-rank over completed spans' sim-time durations).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        let mut snap = inner.metrics.snapshot();
        for (kind, durations) in inner.traces.durations() {
            let mut sorted = durations.clone();
            sorted.sort_unstable();
            for (p, tag) in [(50.0, "p50_us"), (95.0, "p95_us"), (99.0, "p99_us")] {
                snap.insert(
                    "trace",
                    &format!("span.{}.{}", kind.name(), tag),
                    MetricValue::Gauge(percentile(&sorted, p) as i64),
                );
            }
        }
        snap
    }

    // ------------------------------------------------------------------
    // Event tail (cursor-based reads)
    // ------------------------------------------------------------------

    /// Read retained events from `cursor` (a sequence number), at most
    /// `limit` of them; see [`FlightRecorder::tail`] for the no-gap /
    /// no-duplicate cursor protocol.
    pub fn tail(&self, cursor: u64, limit: usize) -> EventTail {
        self.lock().recorder.tail(cursor, limit)
    }

    // ------------------------------------------------------------------
    // Time-series telemetry
    // ------------------------------------------------------------------

    /// Replace the time-series sampling schedule (interval + per-series
    /// ring capacity). Existing points are kept.
    pub fn ts_configure(&self, config: SamplingConfig) {
        self.lock().timeseries.set_config(config);
    }

    /// The active sampling schedule.
    pub fn ts_config(&self) -> SamplingConfig {
        self.lock().timeseries.config()
    }

    /// True when at least one sampling interval has elapsed (on the
    /// shared sim clock) since the last [`Obs::ts_mark_sampled`]. The
    /// engine checks this once per dispatched work item.
    pub fn ts_due(&self) -> bool {
        let inner = self.lock();
        let now = inner.now;
        inner.timeseries.due(now)
    }

    /// Note that a full sample pass just happened at the shared clock.
    pub fn ts_mark_sampled(&self) {
        let mut inner = self.lock();
        let now = inner.now;
        inner.timeseries.mark_sampled(now);
    }

    /// Append a point (stamped with the shared clock) to the
    /// `(name, label)` series.
    pub fn ts_record(&self, name: &str, label: &str, value: i64) {
        let mut inner = self.lock();
        let now = inner.now;
        inner.timeseries.record(name, label, now, value);
    }

    /// A copy of one series, if any point was ever recorded for it.
    pub fn ts_series(&self, name: &str, label: &str) -> Option<TimeSeries> {
        self.lock().timeseries.series(name, label).cloned()
    }

    /// Sorted `(name, label, rollup)` summaries of every series.
    pub fn ts_rollups(&self) -> Vec<(String, String, Rollup)> {
        self.lock().timeseries.rollups()
    }

    /// A copy of the whole store (the engine hands this to
    /// [`render_scrape`] together with its enriched snapshot).
    pub fn ts_store(&self) -> TimeSeriesStore {
        self.lock().timeseries.clone()
    }

    // ------------------------------------------------------------------
    // Flow health watchdog
    // ------------------------------------------------------------------

    /// Replace the watchdog deadlines.
    pub fn health_configure(&self, config: HealthConfig) {
        self.lock().health.set_config(config);
    }

    /// The active watchdog deadlines.
    pub fn health_config(&self) -> HealthConfig {
        self.lock().health.config()
    }

    /// Start watching a flow, watermarked at the shared clock.
    pub fn health_register(&self, txn: &str) {
        let mut inner = self.lock();
        let now = inner.now;
        inner.health.register(txn, now);
    }

    /// Stop watching a flow (it reached a terminal state) and refresh
    /// the `dfms/flows_stalled` gauge.
    pub fn health_finish(&self, txn: &str) {
        let mut inner = self.lock();
        inner.health.finish(txn);
        let stalled = inner.health.stalled_count() as i64;
        inner.metrics.gauge_set("dfms", "flows_stalled", stalled);
    }

    /// Advance a flow's progress watermark to `time`. A `Slow`/`Stalled`
    /// flow recovers to `Healthy`; the recovery is recorded as a
    /// `health.healthy` event and the gauge is refreshed.
    pub fn health_progress(&self, txn: &str, time: SimTime) {
        let mut inner = self.lock();
        if let Some(t) = inner.health.progress(txn, time) {
            let now = inner.now;
            inner.recorder.record(
                now,
                EventKind::HealthTransition {
                    txn: t.txn,
                    from: t.from,
                    to: t.to,
                    last_progress_us: t.last_progress.0,
                },
            );
            let stalled = inner.health.stalled_count() as i64;
            inner.metrics.gauge_set("dfms", "flows_stalled", stalled);
        }
    }

    /// Re-classify every watched flow against the shared clock. Each
    /// transition is recorded as a `health.*` event, and the
    /// `dfms/flows_stalled` gauge is refreshed. Returns the transitions
    /// (in transaction-id order).
    pub fn health_check(&self) -> Vec<HealthTransition> {
        let mut inner = self.lock();
        let now = inner.now;
        let transitions = inner.health.check(now);
        for t in &transitions {
            inner.recorder.record(
                now,
                EventKind::HealthTransition {
                    txn: t.txn.clone(),
                    from: t.from,
                    to: t.to,
                    last_progress_us: t.last_progress.0,
                },
            );
        }
        let stalled = inner.health.stalled_count() as i64;
        inner.metrics.gauge_set("dfms", "flows_stalled", stalled);
        transitions
    }

    /// Every watched flow's classification, in transaction-id order.
    pub fn health_flows(&self) -> Vec<FlowHealth> {
        self.lock().health.flows()
    }

    /// One watched flow's classification.
    pub fn health_flow(&self, txn: &str) -> Option<FlowHealth> {
        self.lock().health.flow(txn)
    }

    /// A Prometheus-style text scrape of this handle's own snapshot plus
    /// all series rollups ([`render_scrape`]). The engine's
    /// `telemetry_scrape` is the richer variant (it folds in grid
    /// transfer totals first).
    pub fn scrape(&self) -> String {
        let snap = self.snapshot();
        let inner = self.lock();
        render_scrape(&snap, &inner.timeseries, inner.now)
    }

    // ------------------------------------------------------------------
    // Span tracing
    // ------------------------------------------------------------------

    /// Open a span at the current simulation clock. `parent = None`
    /// roots a fresh trace; children inherit the parent's trace id.
    pub fn span_start(&self, kind: SpanKind, name: &str, parent: Option<SpanContext>) -> SpanContext {
        let mut inner = self.lock();
        let now = inner.now;
        inner.traces.start(now, kind, name, parent)
    }

    /// Open a span at an explicit simulation time (for work whose start
    /// is scheduled ahead of the shared clock, e.g. staged transfers).
    pub fn span_start_at(
        &self,
        time: SimTime,
        kind: SpanKind,
        name: &str,
        parent: Option<SpanContext>,
    ) -> SpanContext {
        self.lock().traces.start(time, kind, name, parent)
    }

    /// Close a span at the current simulation clock and fold its
    /// duration into the `trace/span.<kind>` histogram. Closing twice is
    /// a no-op.
    pub fn span_end(&self, ctx: SpanContext) {
        let now = self.now();
        self.span_end_at(ctx, now);
    }

    /// Close a span at an explicit simulation time.
    pub fn span_end_at(&self, ctx: SpanContext, time: SimTime) {
        let mut inner = self.lock();
        if let Some((kind, dur)) = inner.traces.end(ctx, time) {
            inner
                .metrics
                .observe("trace", &format!("span.{}", kind.name()), Duration(dur));
        }
    }

    /// Append a structured attribute to a span.
    pub fn span_attr(&self, ctx: SpanContext, key: &str, value: &str) {
        self.lock().traces.attr(ctx, key, value);
    }

    /// All recorded spans, in creation order.
    pub fn spans(&self) -> Vec<Span> {
        self.lock().traces.spans().to_vec()
    }

    /// The spans of one trace, in creation order.
    pub fn trace_spans(&self, trace: TraceId) -> Vec<Span> {
        self.lock().traces.trace_spans(trace)
    }

    /// Export every recorded span as Chrome trace-event JSON
    /// (loadable in `chrome://tracing` / Perfetto).
    pub fn export_chrome_trace(&self) -> String {
        to_chrome_trace(self.lock().traces.spans())
    }

    /// Export every recorded span as a binary Perfetto `Trace` protobuf
    /// (loadable in <https://ui.perfetto.dev>, see
    /// [`to_perfetto_trace`]).
    pub fn export_perfetto_trace(&self) -> Vec<u8> {
        to_perfetto_trace(self.lock().traces.spans())
    }

    // ------------------------------------------------------------------
    // Attribution (dgf-why)
    // ------------------------------------------------------------------

    /// Record a wait interval: flow `txn` could not advance at `node`
    /// during `[from, until)` because of `state`, blamed on `resource`.
    /// The engine calls this whenever it parks work; the marks classify
    /// critical-path gaps when the flow finishes.
    pub fn why_mark(
        &self,
        txn: &str,
        node: &str,
        state: WaitState,
        from: SimTime,
        until: SimTime,
        resource: &str,
    ) {
        self.lock().why.add_mark(WaitMark {
            txn: txn.to_owned(),
            node: node.to_owned(),
            state,
            from,
            until,
            resource: resource.to_owned(),
        });
    }

    /// Analyze a finished flow: compute its critical path from the
    /// trace's span tree (plus any recorded wait marks) and retain it
    /// for [`Obs::why_paths`] / [`Obs::why_bottlenecks`]. A no-op when
    /// the root span is unknown or still open.
    pub fn why_flow_finished(&self, root: SpanContext) {
        let mut inner = self.lock();
        let spans = inner.traces.trace_spans(root.trace);
        inner.why.flow_finished(&spans, root.span);
    }

    /// Every completed flow's critical path, in completion order.
    pub fn why_paths(&self) -> Vec<CriticalPath> {
        self.lock().why.paths().to_vec()
    }

    /// Total critical-path sim-µs attributed across every analyzed
    /// flow (the denominator of every bottleneck share).
    pub fn why_attributed_us(&self) -> u64 {
        self.lock().why.attributed_us()
    }

    /// The aggregated `(state, resource)` blame table, largest
    /// contributor first; `top_k = 0` returns every row.
    pub fn why_bottlenecks(&self, top_k: usize) -> Vec<Bottleneck> {
        self.lock().why.bottlenecks(top_k)
    }

    /// Register an SLA deadline objective for a flow. Re-registration
    /// of the same transaction (recovery replay re-drives submissions)
    /// keeps the first registration.
    pub fn why_register_alert(&self, alert: SlaAlert) {
        self.lock().why.register_alert(alert);
    }

    /// Transactions whose pending alert's deadline has passed at
    /// `now`, in registration order. The engine turns each into a
    /// journaled `sla.firing` transition via [`Obs::why_fire_alert`].
    pub fn why_due_firings(&self, now: SimTime) -> Vec<String> {
        self.lock().why.due_firings(now)
    }

    /// Move a pending alert to `firing` at `at`.
    pub fn why_fire_alert(&self, txn: &str, at: SimTime) {
        if let Some(a) = self.lock().why.alert_mut(txn) {
            if a.state == AlertState::Pending {
                a.state = AlertState::Firing;
                a.fired_at = Some(at);
            }
        }
    }

    /// Resolve an alert at `at` (its flow reached a terminal state);
    /// `breached` records whether the flow finished past its deadline.
    pub fn why_resolve_alert(&self, txn: &str, at: SimTime, breached: bool) {
        if let Some(a) = self.lock().why.alert_mut(txn) {
            if a.state != AlertState::Resolved {
                a.state = AlertState::Resolved;
                a.resolved_at = Some(at);
                a.breached = breached;
            }
        }
    }

    /// One flow's alert, when it has an objective.
    pub fn why_alert(&self, txn: &str) -> Option<SlaAlert> {
        self.lock().why.alerts().iter().find(|a| a.txn == txn).cloned()
    }

    /// Every SLA alert, in registration order.
    pub fn why_alerts(&self) -> Vec<SlaAlert> {
        self.lock().why.alerts().to_vec()
    }

    /// Every recorded wait mark, in recording order (diagnostic).
    pub fn why_marks(&self) -> Vec<WaitMark> {
        self.lock().why.marks().to_vec()
    }

    // ------------------------------------------------------------------
    // Phase profiling (dgf-prof)
    // ------------------------------------------------------------------

    /// Enter a profiled phase at the shared simulation clock, nesting
    /// under the currently open phase. Must pair with [`Obs::prof_exit`]
    /// on every control path.
    pub fn prof_enter(&self, phase: Phase) {
        let mut inner = self.lock();
        let now = inner.now;
        inner.prof.enter(phase, now);
    }

    /// Exit the innermost open profiled phase at the shared clock.
    pub fn prof_exit(&self, phase: Phase) {
        let mut inner = self.lock();
        let now = inner.now;
        inner.prof.exit(phase, now);
    }

    /// Fold an externally-measured cost into the profile as a leaf
    /// under the currently open phase (see [`Profiler::record_leaf`]).
    pub fn prof_record_leaf(&self, phase: Phase, calls: u64, wall_ns: u64) {
        self.lock().prof.record_leaf(phase, calls, wall_ns);
    }

    /// A point-in-time copy of the phase-profile tree.
    pub fn profile_snapshot(&self) -> ProfileSnapshot {
        self.lock().prof.snapshot()
    }

    /// Drop every accumulated profile node (and any open scopes).
    pub fn profile_reset(&self) {
        self.lock().prof.reset();
    }

    /// Chrome trace export with the phase profile merged in as a
    /// synthetic `dgf-prof` timeline (see
    /// [`to_chrome_trace_with_profile`]). Report-only: the profile
    /// slices carry wall-clock widths and vary between runs.
    pub fn export_chrome_trace_with_profile(&self) -> String {
        let inner = self.lock();
        to_chrome_trace_with_profile(inner.traces.spans(), &inner.prof.snapshot())
    }

    /// Perfetto export with the phase profile merged in as a synthetic
    /// `dgf-prof` track (see [`to_perfetto_trace_with_profile`]).
    /// Report-only, like its Chrome sibling.
    pub fn export_perfetto_trace_with_profile(&self) -> Vec<u8> {
        let inner = self.lock();
        to_perfetto_trace_with_profile(inner.traces.spans(), &inner.prof.snapshot())
    }
}

impl Default for Obs {
    fn default() -> Self {
        Self::new(DEFAULT_RING_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_recorder() {
        let a = Obs::new(16);
        let b = a.clone();
        a.set_now(SimTime(7));
        b.record(EventKind::TriggerFired { trigger: "x".into(), action: "flow".into() });
        b.inc("triggers", "fired");
        assert_eq!(a.events().len(), 1);
        assert_eq!(a.events()[0].time, SimTime(7));
        assert_eq!(a.snapshot().counter("triggers", "fired"), 1);
    }

    #[test]
    fn record_at_overrides_the_shared_clock() {
        let obs = Obs::new(16);
        obs.set_now(SimTime(100));
        obs.record_at(SimTime(42), EventKind::TriggerFired { trigger: "t".into(), action: "notify".into() });
        assert_eq!(obs.events()[0].time, SimTime(42));
        assert_eq!(obs.now(), SimTime(100));
    }

    #[test]
    fn set_now_never_moves_the_clock_backwards() {
        let obs = Obs::new(16);
        obs.set_now(SimTime(100));
        obs.set_now(SimTime(40)); // regression: ignored
        assert_eq!(obs.now(), SimTime(100));
        obs.record(EventKind::TriggerFired { trigger: "t".into(), action: "notify".into() });
        assert_eq!(obs.events()[0].time, SimTime(100), "events never time-travel");
        obs.set_now(SimTime(200));
        assert_eq!(obs.now(), SimTime(200));
    }

    #[test]
    fn spans_nest_close_and_feed_percentile_gauges() {
        let obs = Obs::new(16);
        obs.set_now(SimTime(10));
        let root = obs.span_start(SpanKind::Flow, "f", None);
        let child = obs.span_start(SpanKind::DgmsOp, "ingest", Some(root));
        obs.span_attr(child, "path", "/x");
        obs.set_now(SimTime(30));
        obs.span_end(child);
        obs.span_end_at(root, SimTime(50));

        let spans = obs.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].parent, Some(root.span));
        assert_eq!(spans[1].duration_us(), Some(20));
        assert_eq!(obs.trace_spans(root.trace).len(), 2);

        let snap = obs.snapshot();
        assert_eq!(snap.histogram("trace", "span.dgms-op").count, 1);
        assert_eq!(snap.gauge("trace", "span.dgms-op.p50_us"), 20);
        assert_eq!(snap.gauge("trace", "span.flow.p99_us"), 40);

        let json = obs.export_chrome_trace();
        assert!(json.contains("\"name\":\"ingest\""));
        assert!(json.contains("\"path\":\"/x\""));
    }

    #[test]
    fn handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Obs>();
    }
}
