//! Sim-time resource time-series: fixed-capacity ring series sampled on
//! a configurable interval, with min/max/last/rate rollups and a
//! Prometheus-style text scrape.
//!
//! The store holds one [`TimeSeries`] per `(name, label)` pair — e.g.
//! `("storage.used_bytes", "site0-pfs")` — each backed by a
//! [`RingBuffer`] of [`SeriesPoint`]s so a months-long run keeps a
//! bounded, recent window of every gauge. Keys are `BTreeMap`-ordered,
//! so iteration (and therefore the scrape) is deterministic.
//!
//! ```
//! use dgf_obs::{SamplingConfig, TimeSeriesStore};
//! use dgf_simgrid::{Duration, SimTime};
//!
//! let mut store = TimeSeriesStore::new(SamplingConfig::default());
//! assert!(store.due(SimTime::ZERO));
//! store.record("queue.depth", "", SimTime::ZERO, 3);
//! store.mark_sampled(SimTime::ZERO);
//! assert!(!store.due(SimTime(1)));
//! assert_eq!(store.series("queue.depth", "").unwrap().last(), Some(3));
//! ```

use crate::ring::RingBuffer;
use dgf_simgrid::{Duration, SimTime};
use std::collections::BTreeMap;

/// How often gauges are sampled and how much history each series keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Minimum sim-time between samples. Sampling is opportunistic: the
    /// driver checks [`TimeSeriesStore::due`] whenever its clock moves,
    /// so actual sample spacing is `>= interval`, not exact.
    pub interval: Duration,
    /// Points retained per series; older points are evicted.
    pub capacity: usize,
}

impl Default for SamplingConfig {
    /// One sample per simulated minute, latest 512 points per series.
    fn default() -> Self {
        SamplingConfig { interval: Duration::from_secs(60), capacity: 512 }
    }
}

/// One sampled value of one gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Sim-time of the sample.
    pub time: SimTime,
    /// Sampled gauge value.
    pub value: i64,
}

/// A fixed-capacity series of one gauge's samples.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    points: RingBuffer<SeriesPoint>,
}

impl TimeSeries {
    fn new(capacity: usize) -> Self {
        TimeSeries { points: RingBuffer::new(capacity) }
    }

    /// All retained points, oldest first.
    pub fn points(&self) -> impl Iterator<Item = &SeriesPoint> {
        self.points.iter()
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no point has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The most recent value.
    pub fn last(&self) -> Option<i64> {
        self.points.iter().last().map(|p| p.value)
    }

    /// Minimum over the retained window.
    pub fn min(&self) -> Option<i64> {
        self.points.iter().map(|p| p.value).min()
    }

    /// Maximum over the retained window.
    pub fn max(&self) -> Option<i64> {
        self.points.iter().map(|p| p.value).max()
    }

    /// Change per simulated second across the retained window:
    /// `(last - first) / (t_last - t_first)`. `None` until two points
    /// with distinct timestamps exist.
    pub fn rate_per_sec(&self) -> Option<f64> {
        let first = self.points.iter().next()?;
        let last = self.points.iter().last()?;
        let dt_us = last.time.0.checked_sub(first.time.0)?;
        if dt_us == 0 {
            return None;
        }
        Some((last.value - first.value) as f64 * 1_000_000.0 / dt_us as f64)
    }

    /// The min/max/last/rate summary of this series.
    pub fn rollup(&self) -> Option<Rollup> {
        Some(Rollup {
            min: self.min()?,
            max: self.max()?,
            last: self.last()?,
            rate_per_sec: self.rate_per_sec(),
            points: self.len(),
        })
    }
}

/// Min/max/last/rate summary of one series' retained window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rollup {
    /// Smallest retained value.
    pub min: i64,
    /// Largest retained value.
    pub max: i64,
    /// Most recent value.
    pub last: i64,
    /// Change per simulated second, when computable.
    pub rate_per_sec: Option<f64>,
    /// Retained point count.
    pub points: usize,
}

/// All series, keyed by `(name, label)`, plus the sampling schedule.
#[derive(Debug, Clone)]
pub struct TimeSeriesStore {
    config: SamplingConfig,
    last_sample: Option<SimTime>,
    series: BTreeMap<(String, String), TimeSeries>,
}

impl TimeSeriesStore {
    /// An empty store with the given schedule.
    pub fn new(config: SamplingConfig) -> Self {
        TimeSeriesStore { config, last_sample: None, series: BTreeMap::new() }
    }

    /// The active sampling configuration.
    pub fn config(&self) -> SamplingConfig {
        self.config
    }

    /// Replace the schedule. Existing points are kept; existing series
    /// keep their old capacity (new series use the new one).
    pub fn set_config(&mut self, config: SamplingConfig) {
        self.config = config;
    }

    /// True when at least one interval has elapsed since the last
    /// sample (or nothing has been sampled yet).
    pub fn due(&self, now: SimTime) -> bool {
        match self.last_sample {
            None => true,
            Some(t) => now.0.saturating_sub(t.0) >= self.config.interval.0,
        }
    }

    /// Note that a full sample pass happened at `now`.
    pub fn mark_sampled(&mut self, now: SimTime) {
        self.last_sample = Some(now);
    }

    /// Sim-time of the last sample pass.
    pub fn last_sampled(&self) -> Option<SimTime> {
        self.last_sample
    }

    /// Append a point to the `(name, label)` series, creating it on
    /// first use.
    pub fn record(&mut self, name: &str, label: &str, time: SimTime, value: i64) {
        let capacity = self.config.capacity;
        self.series
            .entry((name.to_owned(), label.to_owned()))
            .or_insert_with(|| TimeSeries::new(capacity))
            .points
            .push(SeriesPoint { time, value });
    }

    /// The series for `(name, label)`, if any point was ever recorded.
    pub fn series(&self, name: &str, label: &str) -> Option<&TimeSeries> {
        self.series.get(&(name.to_owned(), label.to_owned()))
    }

    /// Every series with its key, in sorted `(name, label)` order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, &TimeSeries)> {
        self.series.iter().map(|((n, l), s)| (n.as_str(), l.as_str(), s))
    }

    /// Sorted `(name, label, rollup)` summaries of every non-empty series.
    pub fn rollups(&self) -> Vec<(String, String, Rollup)> {
        self.series
            .iter()
            .filter_map(|((n, l), s)| s.rollup().map(|r| (n.clone(), l.clone(), r)))
            .collect()
    }

    /// Number of distinct series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }
}

/// Quote a label value for the scrape: `\` and `"` and newlines are
/// backslash-escaped, per the Prometheus text exposition format.
fn scrape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Render a Prometheus-style text scrape of a metrics snapshot plus
/// series rollups. Output is line-oriented, stable-ordered (snapshot
/// samples are already sorted; series keys are sorted; per-series stats
/// appear in a fixed order), and deterministic for a deterministic
/// input — two identically-seeded runs scrape byte-identically.
///
/// Shapes:
///
/// ```text
/// dgf_metric{scope="engine",name="runs.completed",kind="counter"} 1
/// dgf_metric{scope="engine",name="step.duration",kind="histogram",stat="count"} 4
/// dgf_series{name="storage.used_bytes",label="site0-pfs",stat="last"} 100000000
/// dgf_series{name="storage.used_bytes",label="site0-pfs",stat="rate_per_sec"} 1650.165017
/// ```
pub fn render_scrape(snapshot: &crate::MetricsSnapshot, store: &TimeSeriesStore, now: SimTime) -> String {
    let mut out = String::new();
    out.push_str(&format!("# dgf telemetry scrape at {}us\n", now.0));
    out.push_str("# TYPE dgf_metric untyped\n");
    for sample in &snapshot.samples {
        let base = format!(
            "dgf_metric{{scope=\"{}\",name=\"{}\",kind=\"{}\"",
            scrape_label(&sample.scope),
            scrape_label(&sample.name),
            sample.value.kind()
        );
        match &sample.value {
            crate::MetricValue::Counter(v) => out.push_str(&format!("{base}}} {v}\n")),
            crate::MetricValue::Gauge(v) => out.push_str(&format!("{base}}} {v}\n")),
            crate::MetricValue::Histogram(h) => {
                out.push_str(&format!("{base},stat=\"count\"}} {}\n", h.count));
                out.push_str(&format!("{base},stat=\"sum_us\"}} {}\n", h.sum_us));
                out.push_str(&format!("{base},stat=\"min_us\"}} {}\n", h.min_us));
                out.push_str(&format!("{base},stat=\"max_us\"}} {}\n", h.max_us));
            }
        }
    }
    out.push_str("# TYPE dgf_series untyped\n");
    for (name, label, series) in store.iter() {
        let Some(rollup) = series.rollup() else { continue };
        let base =
            format!("dgf_series{{name=\"{}\",label=\"{}\"", scrape_label(name), scrape_label(label));
        out.push_str(&format!("{base},stat=\"min\"}} {}\n", rollup.min));
        out.push_str(&format!("{base},stat=\"max\"}} {}\n", rollup.max));
        out.push_str(&format!("{base},stat=\"last\"}} {}\n", rollup.last));
        if let Some(rate) = rollup.rate_per_sec {
            out.push_str(&format!("{base},stat=\"rate_per_sec\"}} {rate:.6}\n"));
        }
        out.push_str(&format!("{base},stat=\"points\"}} {}\n", rollup.points));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TimeSeriesStore {
        TimeSeriesStore::new(SamplingConfig { interval: Duration::from_secs(10), capacity: 4 })
    }

    #[test]
    fn due_follows_the_interval() {
        let mut s = store();
        assert!(s.due(SimTime::ZERO), "first sample is always due");
        s.mark_sampled(SimTime::ZERO);
        assert!(!s.due(SimTime(9_999_999)));
        assert!(s.due(SimTime(10_000_000)));
    }

    #[test]
    fn rollups_cover_the_retained_window_only() {
        let mut s = store();
        for (i, v) in [5i64, 1, 9, 3, 7].iter().enumerate() {
            s.record("g", "a", SimTime(i as u64 * 1_000_000), *v);
        }
        // Capacity 4: the first point (value 5) was evicted.
        let series = s.series("g", "a").unwrap();
        assert_eq!(series.len(), 4);
        assert_eq!(series.min(), Some(1));
        assert_eq!(series.max(), Some(9));
        assert_eq!(series.last(), Some(7));
        // rate = (7 - 1) / (4s - 1s) = 2 per second.
        assert!((series.rate_per_sec().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rate_needs_two_distinct_timestamps() {
        let mut s = store();
        s.record("g", "", SimTime(5), 1);
        assert_eq!(s.series("g", "").unwrap().rate_per_sec(), None);
        s.record("g", "", SimTime(5), 9);
        assert_eq!(s.series("g", "").unwrap().rate_per_sec(), None, "zero elapsed time");
        s.record("g", "", SimTime(1_000_005), 11);
        assert!((s.series("g", "").unwrap().rate_per_sec().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn iteration_is_sorted_by_name_then_label() {
        let mut s = store();
        s.record("b", "x", SimTime::ZERO, 1);
        s.record("a", "y", SimTime::ZERO, 2);
        s.record("a", "x", SimTime::ZERO, 3);
        let keys: Vec<(&str, &str)> = s.iter().map(|(n, l, _)| (n, l)).collect();
        assert_eq!(keys, vec![("a", "x"), ("a", "y"), ("b", "x")]);
    }

    #[test]
    fn scrape_is_stable_and_escapes_labels() {
        let mut s = store();
        s.record("q\"uote", "back\\slash", SimTime(0), 1);
        s.record("q\"uote", "back\\slash", SimTime(2_000_000), 5);
        let mut snap = crate::MetricsSnapshot { samples: Vec::new() };
        snap.insert("engine", "runs.completed", crate::MetricValue::Counter(1));
        let text = render_scrape(&snap, &s, SimTime(2_000_000));
        assert!(text.contains("dgf_metric{scope=\"engine\",name=\"runs.completed\",kind=\"counter\"} 1\n"), "{text}");
        assert!(text.contains("dgf_series{name=\"q\\\"uote\",label=\"back\\\\slash\",stat=\"last\"} 5\n"), "{text}");
        assert!(text.contains("stat=\"rate_per_sec\"} 2.000000\n"), "{text}");
        let again = render_scrape(&snap, &s, SimTime(2_000_000));
        assert_eq!(text, again, "scrape must be deterministic");
    }
}
