//! `dgf-why` — the attribution engine: critical paths, wait-state
//! accounting, and SLA burn-rate alerts.
//!
//! The flight recorder and span store answer *what happened*; this
//! module answers *why a flow took as long as it did* and *which
//! resource to scale first*. Three analyses share one store:
//!
//! * **Critical paths** — when a flow's root span closes,
//!   [`critical_path`] walks its span tree backwards from the makespan
//!   end, always descending into the child that finished latest, and
//!   partitions the whole `[start, end)` interval into classified
//!   segments. The partition is exact by construction: segment
//!   durations sum to the flow makespan.
//! * **Wait-state accounting** — gaps between spans are classified via
//!   [`WaitMark`]s the engine records when it parks work (schedule
//!   window closed, no free cluster slot); every mark blames a concrete
//!   resource, and [`WhyStore::bottlenecks`] aggregates blame across
//!   all completed flows into a deterministic report.
//! * **SLA alerts** — deadline objectives registered at submission
//!   ([`SlaAlert`]) move `pending → firing → resolved` on the
//!   simulation clock; the engine records and journals each transition
//!   so alert lifecycles replay byte-identically through recovery.
//!
//! Everything here is a pure function of the simulated schedule:
//! sim-µs, integer parts-per-million, no wall clock, no floats.

use crate::span::{Span, SpanId, SpanKind};
use dgf_simgrid::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// The closed wait-state taxonomy: every sim-microsecond of a
/// completed flow's critical path is charged to exactly one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WaitState {
    /// A step was running on a bound compute resource.
    Executing,
    /// A step was eligible but no cluster slot was free.
    QueuedForCluster,
    /// Bytes were moving on a WAN link or between storage tiers.
    TransferOnLink,
    /// A node was parked until its schedule window reopened.
    WindowClosed,
    /// Time between a causal trigger firing and the spawned flow's
    /// first dispatched work (near-zero while triggers fire
    /// synchronously).
    TriggerWait,
    /// Engine admission, lint gating, and control-flow bookkeeping —
    /// the residual class that keeps the taxonomy closed.
    LintAdmission,
}

impl WaitState {
    /// The stable kebab-case name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            WaitState::Executing => "executing",
            WaitState::QueuedForCluster => "queued-for-cluster",
            WaitState::TransferOnLink => "transfer-on-link",
            WaitState::WindowClosed => "window-closed",
            WaitState::TriggerWait => "trigger-wait",
            WaitState::LintAdmission => "lint/admission",
        }
    }
}

impl fmt::Display for WaitState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A wait interval the engine recorded when it parked work: flow `txn`
/// could not advance at `node` during `[from, until)` because of
/// `state`, and `resource` is to blame. Marks are matched against
/// critical-path gaps by transaction and interval overlap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitMark {
    /// Transaction id of the waiting flow.
    pub txn: String,
    /// Flow-tree node that was parked.
    pub node: String,
    /// Why it waited.
    pub state: WaitState,
    /// Wait start (inclusive).
    pub from: SimTime,
    /// Wait end (exclusive).
    pub until: SimTime,
    /// The blamed resource (pool label, window, link, ...).
    pub resource: String,
}

/// One classified segment of a critical path: `[from, until)` charged
/// to `state` and blamed on `resource`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSegment {
    /// Segment start, inclusive.
    pub from: SimTime,
    /// Segment end, exclusive.
    pub until: SimTime,
    /// The wait-state classification.
    pub state: WaitState,
    /// The blamed resource.
    pub resource: String,
    /// The flow-tree node the segment is anchored to (`/` for
    /// flow-level time).
    pub node: String,
}

impl PathSegment {
    /// Segment length in sim-µs.
    pub fn duration_us(&self) -> u64 {
        self.until.0.saturating_sub(self.from.0)
    }
}

/// One completed flow's critical path: a gap-free partition of its
/// makespan into [`PathSegment`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// Transaction id.
    pub txn: String,
    /// Root flow name.
    pub flow: String,
    /// Root span start.
    pub start: SimTime,
    /// Root span end.
    pub end: SimTime,
    /// The trigger that spawned this flow, when trigger-spawned.
    pub caused_by: Option<String>,
    /// The segments, in time order.
    pub segments: Vec<PathSegment>,
}

impl CriticalPath {
    /// The flow makespan in sim-µs.
    pub fn makespan_us(&self) -> u64 {
        self.end.0.saturating_sub(self.start.0)
    }

    /// Sum of segment durations — equals [`CriticalPath::makespan_us`]
    /// by construction.
    pub fn segments_sum_us(&self) -> u64 {
        self.segments.iter().map(PathSegment::duration_us).sum()
    }
}

/// One aggregated bottleneck row: total critical-path sim-time charged
/// to a `(state, resource)` pair across every analyzed flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bottleneck {
    /// The wait-state classification.
    pub state: WaitState,
    /// The blamed resource.
    pub resource: String,
    /// Total critical-path sim-µs charged to this pair.
    pub total_us: u64,
    /// Share of all attributed critical-path time, in integer
    /// parts-per-million.
    pub share_ppm: u64,
}

/// Lifecycle state of an SLA deadline alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertState {
    /// Objective registered, deadline not yet passed.
    Pending,
    /// Deadline passed while the flow was still running.
    Firing,
    /// The flow reached a terminal state.
    Resolved,
}

impl AlertState {
    /// The stable wire name.
    pub fn name(&self) -> &'static str {
        match self {
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }
}

impl fmt::Display for AlertState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One SLA deadline objective and its alert lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlaAlert {
    /// Transaction id of the governed flow.
    pub txn: String,
    /// Objective class (`flow` for a per-flow deadline).
    pub class: String,
    /// Root flow name.
    pub flow: String,
    /// Flow submission time.
    pub started: SimTime,
    /// The deadline (`started` + budget).
    pub deadline: SimTime,
    /// Current lifecycle state.
    pub state: AlertState,
    /// When the alert started firing, if it ever did.
    pub fired_at: Option<SimTime>,
    /// When the alert resolved.
    pub resolved_at: Option<SimTime>,
    /// True when the flow finished after its deadline.
    pub breached: bool,
}

impl SlaAlert {
    /// Budget consumed at `now`, in integer parts-per-million:
    /// 1_000_000 means the deadline is exactly reached. Resolved alerts
    /// freeze their burn at resolution time.
    pub fn burn_ppm(&self, now: SimTime) -> u64 {
        let at = self.resolved_at.unwrap_or(now);
        let elapsed = at.0.saturating_sub(self.started.0);
        let budget = self.deadline.0.saturating_sub(self.started.0).max(1);
        elapsed.saturating_mul(1_000_000) / budget
    }
}

/// The attribution store: wait marks, completed critical paths, and
/// SLA alerts. Lives inside the shared [`crate::Obs`] handle next to
/// the span store; the `Obs` `why_*` methods are the public surface.
#[derive(Debug, Default)]
pub(crate) struct WhyStore {
    marks: Vec<WaitMark>,
    paths: Vec<CriticalPath>,
    alerts: Vec<SlaAlert>,
    attributed_us: u64,
}

impl WhyStore {
    pub(crate) fn add_mark(&mut self, mark: WaitMark) {
        self.marks.push(mark);
    }

    pub(crate) fn marks(&self) -> &[WaitMark] {
        &self.marks
    }

    /// Analyze one finished flow's span tree and append its critical
    /// path (no-op when the root span is unknown or still open).
    pub(crate) fn flow_finished(&mut self, spans: &[Span], root: SpanId) {
        if let Some(path) = critical_path(spans, root, &self.marks) {
            self.attributed_us += path.makespan_us();
            self.paths.push(path);
        }
    }

    pub(crate) fn paths(&self) -> &[CriticalPath] {
        &self.paths
    }

    pub(crate) fn attributed_us(&self) -> u64 {
        self.attributed_us
    }

    /// Aggregate per-`(state, resource)` blame across every completed
    /// critical path, largest total first (ties broken by state then
    /// resource name, so the order is deterministic). `top_k = 0`
    /// returns every row.
    pub(crate) fn bottlenecks(&self, top_k: usize) -> Vec<Bottleneck> {
        let mut totals: BTreeMap<(WaitState, &str), u64> = BTreeMap::new();
        for p in &self.paths {
            for s in &p.segments {
                *totals.entry((s.state, s.resource.as_str())).or_default() +=
                    s.duration_us();
            }
        }
        let mut rows: Vec<Bottleneck> = totals
            .into_iter()
            .map(|((state, resource), total_us)| Bottleneck {
                state,
                resource: resource.to_owned(),
                total_us,
                share_ppm: total_us.saturating_mul(1_000_000)
                    / self.attributed_us.max(1),
            })
            .collect();
        rows.sort_by(|a, b| {
            b.total_us
                .cmp(&a.total_us)
                .then_with(|| a.state.cmp(&b.state))
                .then_with(|| a.resource.cmp(&b.resource))
        });
        if top_k > 0 {
            rows.truncate(top_k);
        }
        rows
    }

    pub(crate) fn register_alert(&mut self, alert: SlaAlert) {
        // One objective per transaction: re-registration (recovery
        // replay re-drives submissions) keeps the first.
        if !self.alerts.iter().any(|a| a.txn == alert.txn) {
            self.alerts.push(alert);
        }
    }

    pub(crate) fn alerts(&self) -> &[SlaAlert] {
        &self.alerts
    }

    pub(crate) fn alert_mut(&mut self, txn: &str) -> Option<&mut SlaAlert> {
        self.alerts.iter_mut().find(|a| a.txn == txn)
    }

    /// Transactions whose pending alert's deadline has passed at `now`,
    /// in registration order.
    pub(crate) fn due_firings(&self, now: SimTime) -> Vec<String> {
        self.alerts
            .iter()
            .filter(|a| a.state == AlertState::Pending && now >= a.deadline)
            .map(|a| a.txn.clone())
            .collect()
    }
}

/// Compute one flow's critical path from its trace's spans.
///
/// The walk starts at the root span's end and repeatedly descends into
/// the child span that finished latest before the cursor; the gaps in
/// between are classified via the `marks` overlapping them, falling
/// back to `executing` (inside a step bound to a compute resource) or
/// `lint/admission` (flow-level bookkeeping). Returns `None` when
/// `root` is missing from `spans` or still open.
pub fn critical_path(spans: &[Span], root: SpanId, marks: &[WaitMark]) -> Option<CriticalPath> {
    let root_span = spans.iter().find(|s| s.id == root)?;
    let end = root_span.end?;
    let txn = root_span.attr("txn").unwrap_or(&root_span.name).to_owned();
    let caused_by = root_span.attr("cause.trigger").map(str::to_owned);
    let mut children: BTreeMap<SpanId, Vec<&Span>> = BTreeMap::new();
    for s in spans {
        if let Some(parent) = s.parent {
            children.entry(parent).or_default().push(s);
        }
    }
    let walker = Walker { children, txn: txn.clone(), caused_by: caused_by.clone(), marks };
    let mut segments = Vec::new();
    walker.walk(root_span, end, &mut segments);
    segments.sort_by_key(|s| (s.from, s.until));
    merge_adjacent(&mut segments);
    Some(CriticalPath {
        txn,
        flow: root_span.name.clone(),
        start: root_span.start,
        end,
        caused_by,
        segments,
    })
}

/// Coalesce time-adjacent segments with identical classification
/// (queue-retry marks arrive in fixed-interval slices; reports read
/// better as one row).
fn merge_adjacent(segments: &mut Vec<PathSegment>) {
    let mut merged: Vec<PathSegment> = Vec::with_capacity(segments.len());
    for seg in segments.drain(..) {
        match merged.last_mut() {
            Some(last)
                if last.until == seg.from
                    && last.state == seg.state
                    && last.resource == seg.resource
                    && last.node == seg.node =>
            {
                last.until = seg.until;
            }
            _ => merged.push(seg),
        }
    }
    *segments = merged;
}

struct Walker<'a> {
    children: BTreeMap<SpanId, Vec<&'a Span>>,
    txn: String,
    caused_by: Option<String>,
    marks: &'a [WaitMark],
}

impl Walker<'_> {
    /// Partition `[span.start, clip_end)` of `span` into segments.
    fn walk(&self, span: &Span, clip_end: SimTime, out: &mut Vec<PathSegment>) {
        let node = self.node_of(span);
        // The compute resource this span's step was bound to, when the
        // scheduler recorded a successful binding under it.
        let compute = self
            .children
            .get(&span.id)
            .into_iter()
            .flatten()
            .filter(|c| c.kind == SpanKind::SchedulerBinding)
            .filter(|c| c.attr("result") != Some("queued"))
            .find_map(|c| c.attr("compute"))
            .map(str::to_owned);
        let mut cursor = clip_end;
        while cursor > span.start {
            // Among closed, non-empty children starting before the
            // cursor, descend into the one that finished latest
            // (ties: latest start, then highest id — all deterministic).
            let chosen = self
                .children
                .get(&span.id)
                .into_iter()
                .flatten()
                .filter(|c| c.start < cursor)
                .filter_map(|c| {
                    let child_end = c.end?.min(cursor);
                    (child_end > c.start).then_some((child_end, c.start, c.id, *c))
                })
                .max_by_key(|(child_end, start, id, _)| (*child_end, *start, *id));
            let Some((child_end, _, _, child)) = chosen else {
                self.classify_gap(span, &node, compute.as_deref(), span.start, cursor, out);
                break;
            };
            if child_end < cursor {
                self.classify_gap(span, &node, compute.as_deref(), child_end, cursor, out);
            }
            self.descend(span, &node, child, child_end, out);
            cursor = child.start;
        }
    }

    /// Emit segments for the chosen child interval `[child.start,
    /// child_end)`.
    fn descend(
        &self,
        parent: &Span,
        parent_node: &str,
        child: &Span,
        child_end: SimTime,
        out: &mut Vec<PathSegment>,
    ) {
        match child.kind {
            SpanKind::Flow | SpanKind::Request => self.walk(child, child_end, out),
            SpanKind::NetworkTransfer => out.push(PathSegment {
                from: child.start,
                until: child_end,
                state: WaitState::TransferOnLink,
                resource: link_label(child),
                node: parent_node.to_owned(),
            }),
            SpanKind::DgmsOp => {
                let moved_bytes = child
                    .attr("bytes")
                    .and_then(|b| b.parse::<u64>().ok())
                    .is_some_and(|b| b > 0)
                    && (child.attr("src").is_some() || child.attr("dst").is_some());
                let (state, resource) = if moved_bytes {
                    (WaitState::TransferOnLink, link_label(child))
                } else {
                    (
                        WaitState::Executing,
                        child.attr("dst").unwrap_or("dgms").to_owned(),
                    )
                };
                out.push(PathSegment {
                    from: child.start,
                    until: child_end,
                    state,
                    resource,
                    node: parent_node.to_owned(),
                });
            }
            SpanKind::TriggerAction => out.push(PathSegment {
                from: child.start,
                until: child_end,
                state: WaitState::TriggerWait,
                resource: format!("trigger:{}", child.name),
                node: parent_node.to_owned(),
            }),
            // Binding decisions are instantaneous; a non-empty one is
            // engine bookkeeping.
            SpanKind::SchedulerBinding => out.push(PathSegment {
                from: child.start,
                until: child_end,
                state: WaitState::LintAdmission,
                resource: "engine".to_owned(),
                node: self.node_of(parent).to_owned(),
            }),
        }
    }

    /// Classify an uncovered gap `[from, until)` inside `span`: wait
    /// marks overlapping the interval claim their slices, the remainder
    /// falls back to `executing` (when the span's step is bound to a
    /// compute resource) or `lint/admission` — except the leading gap
    /// of a trigger-spawned root, which is `trigger-wait`.
    fn classify_gap(
        &self,
        span: &Span,
        node: &str,
        compute: Option<&str>,
        from: SimTime,
        until: SimTime,
        out: &mut Vec<PathSegment>,
    ) {
        let fallback = |seg_from: SimTime| -> (WaitState, String) {
            if let Some(compute) = compute {
                (WaitState::Executing, compute.to_owned())
            } else if span.kind == SpanKind::Flow && span.parent.is_none() && seg_from == span.start
            {
                match &self.caused_by {
                    Some(cause) => (WaitState::TriggerWait, format!("trigger:{cause}")),
                    None => (WaitState::LintAdmission, "engine".to_owned()),
                }
            } else {
                (WaitState::LintAdmission, "engine".to_owned())
            }
        };
        let mut overlaps: Vec<&WaitMark> = self
            .marks
            .iter()
            .filter(|m| m.txn == self.txn && m.from < until && m.until > from)
            .collect();
        overlaps.sort_by(|a, b| {
            (a.from, a.until, &a.resource).cmp(&(b.from, b.until, &b.resource))
        });
        let mut cursor = from;
        for mark in overlaps {
            let s = mark.from.max(cursor);
            let e = mark.until.min(until);
            if e <= s {
                continue;
            }
            if s > cursor {
                let (state, resource) = fallback(cursor);
                out.push(PathSegment { from: cursor, until: s, state, resource, node: node.to_owned() });
            }
            out.push(PathSegment {
                from: s,
                until: e,
                state: mark.state,
                resource: mark.resource.clone(),
                node: node.to_owned(),
            });
            cursor = e;
        }
        if cursor < until {
            let (state, resource) = fallback(cursor);
            out.push(PathSegment { from: cursor, until, state, resource, node: node.to_owned() });
        }
    }

    fn node_of(&self, span: &Span) -> String {
        span.attr("node").unwrap_or("/").to_owned()
    }
}

fn link_label(span: &Span) -> String {
    match (span.attr("src"), span.attr("dst")) {
        (Some(src), Some(dst)) => format!("{src}→{dst}"),
        (None, Some(dst)) => format!("→{dst}"),
        (Some(src), None) => format!("{src}→"),
        (None, None) => "link".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::TraceId;

    fn span(
        id: u64,
        parent: Option<u64>,
        kind: SpanKind,
        name: &str,
        start: u64,
        end: u64,
        attrs: &[(&str, &str)],
    ) -> Span {
        Span {
            id: SpanId(id),
            trace: TraceId(1),
            parent: parent.map(SpanId),
            kind,
            name: name.into(),
            start: SimTime(start),
            end: Some(SimTime(end)),
            attrs: attrs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
        }
    }

    #[test]
    fn missing_or_open_root_yields_none() {
        assert!(critical_path(&[], SpanId(1), &[]).is_none());
        let mut open = span(1, None, SpanKind::Flow, "f", 0, 10, &[]);
        open.end = None;
        assert!(critical_path(&[open], SpanId(1), &[]).is_none());
    }

    #[test]
    fn sequential_children_partition_exactly() {
        let spans = vec![
            span(1, None, SpanKind::Flow, "f", 0, 100, &[("txn", "t1")]),
            span(2, Some(1), SpanKind::Request, "a", 0, 40, &[("node", "/0")]),
            span(3, Some(1), SpanKind::Request, "b", 40, 100, &[("node", "/1")]),
        ];
        let p = critical_path(&spans, SpanId(1), &[]).unwrap();
        assert_eq!(p.txn, "t1");
        assert_eq!(p.makespan_us(), 100);
        assert_eq!(p.segments_sum_us(), 100);
        // Leaf requests without bindings are engine bookkeeping, and
        // the two leaves merge only if classification AND node match.
        assert_eq!(p.segments.len(), 2);
        assert_eq!(p.segments[0].node, "/0");
        assert_eq!(p.segments[1].node, "/1");
    }

    #[test]
    fn fan_in_follows_the_latest_finisher() {
        // Parallel children [0,30) and [0,80): the critical path goes
        // through the longer one only.
        let spans = vec![
            span(1, None, SpanKind::Flow, "f", 0, 80, &[("txn", "t1")]),
            span(2, Some(1), SpanKind::Request, "short", 0, 30, &[("node", "/0")]),
            span(3, Some(1), SpanKind::Request, "long", 0, 80, &[("node", "/1")]),
        ];
        let p = critical_path(&spans, SpanId(1), &[]).unwrap();
        assert_eq!(p.segments_sum_us(), p.makespan_us());
        assert!(p.segments.iter().all(|s| s.node != "/0"), "{:?}", p.segments);
    }

    #[test]
    fn transfers_and_bound_execution_classify() {
        let spans = vec![
            span(1, None, SpanKind::Flow, "f", 0, 100, &[("txn", "t1")]),
            span(2, Some(1), SpanKind::Request, "step", 0, 100, &[("node", "/0")]),
            span(
                3,
                Some(2),
                SpanKind::SchedulerBinding,
                "bind",
                0,
                0,
                &[("compute", "site1-hpc"), ("result", "bound")],
            ),
            span(
                4,
                Some(2),
                SpanKind::NetworkTransfer,
                "stage-in",
                0,
                30,
                &[("src", "site0-disk"), ("dst", "site1-disk")],
            ),
        ];
        let p = critical_path(&spans, SpanId(1), &[]).unwrap();
        assert_eq!(p.segments_sum_us(), 100);
        assert_eq!(p.segments[0].state, WaitState::TransferOnLink);
        assert_eq!(p.segments[0].resource, "site0-disk→site1-disk");
        assert_eq!(p.segments[1].state, WaitState::Executing);
        assert_eq!(p.segments[1].resource, "site1-hpc");
        assert_eq!(p.segments[1].duration_us(), 70);
    }

    #[test]
    fn wait_marks_claim_their_slices() {
        let spans = vec![
            span(1, None, SpanKind::Flow, "f", 0, 100, &[("txn", "t1")]),
            span(2, Some(1), SpanKind::Request, "step", 0, 100, &[("node", "/0")]),
            span(
                3,
                Some(2),
                SpanKind::SchedulerBinding,
                "bind",
                60,
                60,
                &[("compute", "hpc"), ("result", "bound")],
            ),
        ];
        // Two back-to-back queue retries, recorded in fixed slices.
        let marks = vec![
            WaitMark {
                txn: "t1".into(),
                node: "/0".into(),
                state: WaitState::QueuedForCluster,
                from: SimTime(0),
                until: SimTime(30),
                resource: "pool:hpc".into(),
            },
            WaitMark {
                txn: "t1".into(),
                node: "/0".into(),
                state: WaitState::QueuedForCluster,
                from: SimTime(30),
                until: SimTime(60),
                resource: "pool:hpc".into(),
            },
        ];
        let p = critical_path(&spans, SpanId(1), &marks).unwrap();
        assert_eq!(p.segments_sum_us(), 100);
        // The retry slices merge into one queued segment.
        assert_eq!(p.segments.len(), 2, "{:?}", p.segments);
        assert_eq!(p.segments[0].state, WaitState::QueuedForCluster);
        assert_eq!(p.segments[0].duration_us(), 60);
        assert_eq!(p.segments[1].state, WaitState::Executing);
    }

    #[test]
    fn trigger_spawned_root_charges_leading_gap_to_the_trigger() {
        let spans = vec![
            span(
                1,
                None,
                SpanKind::Flow,
                "spawned",
                0,
                50,
                &[("txn", "t2"), ("cause.trigger", "on-ingest")],
            ),
            span(2, Some(1), SpanKind::Request, "step", 20, 50, &[("node", "/0")]),
        ];
        let p = critical_path(&spans, SpanId(1), &[]).unwrap();
        assert_eq!(p.caused_by.as_deref(), Some("on-ingest"));
        assert_eq!(p.segments[0].state, WaitState::TriggerWait);
        assert_eq!(p.segments[0].resource, "trigger:on-ingest");
        assert_eq!(p.segments[0].duration_us(), 20);
        assert_eq!(p.segments_sum_us(), 50);
    }

    #[test]
    fn store_aggregates_deterministic_bottlenecks() {
        let mut store = WhyStore::default();
        let spans = vec![
            span(1, None, SpanKind::Flow, "f", 0, 100, &[("txn", "t1")]),
            span(
                2,
                Some(1),
                SpanKind::NetworkTransfer,
                "xfer",
                0,
                75,
                &[("src", "a"), ("dst", "b")],
            ),
        ];
        store.flow_finished(&spans, SpanId(1));
        assert_eq!(store.paths().len(), 1);
        assert_eq!(store.attributed_us(), 100);
        let rows = store.bottlenecks(0);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].state, WaitState::TransferOnLink);
        assert_eq!(rows[0].resource, "a→b");
        assert_eq!(rows[0].share_ppm, 750_000);
        assert_eq!(rows[1].share_ppm, 250_000);
        assert_eq!(store.bottlenecks(1).len(), 1);
    }

    #[test]
    fn alert_lifecycle_and_burn() {
        let mut store = WhyStore::default();
        let alert = SlaAlert {
            txn: "t1".into(),
            class: "flow".into(),
            flow: "f".into(),
            started: SimTime(0),
            deadline: SimTime(1_000),
            state: AlertState::Pending,
            fired_at: None,
            resolved_at: None,
            breached: false,
        };
        store.register_alert(alert.clone());
        store.register_alert(alert); // replayed submission: kept once
        assert_eq!(store.alerts().len(), 1);
        assert!(store.due_firings(SimTime(999)).is_empty());
        assert_eq!(store.due_firings(SimTime(1_000)), vec!["t1".to_string()]);
        let a = store.alert_mut("t1").unwrap();
        assert_eq!(a.burn_ppm(SimTime(500)), 500_000);
        a.state = AlertState::Firing;
        a.fired_at = Some(SimTime(1_000));
        assert_eq!(a.burn_ppm(SimTime(1_500)), 1_500_000);
        a.state = AlertState::Resolved;
        a.resolved_at = Some(SimTime(2_000));
        a.breached = true;
        assert_eq!(a.burn_ppm(SimTime(9_999)), 2_000_000, "burn freezes at resolution");
        assert!(store.due_firings(SimTime(9_999)).is_empty());
    }
}
