//! The trace store: append-only span storage with deterministic id
//! allocation and per-kind latency accounting.
//!
//! One [`TraceStore`] lives inside the shared [`crate::Obs`] handle,
//! next to the flight recorder and the metrics registry, so every
//! subsystem records spans through the same clock and the same
//! counters. Spans are never evicted — the paper's provenance
//! requirement ("inspectable even (years) after the execution", §2.1)
//! wants the causal record whole; bound memory by scoping a store to a
//! run, as the engine does per server.

use crate::span::{Span, SpanContext, SpanId, SpanKind, TraceId};
use dgf_simgrid::SimTime;
use std::collections::BTreeMap;

/// Append-only span storage. Ids come from monotonic counters so a
/// seeded run records the identical trace every time.
#[derive(Debug, Default)]
pub(crate) struct TraceStore {
    spans: Vec<Span>,
    next_trace: u64,
    /// Completed-span durations (µs) per kind, in completion order;
    /// sorted copies feed the percentile gauges at snapshot time.
    durations: BTreeMap<SpanKind, Vec<u64>>,
}

impl TraceStore {
    /// Open a span at `time`. A span without a parent roots a fresh
    /// trace; a child inherits its parent's trace id.
    pub(crate) fn start(
        &mut self,
        time: SimTime,
        kind: SpanKind,
        name: &str,
        parent: Option<SpanContext>,
    ) -> SpanContext {
        let trace = match parent {
            Some(ctx) => ctx.trace,
            None => {
                self.next_trace += 1;
                TraceId(self.next_trace)
            }
        };
        let id = SpanId(self.spans.len() as u64 + 1);
        self.spans.push(Span {
            id,
            trace,
            parent: parent.map(|ctx| ctx.span),
            kind,
            name: name.to_owned(),
            start: time,
            end: None,
            attrs: Vec::new(),
        });
        SpanContext { trace, span: id }
    }

    /// Close a span at `time`. Returns the span's kind and duration so
    /// the caller can feed the metrics registry; `None` when the span is
    /// unknown or already closed (closing twice is a no-op).
    pub(crate) fn end(&mut self, ctx: SpanContext, time: SimTime) -> Option<(SpanKind, u64)> {
        let span = self.get_mut(ctx.span)?;
        if span.end.is_some() {
            return None;
        }
        span.end = Some(time);
        let kind = span.kind;
        let dur = time.0.saturating_sub(span.start.0);
        self.durations.entry(kind).or_default().push(dur);
        Some((kind, dur))
    }

    /// Append an attribute to an open or closed span.
    pub(crate) fn attr(&mut self, ctx: SpanContext, key: &str, value: &str) {
        if let Some(span) = self.get_mut(ctx.span) {
            span.attrs.push((key.to_owned(), value.to_owned()));
        }
    }

    /// All spans, in creation order.
    pub(crate) fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The spans of one trace, in creation order.
    pub(crate) fn trace_spans(&self, trace: TraceId) -> Vec<Span> {
        self.spans.iter().filter(|s| s.trace == trace).cloned().collect()
    }

    /// Completed durations per kind (completion order, unsorted).
    pub(crate) fn durations(&self) -> &BTreeMap<SpanKind, Vec<u64>> {
        &self.durations
    }

    fn get_mut(&mut self, id: SpanId) -> Option<&mut Span> {
        // Ids are 1-based indexes into the append-only vector.
        self.spans.get_mut(id.0.checked_sub(1)? as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential_and_children_inherit_the_trace() {
        let mut store = TraceStore::default();
        let root = store.start(SimTime(1), SpanKind::Flow, "f", None);
        let child = store.start(SimTime(2), SpanKind::Request, "step", Some(root));
        let other = store.start(SimTime(3), SpanKind::Flow, "g", None);
        assert_eq!(root, SpanContext { trace: TraceId(1), span: SpanId(1) });
        assert_eq!(child.trace, root.trace);
        assert_eq!(child.span, SpanId(2));
        assert_eq!(other.trace, TraceId(2));
        assert_eq!(store.spans()[1].parent, Some(root.span));
        assert_eq!(store.trace_spans(root.trace).len(), 2);
    }

    #[test]
    fn end_is_idempotent_and_records_durations_per_kind() {
        let mut store = TraceStore::default();
        let ctx = store.start(SimTime(10), SpanKind::DgmsOp, "ingest", None);
        assert_eq!(store.end(ctx, SimTime(35)), Some((SpanKind::DgmsOp, 25)));
        assert_eq!(store.end(ctx, SimTime(99)), None, "second close is ignored");
        assert_eq!(store.durations()[&SpanKind::DgmsOp], vec![25]);
        assert_eq!(store.spans()[0].end, Some(SimTime(35)));
    }

    #[test]
    fn attrs_append_in_order_and_unknown_ids_are_ignored() {
        let mut store = TraceStore::default();
        let ctx = store.start(SimTime(0), SpanKind::TriggerAction, "t", None);
        store.attr(ctx, "a", "1");
        store.attr(ctx, "b", "2");
        store.attr(SpanContext { trace: ctx.trace, span: SpanId(99) }, "c", "3");
        assert_eq!(store.spans()[0].attrs, vec![("a".into(), "1".into()), ("b".into(), "2".into())]);
        assert_eq!(store.end(SpanContext { trace: ctx.trace, span: SpanId(99) }, SimTime(1)), None);
    }
}
