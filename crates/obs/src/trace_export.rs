//! Chrome trace-event JSON export.
//!
//! Renders recorded spans in the Trace Event Format understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one
//! complete (`"ph":"X"`) event per span, timestamps in µs of
//! *simulation* time, one row (`tid`) per trace so a flow's spans stack
//! under its root. The output is a pure function of the span list —
//! two identically-seeded runs export byte-identical JSON.

use crate::metrics::json_escape;
use crate::span::Span;
use std::fmt::Write as _;

/// Render spans (creation order) as a Chrome trace-event JSON document.
///
/// Open spans are emitted with `dur` 0 and an `"open":"true"` argument
/// so an export taken mid-run still loads. Parent/trace/span ids ride
/// along in `args` for tools that want to rebuild the hierarchy.
pub fn to_chrome_trace(spans: &[Span]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let dur = span.duration_us().unwrap_or(0);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{",
            json_escape(&span.name),
            span.kind.name(),
            span.start.0,
            dur,
            span.trace.0
        );
        let _ = write!(out, "\"span\":\"{}\"", span.id.0);
        if let Some(parent) = span.parent {
            let _ = write!(out, ",\"parent\":\"{}\"", parent.0);
        }
        if span.end.is_none() {
            out.push_str(",\"open\":\"true\"");
        }
        for (k, v) in &span.attrs {
            let _ = write!(out, ",\"{}\":\"{}\"", json_escape(k), json_escape(v));
        }
        out.push_str("}}");
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanId, SpanKind, TraceId};
    use dgf_simgrid::SimTime;

    fn span(id: u64, parent: Option<u64>, end: Option<u64>) -> Span {
        Span {
            id: SpanId(id),
            trace: TraceId(1),
            parent: parent.map(SpanId),
            kind: SpanKind::Request,
            name: format!("s{id}"),
            start: SimTime(100),
            end: end.map(SimTime),
            attrs: vec![("txn".into(), "t\"1".into())],
        }
    }

    #[test]
    fn complete_and_open_spans_render() {
        let json = to_chrome_trace(&[span(1, None, Some(150)), span(2, Some(1), None)]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\",\"ts\":100,\"dur\":50"));
        assert!(json.contains("\"parent\":\"1\""));
        assert!(json.contains("\"open\":\"true\""));
        assert!(json.contains("\"txn\":\"t\\\"1\""), "attrs are JSON-escaped");
    }

    #[test]
    fn empty_input_is_a_valid_document() {
        assert_eq!(to_chrome_trace(&[]), "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    }
}
