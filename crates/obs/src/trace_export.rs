//! Chrome trace-event JSON export.
//!
//! Renders recorded spans in the Trace Event Format understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): one
//! complete (`"ph":"X"`) event per span, timestamps in µs of
//! *simulation* time, one row (`tid`) per trace so a flow's spans stack
//! under its root. The output is a pure function of the span list —
//! two identically-seeded runs export byte-identical JSON.

use crate::metrics::json_escape;
use crate::prof::ProfileSnapshot;
use crate::span::Span;
use std::fmt::Write as _;

/// Render spans (creation order) as a Chrome trace-event JSON document.
///
/// Open spans are emitted with `dur` 0 and an `"open":"true"` argument
/// so an export taken mid-run still loads. Parent/trace/span ids ride
/// along in `args` for tools that want to rebuild the hierarchy.
pub fn to_chrome_trace(spans: &[Span]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    write_span_events(&mut out, spans);
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// [`to_chrome_trace`] plus the phase profile as a flamegraph-style
/// timeline on a synthetic `dgf-prof` process (`pid` 2): each profile
/// node becomes one complete event whose width is its accumulated
/// wall time, children laid out inside their parent from its start.
///
/// The profile timeline is *synthetic* — its tick unit is wall
/// nanoseconds starting at zero, unrelated to the spans' simulation
/// microseconds — and report-only: wall times vary between runs, so
/// this export is never part of a determinism gate (use
/// [`to_chrome_trace`] there).
pub fn to_chrome_trace_with_profile(spans: &[Span], profile: &ProfileSnapshot) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    write_span_events(&mut out, spans);
    let mut first = spans.is_empty();
    // Per-depth layout cursors over the synthetic ns timeline.
    let mut cursors: Vec<u64> = Vec::new();
    for node in &profile.nodes {
        let depth = node.depth as usize;
        cursors.truncate(depth + 1);
        if cursors.len() <= depth {
            cursors.resize(depth + 1, 0);
        }
        let start = cursors[depth];
        let dur = node.stats.wall_ns;
        cursors[depth] = start + dur;
        cursors.push(start); // children start at this node's start
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"dgf-prof\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":2,\"tid\":0,\"args\":{{\"calls\":\"{}\",\"sim_us\":\"{}\",\"allocs\":\"{}\"}}}}",
            json_escape(node.phase.name()),
            start,
            dur,
            node.stats.calls,
            node.stats.sim_us,
            node.stats.allocs,
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

fn write_span_events(out: &mut String, spans: &[Span]) {
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let dur = span.duration_us().unwrap_or(0);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{",
            json_escape(&span.name),
            span.kind.name(),
            span.start.0,
            dur,
            span.trace.0
        );
        let _ = write!(out, "\"span\":\"{}\"", span.id.0);
        if let Some(parent) = span.parent {
            let _ = write!(out, ",\"parent\":\"{}\"", parent.0);
        }
        if span.end.is_none() {
            out.push_str(",\"open\":\"true\"");
        }
        for (k, v) in &span.attrs {
            let _ = write!(out, ",\"{}\":\"{}\"", json_escape(k), json_escape(v));
        }
        out.push_str("}}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanId, SpanKind, TraceId};
    use dgf_simgrid::SimTime;

    fn span(id: u64, parent: Option<u64>, end: Option<u64>) -> Span {
        Span {
            id: SpanId(id),
            trace: TraceId(1),
            parent: parent.map(SpanId),
            kind: SpanKind::Request,
            name: format!("s{id}"),
            start: SimTime(100),
            end: end.map(SimTime),
            attrs: vec![("txn".into(), "t\"1".into())],
        }
    }

    #[test]
    fn complete_and_open_spans_render() {
        let json = to_chrome_trace(&[span(1, None, Some(150)), span(2, Some(1), None)]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\",\"ts\":100,\"dur\":50"));
        assert!(json.contains("\"parent\":\"1\""));
        assert!(json.contains("\"open\":\"true\""));
        assert!(json.contains("\"txn\":\"t\\\"1\""), "attrs are JSON-escaped");
    }

    #[test]
    fn profile_merge_lays_children_inside_parents() {
        use crate::prof::{Phase, Profiler};
        let mut p = Profiler::new();
        p.enter(Phase::StepExecute, SimTime(0));
        p.enter(Phase::Schedule, SimTime(0));
        p.exit(Phase::Schedule, SimTime(0));
        p.exit(Phase::StepExecute, SimTime(0));
        let json = to_chrome_trace_with_profile(&[span(1, None, Some(150))], &p.snapshot());
        assert!(json.contains("\"cat\":\"dgf-prof\""));
        assert!(json.contains("\"name\":\"step-execute\""));
        assert!(json.contains("\"name\":\"schedule\""));
        // The span events still render alongside the profile slices.
        assert!(json.contains("\"name\":\"s1\""));
        assert!(json.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        // Both profile slices start at the synthetic timeline origin
        // (the child nests inside the parent's interval).
        assert_eq!(json.matches("\"ts\":0,").count(), 2, "{json}");
    }

    #[test]
    fn empty_profile_merge_matches_plain_export() {
        let spans = [span(1, None, Some(150))];
        assert_eq!(
            to_chrome_trace_with_profile(&spans, &Default::default()),
            to_chrome_trace(&spans)
        );
    }

    #[test]
    fn empty_input_is_a_valid_document() {
        assert_eq!(to_chrome_trace(&[]), "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    }
}
