//! The span model: hierarchical, sim-time-stamped units of work.
//!
//! A *span* covers one causally-attributed unit of work — a flow run, a
//! step request, a scheduler binding, a DGMS operation, a network
//! transfer, a trigger action — with a start and (once finished) an end
//! on the *simulation* clock, a parent span, and structured attributes.
//! Spans of one flow share a [`TraceId`]; walking parent links from any
//! span reaches the flow's root span, which is what makes "where did
//! the time go?" answerable at any granularity (paper §3.1).
//!
//! Ids are allocated from monotonic counters inside the shared
//! [`crate::Obs`] handle — never from randomness or wall-clock — so two
//! identically-seeded runs produce bit-for-bit identical traces.

use dgf_simgrid::SimTime;

/// What kind of work a span covers. The kinds mirror the causal chain
/// `flow → request → scheduler-binding → dgms-op / network-transfer →
/// trigger-action`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// A whole flow run, submission to terminal state.
    Flow,
    /// One node of the flow tree executing (a step or sub-flow).
    Request,
    /// The scheduler binding an abstract task to a concrete resource.
    SchedulerBinding,
    /// One data-management operation executed by the DGMS.
    DgmsOp,
    /// One input-staging or output transfer on the simulated grid.
    NetworkTransfer,
    /// A datagrid trigger's action being carried out.
    TriggerAction,
}

impl SpanKind {
    /// Every kind, in causal-chain order (used for per-kind reports).
    pub const ALL: [SpanKind; 6] = [
        SpanKind::Flow,
        SpanKind::Request,
        SpanKind::SchedulerBinding,
        SpanKind::DgmsOp,
        SpanKind::NetworkTransfer,
        SpanKind::TriggerAction,
    ];

    /// The stable dotted-name token used on the wire, in metrics names,
    /// and in exports.
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::Flow => "flow",
            SpanKind::Request => "request",
            SpanKind::SchedulerBinding => "scheduler-binding",
            SpanKind::DgmsOp => "dgms-op",
            SpanKind::NetworkTransfer => "network-transfer",
            SpanKind::TriggerAction => "trigger-action",
        }
    }

    /// Parse the wire token back into a kind.
    pub fn parse(s: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// Identifies one trace (all spans of one flow run). Allocated
/// sequentially from 1 by the recording [`crate::Obs`] handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// Identifies one span within its recording handle. Allocated
/// sequentially from 1; ids are unique per handle, not per trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

/// The pair of ids a unit of work carries so children can attach to it.
/// `Copy` and two words wide — cheap to thread through signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanContext {
    /// The owning trace.
    pub trace: TraceId,
    /// The span itself.
    pub span: SpanId,
}

/// One recorded span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// This span's id.
    pub id: SpanId,
    /// The trace it belongs to.
    pub trace: TraceId,
    /// The parent span, `None` for a trace's root.
    pub parent: Option<SpanId>,
    /// What kind of work it covers.
    pub kind: SpanKind,
    /// Human-readable name (step name, operation verb, trigger name…).
    pub name: String,
    /// Simulation time the work started.
    pub start: SimTime,
    /// Simulation time the work ended; `None` while still open.
    pub end: Option<SimTime>,
    /// Structured attributes, in insertion order.
    pub attrs: Vec<(String, String)>,
}

impl Span {
    /// The context children use to attach to this span.
    pub fn context(&self) -> SpanContext {
        SpanContext { trace: self.trace, span: self.id }
    }

    /// Elapsed simulation time in µs, `None` while the span is open.
    pub fn duration_us(&self) -> Option<u64> {
        self.end.map(|e| e.0.saturating_sub(self.start.0))
    }

    /// The first attribute named `key`, if any.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(SpanKind::parse("bogus"), None);
    }

    #[test]
    fn duration_and_attr_helpers() {
        let mut span = Span {
            id: SpanId(1),
            trace: TraceId(1),
            parent: None,
            kind: SpanKind::Flow,
            name: "f".into(),
            start: SimTime(10),
            end: None,
            attrs: vec![("txn".into(), "t1".into())],
        };
        assert_eq!(span.duration_us(), None);
        assert_eq!(span.attr("txn"), Some("t1"));
        assert_eq!(span.attr("missing"), None);
        span.end = Some(SimTime(25));
        assert_eq!(span.duration_us(), Some(15));
        assert_eq!(span.context(), SpanContext { trace: TraceId(1), span: SpanId(1) });
    }
}
