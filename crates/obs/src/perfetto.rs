//! Perfetto protobuf trace export.
//!
//! Renders recorded spans as a binary [Perfetto](https://perfetto.dev)
//! `Trace` message, loadable directly in <https://ui.perfetto.dev> —
//! no JSON conversion, no truncation limits. The encoder is a pure
//! function of the span list, so two identically-seeded runs export
//! byte-identical traces (the same determinism contract as
//! [`crate::to_chrome_trace`]).
//!
//! The schema subset used (field numbers from the public
//! `perfetto.protos` definitions):
//!
//! * `Trace.packet = 1` — the repeated [`TracePacket`] stream;
//! * `TracePacket`: `timestamp = 8`, `trusted_packet_sequence_id = 10`,
//!   `track_event = 11`, `track_descriptor = 60`;
//! * `TrackDescriptor`: `uuid = 1`, `name = 2`, `parent_uuid = 5`;
//! * `TrackEvent`: `debug_annotations = 4`, `type = 9`,
//!   `track_uuid = 11`, `categories = 22`, `name = 23`;
//! * `DebugAnnotation`: `string_value = 6`, `name = 10`.
//!
//! Layout: each trace becomes a named parent track (`trace N`); its
//! spans are packed onto child *lanes* by a greedy interval scheduler
//! so overlapping spans render side by side instead of corrupting the
//! begin/end nesting Perfetto expects per track. Timestamps are
//! simulation-µs scaled to ns (Perfetto's native unit). Track uuids
//! are allocated sequentially — never from randomness — and every
//! span's ids, kind, and attributes ride along as debug annotations.
//!
//! [`decode_perfetto`] is a verifying decoder for the same subset; the
//! test-suite round-trips large traces through it to prove the writer
//! emits well-formed protobuf end to end.

use crate::prof::{ProfileNode, ProfileSnapshot};
use crate::span::Span;

// ---------------------------------------------------------------------
// Protobuf wire-format primitives (proto3, subset: varint + length-
// delimited). Hand-rolled: the export must not pull in a codegen
// dependency.
// ---------------------------------------------------------------------

const WIRE_VARINT: u64 = 0;
const WIRE_LEN: u64 = 2;

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_key(out: &mut Vec<u8>, field: u64, wire: u64) {
    put_varint(out, (field << 3) | wire);
}

fn put_varint_field(out: &mut Vec<u8>, field: u64, v: u64) {
    put_key(out, field, WIRE_VARINT);
    put_varint(out, v);
}

fn put_len_field(out: &mut Vec<u8>, field: u64, bytes: &[u8]) {
    put_key(out, field, WIRE_LEN);
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

fn put_str_field(out: &mut Vec<u8>, field: u64, s: &str) {
    put_len_field(out, field, s.as_bytes());
}

// TracePacket field numbers.
const PACKET: u64 = 1; // Trace.packet
const TIMESTAMP: u64 = 8;
const SEQUENCE_ID: u64 = 10;
const TRACK_EVENT: u64 = 11;
const TRACK_DESCRIPTOR: u64 = 60;

// TrackDescriptor field numbers.
const TRACK_UUID_FIELD: u64 = 1;
const TRACK_NAME: u64 = 2;
const TRACK_PARENT_UUID: u64 = 5;

// TrackEvent field numbers.
const EVENT_ANNOTATIONS: u64 = 4;
const EVENT_TYPE: u64 = 9;
const EVENT_TRACK_UUID: u64 = 11;
const EVENT_CATEGORIES: u64 = 22;
const EVENT_NAME: u64 = 23;

// DebugAnnotation field numbers.
const ANNOTATION_STRING_VALUE: u64 = 6;
const ANNOTATION_NAME: u64 = 10;

/// `TrackEvent.Type.TYPE_SLICE_BEGIN`.
pub const SLICE_BEGIN: u64 = 1;
/// `TrackEvent.Type.TYPE_SLICE_END`.
pub const SLICE_END: u64 = 2;

/// All packets share one synthetic trusted sequence id; the export is
/// produced by a single logical writer.
const SEQUENCE: u64 = 1;

// ---------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------

/// One span occurrence placed on a lane, ready to become a
/// begin/end packet pair.
struct Placed<'a> {
    span: &'a Span,
    lane_uuid: u64,
}

/// Render spans (any order) as a binary Perfetto `Trace` message.
///
/// Open spans are emitted as an un-terminated `SLICE_BEGIN` with an
/// `open = "true"` annotation, so an export taken mid-run still loads
/// (Perfetto draws the slice to the end of the trace). The output is a
/// pure function of the input — byte-identical across reruns of a
/// seeded scenario.
pub fn to_perfetto_trace(spans: &[Span]) -> Vec<u8> {
    encode_spans(spans).0
}

/// [`to_perfetto_trace`] plus the phase profile as a flamegraph-style
/// slice stack on an extra `dgf-prof` track: each profile node becomes
/// a begin/end pair whose width is its accumulated wall time, children
/// nested inside their parent from its start.
///
/// The profile timeline is *synthetic* — ticks are wall nanoseconds
/// starting at zero, unrelated to the spans' simulation microseconds —
/// and report-only: wall times vary between runs, so this export is
/// never part of a determinism gate (use [`to_perfetto_trace`] there).
pub fn to_perfetto_trace_with_profile(spans: &[Span], profile: &ProfileSnapshot) -> Vec<u8> {
    let (mut out, next_uuid) = encode_spans(spans);
    if profile.is_empty() {
        return out;
    }
    let prof_uuid = next_uuid;
    emit_track_descriptor(&mut out, prof_uuid, "dgf-prof", None);
    // Per-depth layout cursors over the synthetic wall-ns timeline,
    // mirroring `to_chrome_trace_with_profile`. Snapshot nodes arrive
    // in DFS order, so an open-scope stack turns the flat list back
    // into properly nested begin/end packet pairs.
    let mut cursors: Vec<u64> = Vec::new();
    let mut open: Vec<(usize, u64)> = Vec::new(); // (depth, end ts ns)
    for node in &profile.nodes {
        let depth = node.depth as usize;
        cursors.truncate(depth + 1);
        if cursors.len() <= depth {
            cursors.resize(depth + 1, 0);
        }
        let start = cursors[depth];
        let end = start + node.stats.wall_ns;
        cursors[depth] = end;
        cursors.push(start); // children start at this node's start
        while open.last().is_some_and(|&(d, _)| d >= depth) {
            let (_, close) = open.pop().expect("checked non-empty");
            emit_profile_end(&mut out, close, prof_uuid);
        }
        emit_profile_begin(&mut out, start, prof_uuid, node);
        open.push((depth, end));
    }
    while let Some((_, close)) = open.pop() {
        emit_profile_end(&mut out, close, prof_uuid);
    }
    out
}

/// Shared span encoder; returns the packet stream and the next unused
/// track uuid so callers can append further tracks.
fn encode_spans(spans: &[Span]) -> (Vec<u8>, u64) {
    let mut out = Vec::with_capacity(spans.len() * 96 + 64);
    let mut next_uuid: u64 = 1;
    let mut placed: Vec<Placed<'_>> = Vec::with_capacity(spans.len());

    // Group spans by trace, keeping trace-id order deterministic.
    let mut trace_ids: Vec<u64> = spans.iter().map(|s| s.trace.0).collect();
    trace_ids.sort_unstable();
    trace_ids.dedup();

    for trace in trace_ids {
        let mut members: Vec<&Span> = spans.iter().filter(|s| s.trace.0 == trace).collect();
        // Greedy interval packing: first lane whose last slice ended at
        // or before this span's start takes it; open spans hold their
        // lane forever.
        members.sort_by_key(|s| (s.start.0, s.id.0));
        let root_uuid = next_uuid;
        next_uuid += 1;
        emit_track_descriptor(&mut out, root_uuid, &format!("trace {trace}"), None);
        let mut lanes: Vec<(u64, u64)> = Vec::new(); // (lane uuid, busy-until µs)
        for span in members {
            let end = span.end.map_or(u64::MAX, |e| e.0);
            let lane_uuid = match lanes.iter_mut().find(|(_, busy)| *busy <= span.start.0) {
                Some(lane) => {
                    lane.1 = end;
                    lane.0
                }
                None => {
                    let uuid = next_uuid;
                    next_uuid += 1;
                    emit_track_descriptor(
                        &mut out,
                        uuid,
                        &format!("trace {trace} / lane {}", lanes.len()),
                        Some(root_uuid),
                    );
                    lanes.push((uuid, end));
                    uuid
                }
            };
            placed.push(Placed { span, lane_uuid });
        }
    }

    // Emit begin/end events in global timestamp order; ends sort before
    // begins at the same instant so back-to-back slices on one lane
    // stay properly nested.
    let mut events: Vec<(u64, u8, usize)> = Vec::with_capacity(placed.len() * 2);
    for (i, p) in placed.iter().enumerate() {
        events.push((p.span.start.0, 1, i));
        if let Some(end) = p.span.end {
            events.push((end.0, 0, i));
        }
    }
    events.sort_unstable_by_key(|&(ts, phase, i)| (ts, phase, i));

    for (ts, phase, i) in events {
        let p = &placed[i];
        if phase == 1 {
            emit_slice_begin(&mut out, ts, p.lane_uuid, p.span);
        } else {
            emit_slice_end(&mut out, ts, p.lane_uuid);
        }
    }
    (out, next_uuid)
}

fn emit_track_descriptor(out: &mut Vec<u8>, uuid: u64, name: &str, parent: Option<u64>) {
    let mut desc = Vec::with_capacity(name.len() + 16);
    put_varint_field(&mut desc, TRACK_UUID_FIELD, uuid);
    put_str_field(&mut desc, TRACK_NAME, name);
    if let Some(parent) = parent {
        put_varint_field(&mut desc, TRACK_PARENT_UUID, parent);
    }
    let mut packet = Vec::with_capacity(desc.len() + 8);
    put_len_field(&mut packet, TRACK_DESCRIPTOR, &desc);
    put_varint_field(&mut packet, SEQUENCE_ID, SEQUENCE);
    put_len_field(out, PACKET, &packet);
}

fn annotation(name: &str, value: &str) -> Vec<u8> {
    let mut a = Vec::with_capacity(name.len() + value.len() + 8);
    put_str_field(&mut a, ANNOTATION_STRING_VALUE, value);
    put_str_field(&mut a, ANNOTATION_NAME, name);
    a
}

fn emit_slice_begin(out: &mut Vec<u8>, ts_us: u64, track_uuid: u64, span: &Span) {
    let mut event = Vec::with_capacity(span.name.len() + 64);
    let ann = |event: &mut Vec<u8>, k: &str, v: &str| {
        put_len_field(event, EVENT_ANNOTATIONS, &annotation(k, v));
    };
    ann(&mut event, "span", &span.id.0.to_string());
    if let Some(parent) = span.parent {
        ann(&mut event, "parent", &parent.0.to_string());
    }
    if span.end.is_none() {
        ann(&mut event, "open", "true");
    }
    for (k, v) in &span.attrs {
        ann(&mut event, k, v);
    }
    put_varint_field(&mut event, EVENT_TYPE, SLICE_BEGIN);
    put_varint_field(&mut event, EVENT_TRACK_UUID, track_uuid);
    put_str_field(&mut event, EVENT_CATEGORIES, span.kind.name());
    put_str_field(&mut event, EVENT_NAME, &span.name);
    emit_event_packet(out, ts_us, &event);
}

fn emit_slice_end(out: &mut Vec<u8>, ts_us: u64, track_uuid: u64) {
    let mut event = Vec::with_capacity(8);
    put_varint_field(&mut event, EVENT_TYPE, SLICE_END);
    put_varint_field(&mut event, EVENT_TRACK_UUID, track_uuid);
    emit_event_packet(out, ts_us, &event);
}

fn emit_event_packet(out: &mut Vec<u8>, ts_us: u64, event: &[u8]) {
    // Simulation µs → Perfetto ns.
    emit_event_packet_ns(out, ts_us.saturating_mul(1000), event);
}

fn emit_event_packet_ns(out: &mut Vec<u8>, ts_ns: u64, event: &[u8]) {
    let mut packet = Vec::with_capacity(event.len() + 16);
    put_varint_field(&mut packet, TIMESTAMP, ts_ns);
    put_len_field(&mut packet, TRACK_EVENT, event);
    put_varint_field(&mut packet, SEQUENCE_ID, SEQUENCE);
    put_len_field(out, PACKET, &packet);
}

fn emit_profile_begin(out: &mut Vec<u8>, ts_ns: u64, track_uuid: u64, node: &ProfileNode) {
    let mut event = Vec::with_capacity(96);
    let ann = |event: &mut Vec<u8>, k: &str, v: &str| {
        put_len_field(event, EVENT_ANNOTATIONS, &annotation(k, v));
    };
    ann(&mut event, "calls", &node.stats.calls.to_string());
    ann(&mut event, "sim_us", &node.stats.sim_us.to_string());
    ann(&mut event, "allocs", &node.stats.allocs.to_string());
    put_varint_field(&mut event, EVENT_TYPE, SLICE_BEGIN);
    put_varint_field(&mut event, EVENT_TRACK_UUID, track_uuid);
    put_str_field(&mut event, EVENT_CATEGORIES, "dgf-prof");
    put_str_field(&mut event, EVENT_NAME, node.phase.name());
    emit_event_packet_ns(out, ts_ns, &event);
}

fn emit_profile_end(out: &mut Vec<u8>, ts_ns: u64, track_uuid: u64) {
    let mut event = Vec::with_capacity(8);
    put_varint_field(&mut event, EVENT_TYPE, SLICE_END);
    put_varint_field(&mut event, EVENT_TRACK_UUID, track_uuid);
    emit_event_packet_ns(out, ts_ns, &event);
}

// ---------------------------------------------------------------------
// Verifying decoder
// ---------------------------------------------------------------------

/// A decoded `TrackDescriptor`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfettoTrack {
    /// The track's uuid.
    pub uuid: u64,
    /// The track's display name.
    pub name: String,
    /// The parent track's uuid (lanes point at their trace track).
    pub parent_uuid: Option<u64>,
}

/// A decoded `TrackEvent`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfettoEvent {
    /// `TrackEvent.Type` ([`SLICE_BEGIN`], [`SLICE_END`], …).
    pub event_type: u64,
    /// The track this event belongs to.
    pub track_uuid: u64,
    /// The slice name (begins only).
    pub name: Option<String>,
    /// Categories (the span kind token).
    pub categories: Vec<String>,
    /// Debug annotations as `(name, string_value)` pairs.
    pub annotations: Vec<(String, String)>,
}

/// A decoded `TracePacket`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PerfettoPacket {
    /// Packet timestamp in ns, if present.
    pub timestamp: Option<u64>,
    /// `trusted_packet_sequence_id`, if present.
    pub sequence_id: Option<u64>,
    /// A track definition, if this packet carries one.
    pub track: Option<PerfettoTrack>,
    /// A track event, if this packet carries one.
    pub event: Option<PerfettoEvent>,
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn done(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn varint(&mut self) -> Result<u64, String> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = *self
                .buf
                .get(self.pos)
                .ok_or_else(|| format!("varint runs past end at offset {}", self.pos))?;
            self.pos += 1;
            if shift >= 64 {
                return Err("varint longer than 64 bits".into());
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn bytes(&mut self) -> Result<&'a [u8], String> {
        let len = self.varint()? as usize;
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("length {len} overruns buffer at offset {}", self.pos))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Read a field key; returns `(field, wire_type)`.
    fn key(&mut self) -> Result<(u64, u64), String> {
        let k = self.varint()?;
        Ok((k >> 3, k & 0x7))
    }

    /// Skip a field of the given wire type (only the types we emit).
    fn skip(&mut self, wire: u64) -> Result<(), String> {
        match wire {
            WIRE_VARINT => self.varint().map(|_| ()),
            WIRE_LEN => self.bytes().map(|_| ()),
            other => Err(format!("unsupported wire type {other}")),
        }
    }
}

fn utf8(bytes: &[u8]) -> Result<String, String> {
    String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid UTF-8 string: {e}"))
}

fn decode_track(buf: &[u8]) -> Result<PerfettoTrack, String> {
    let mut r = Reader::new(buf);
    let mut track = PerfettoTrack { uuid: 0, name: String::new(), parent_uuid: None };
    while !r.done() {
        let (field, wire) = r.key()?;
        match field {
            TRACK_UUID_FIELD => track.uuid = r.varint()?,
            TRACK_NAME => track.name = utf8(r.bytes()?)?,
            TRACK_PARENT_UUID => track.parent_uuid = Some(r.varint()?),
            _ => r.skip(wire)?,
        }
    }
    Ok(track)
}

fn decode_annotation(buf: &[u8]) -> Result<(String, String), String> {
    let mut r = Reader::new(buf);
    let (mut name, mut value) = (String::new(), String::new());
    while !r.done() {
        let (field, wire) = r.key()?;
        match field {
            ANNOTATION_NAME => name = utf8(r.bytes()?)?,
            ANNOTATION_STRING_VALUE => value = utf8(r.bytes()?)?,
            _ => r.skip(wire)?,
        }
    }
    Ok((name, value))
}

fn decode_event(buf: &[u8]) -> Result<PerfettoEvent, String> {
    let mut r = Reader::new(buf);
    let mut event = PerfettoEvent {
        event_type: 0,
        track_uuid: 0,
        name: None,
        categories: Vec::new(),
        annotations: Vec::new(),
    };
    while !r.done() {
        let (field, wire) = r.key()?;
        match field {
            EVENT_TYPE => event.event_type = r.varint()?,
            EVENT_TRACK_UUID => event.track_uuid = r.varint()?,
            EVENT_NAME => event.name = Some(utf8(r.bytes()?)?),
            EVENT_CATEGORIES => event.categories.push(utf8(r.bytes()?)?),
            EVENT_ANNOTATIONS => event.annotations.push(decode_annotation(r.bytes()?)?),
            _ => r.skip(wire)?,
        }
    }
    Ok(event)
}

fn decode_packet(buf: &[u8]) -> Result<PerfettoPacket, String> {
    let mut r = Reader::new(buf);
    let mut packet = PerfettoPacket::default();
    while !r.done() {
        let (field, wire) = r.key()?;
        match field {
            TIMESTAMP => packet.timestamp = Some(r.varint()?),
            SEQUENCE_ID => packet.sequence_id = Some(r.varint()?),
            TRACK_DESCRIPTOR => packet.track = Some(decode_track(r.bytes()?)?),
            TRACK_EVENT => packet.event = Some(decode_event(r.bytes()?)?),
            _ => r.skip(wire)?,
        }
    }
    Ok(packet)
}

/// Decode a binary Perfetto `Trace` produced by [`to_perfetto_trace`]
/// back into its packets.
///
/// This is a *verifying* decoder: any framing error — a truncated
/// varint, a length running past the buffer, a non-UTF-8 string —
/// returns `Err` instead of a partial result, so a successful decode
/// proves the whole buffer is well-formed wire format.
pub fn decode_perfetto(bytes: &[u8]) -> Result<Vec<PerfettoPacket>, String> {
    let mut r = Reader::new(bytes);
    let mut packets = Vec::new();
    while !r.done() {
        let (field, wire) = r.key()?;
        if field == PACKET && wire == WIRE_LEN {
            packets.push(decode_packet(r.bytes()?)?);
        } else {
            r.skip(wire)?;
        }
    }
    Ok(packets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Span, SpanId, SpanKind, TraceId};
    use dgf_simgrid::SimTime;

    fn span(id: u64, trace: u64, start: u64, end: Option<u64>) -> Span {
        Span {
            id: SpanId(id),
            trace: TraceId(trace),
            parent: (id > 1).then_some(SpanId(1)),
            kind: SpanKind::Request,
            name: format!("s{id}"),
            start: SimTime(start),
            end: end.map(SimTime),
            attrs: vec![("txn".into(), "t1".into())],
        }
    }

    #[test]
    fn empty_input_is_an_empty_trace() {
        let bytes = to_perfetto_trace(&[]);
        assert!(bytes.is_empty());
        assert_eq!(decode_perfetto(&bytes).unwrap().len(), 0);
    }

    #[test]
    fn round_trip_preserves_slices_and_annotations() {
        let spans =
            vec![span(1, 1, 100, Some(400)), span(2, 1, 150, Some(250)), span(3, 1, 200, None)];
        let bytes = to_perfetto_trace(&spans);
        let packets = decode_perfetto(&bytes).unwrap();

        let tracks: Vec<_> = packets.iter().filter_map(|p| p.track.as_ref()).collect();
        // Root + lane 0 (span 1) + lane 1 (span 2) + lane 2 (span 3:
        // lane 1 is busy until 250 when span 3 starts at 200).
        assert_eq!(tracks.len(), 4);
        assert_eq!(tracks[0].name, "trace 1");
        assert!(tracks[1..].iter().all(|t| t.parent_uuid == Some(tracks[0].uuid)));

        let begins: Vec<_> = packets
            .iter()
            .filter(|p| p.event.as_ref().is_some_and(|e| e.event_type == SLICE_BEGIN))
            .collect();
        let ends = packets
            .iter()
            .filter(|p| p.event.as_ref().is_some_and(|e| e.event_type == SLICE_END))
            .count();
        assert_eq!(begins.len(), 3);
        assert_eq!(ends, 2, "the open span has no end packet");

        let first = begins[0].event.as_ref().unwrap();
        assert_eq!(first.name.as_deref(), Some("s1"));
        assert_eq!(first.categories, vec!["request".to_owned()]);
        assert!(first.annotations.contains(&("txn".into(), "t1".into())));
        assert_eq!(begins[0].timestamp, Some(100_000), "µs scaled to ns");
        let open = begins[2].event.as_ref().unwrap();
        assert!(open.annotations.contains(&("open".into(), "true".into())));
    }

    #[test]
    fn lane_reuse_after_a_slice_closes() {
        // Span 2 starts exactly when span 1 ends: same lane, and the
        // end packet must sort before the begin at the shared instant.
        let spans = vec![span(1, 1, 100, Some(200)), span(2, 1, 200, Some(300))];
        let packets = decode_perfetto(&to_perfetto_trace(&spans)).unwrap();
        let tracks = packets.iter().filter(|p| p.track.is_some()).count();
        assert_eq!(tracks, 2, "root + one shared lane");
        let at_200: Vec<u64> = packets
            .iter()
            .filter(|p| p.timestamp == Some(200_000))
            .map(|p| p.event.as_ref().unwrap().event_type)
            .collect();
        assert_eq!(at_200, vec![SLICE_END, SLICE_BEGIN]);
    }

    #[test]
    fn traces_get_separate_track_families() {
        let spans = vec![span(1, 2, 100, Some(200)), span(2, 7, 100, Some(200))];
        let packets = decode_perfetto(&to_perfetto_trace(&spans)).unwrap();
        let roots: Vec<_> = packets
            .iter()
            .filter_map(|p| p.track.as_ref())
            .filter(|t| t.parent_uuid.is_none())
            .map(|t| t.name.clone())
            .collect();
        assert_eq!(roots, vec!["trace 2".to_owned(), "trace 7".to_owned()]);
    }

    #[test]
    fn decoder_rejects_truncation() {
        let spans = vec![span(1, 1, 100, Some(200))];
        let bytes = to_perfetto_trace(&spans);
        assert!(decode_perfetto(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn export_is_deterministic() {
        let spans = vec![span(1, 1, 100, Some(400)), span(2, 1, 150, None)];
        assert_eq!(to_perfetto_trace(&spans), to_perfetto_trace(&spans));
    }

    #[test]
    fn profile_merge_round_trips_with_a_dgf_prof_track() {
        use crate::prof::{Phase, Profiler};
        let mut p = Profiler::new();
        p.enter(Phase::StepExecute, SimTime(0));
        p.enter(Phase::Schedule, SimTime(5));
        p.exit(Phase::Schedule, SimTime(7));
        p.exit(Phase::StepExecute, SimTime(9));
        p.enter(Phase::DglParse, SimTime(10));
        p.exit(Phase::DglParse, SimTime(11));
        let spans = vec![span(1, 1, 100, Some(400))];
        let bytes = to_perfetto_trace_with_profile(&spans, &p.snapshot());
        let packets = decode_perfetto(&bytes).unwrap();

        let prof_track = packets
            .iter()
            .filter_map(|p| p.track.as_ref())
            .find(|t| t.name == "dgf-prof")
            .expect("profile track present");
        let span_uuids: Vec<u64> = packets
            .iter()
            .filter_map(|p| p.track.as_ref())
            .filter(|t| t.name != "dgf-prof")
            .map(|t| t.uuid)
            .collect();
        assert!(!span_uuids.contains(&prof_track.uuid), "uuid does not collide");

        let prof_events: Vec<_> = packets
            .iter()
            .filter_map(|p| p.event.as_ref())
            .filter(|e| e.track_uuid == prof_track.uuid)
            .collect();
        let begins: Vec<_> =
            prof_events.iter().filter(|e| e.event_type == SLICE_BEGIN).collect();
        let ends = prof_events.iter().filter(|e| e.event_type == SLICE_END).count();
        assert_eq!(begins.len(), 3, "one begin per profile node");
        assert_eq!(ends, 3, "every profile slice closes");
        // Snapshot DFS visits roots in phase-id order: dgl-parse
        // precedes step-execute, whose child schedule follows it.
        assert_eq!(begins[0].name.as_deref(), Some("dgl-parse"));
        assert_eq!(begins[1].name.as_deref(), Some("step-execute"));
        assert_eq!(begins[2].name.as_deref(), Some("schedule"));
        assert!(begins[1].annotations.contains(&("sim_us".into(), "9".into())));
        assert!(begins[2].annotations.contains(&("calls".into(), "1".into())));
        // The base span stream still round-trips alongside the profile.
        assert!(packets
            .iter()
            .filter_map(|p| p.event.as_ref())
            .any(|e| e.name.as_deref() == Some("s1")));
    }

    #[test]
    fn empty_profile_merge_matches_plain_export() {
        let spans = vec![span(1, 1, 100, Some(400))];
        assert_eq!(
            to_perfetto_trace_with_profile(&spans, &Default::default()),
            to_perfetto_trace(&spans)
        );
    }
}
