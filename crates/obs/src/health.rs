//! Flow-progress watchdog: classifies live flows as
//! `Healthy / Slow / Stalled` by how long ago they last made progress.
//!
//! A flow's *progress watermark* is the sim-time of its last completed
//! step (span close). The monitor compares `now - watermark` against
//! two configurable deadlines and reports classification *transitions*
//! so the caller can turn them into recorder events and a
//! `dfms/flows_stalled` gauge. For a months-long datagridflow this is
//! the difference between "the status call says Running" and "nothing
//! has actually happened since Tuesday".
//!
//! ```
//! use dgf_obs::{HealthConfig, HealthMonitor, HealthState};
//! use dgf_simgrid::{Duration, SimTime};
//!
//! let mut mon = HealthMonitor::new(HealthConfig {
//!     slow_after: Duration::from_secs(60),
//!     stalled_after: Duration::from_secs(300),
//! });
//! mon.register("tx-1", SimTime::ZERO);
//! assert!(mon.check(SimTime(30_000_000)).is_empty()); // 30s: healthy
//! let t = mon.check(SimTime(90_000_000)); // 90s without progress
//! assert_eq!(t[0].to, HealthState::Slow);
//! ```

use dgf_simgrid::{Duration, SimTime};
use std::collections::BTreeMap;

/// A flow's liveness classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HealthState {
    /// Made progress within the `slow_after` deadline.
    Healthy,
    /// No progress for at least `slow_after`.
    Slow,
    /// No progress for at least `stalled_after`.
    Stalled,
}

impl HealthState {
    /// Stable lowercase name, used in events, gauges, and the scrape.
    pub fn name(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Slow => "slow",
            HealthState::Stalled => "stalled",
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The watchdog's deadlines, in sim-time since last progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// A flow with no progress for this long is `Slow`.
    pub slow_after: Duration,
    /// A flow with no progress for this long is `Stalled`. Clamped up
    /// to at least `slow_after`.
    pub stalled_after: Duration,
}

impl Default for HealthConfig {
    /// Slow after 15 simulated minutes, stalled after 2 simulated hours.
    fn default() -> Self {
        HealthConfig { slow_after: Duration::from_secs(900), stalled_after: Duration::from_hours(2) }
    }
}

/// One flow's current classification and watermark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowHealth {
    /// The flow's transaction id.
    pub txn: String,
    /// Current classification.
    pub state: HealthState,
    /// Sim-time of the last completed step (or submission).
    pub last_progress: SimTime,
}

/// A classification change reported by [`HealthMonitor::check`] or
/// [`HealthMonitor::progress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthTransition {
    /// The flow's transaction id.
    pub txn: String,
    /// Classification before the change.
    pub from: HealthState,
    /// Classification after the change.
    pub to: HealthState,
    /// The flow's progress watermark at transition time.
    pub last_progress: SimTime,
}

/// Tracks every live flow's progress watermark and classification.
/// Flows are `BTreeMap`-ordered by transaction id, so iteration and
/// transition order are deterministic.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    config: HealthConfig,
    flows: BTreeMap<String, (HealthState, SimTime)>,
}

impl HealthMonitor {
    /// An empty monitor with the given deadlines.
    pub fn new(config: HealthConfig) -> Self {
        HealthMonitor { config, flows: BTreeMap::new() }
    }

    /// The active deadlines.
    pub fn config(&self) -> HealthConfig {
        self.config
    }

    /// Replace the deadlines; takes effect at the next check.
    pub fn set_config(&mut self, config: HealthConfig) {
        self.config = config;
    }

    /// Start watching a flow, watermarked at `now` (submission counts
    /// as progress).
    pub fn register(&mut self, txn: &str, now: SimTime) {
        self.flows.insert(txn.to_owned(), (HealthState::Healthy, now));
    }

    /// Stop watching a flow (it reached a terminal state).
    pub fn finish(&mut self, txn: &str) {
        self.flows.remove(txn);
    }

    /// Advance a flow's watermark to `now`. If the flow had been
    /// classified `Slow` or `Stalled`, it recovers to `Healthy` and the
    /// transition is returned.
    pub fn progress(&mut self, txn: &str, now: SimTime) -> Option<HealthTransition> {
        let (state, watermark) = self.flows.get_mut(txn)?;
        *watermark = now.max(*watermark);
        if *state == HealthState::Healthy {
            return None;
        }
        let from = *state;
        *state = HealthState::Healthy;
        Some(HealthTransition { txn: txn.to_owned(), from, to: HealthState::Healthy, last_progress: now })
    }

    fn classify(&self, watermark: SimTime, now: SimTime) -> HealthState {
        let idle = now.0.saturating_sub(watermark.0);
        let stalled_after = self.config.stalled_after.0.max(self.config.slow_after.0);
        if idle >= stalled_after {
            HealthState::Stalled
        } else if idle >= self.config.slow_after.0 {
            HealthState::Slow
        } else {
            HealthState::Healthy
        }
    }

    /// Re-classify every watched flow against `now`, returning the
    /// transitions (in transaction-id order).
    pub fn check(&mut self, now: SimTime) -> Vec<HealthTransition> {
        let mut transitions = Vec::new();
        let keys: Vec<String> = self.flows.keys().cloned().collect();
        for txn in keys {
            let (state, watermark) = self.flows[&txn];
            let next = self.classify(watermark, now);
            if next != state {
                self.flows.insert(txn.clone(), (next, watermark));
                transitions.push(HealthTransition { txn, from: state, to: next, last_progress: watermark });
            }
        }
        transitions
    }

    /// Every watched flow's classification, in transaction-id order.
    pub fn flows(&self) -> Vec<FlowHealth> {
        self.flows
            .iter()
            .map(|(txn, (state, watermark))| FlowHealth {
                txn: txn.clone(),
                state: *state,
                last_progress: *watermark,
            })
            .collect()
    }

    /// One flow's classification.
    pub fn flow(&self, txn: &str) -> Option<FlowHealth> {
        self.flows.get(txn).map(|(state, watermark)| FlowHealth {
            txn: txn.to_owned(),
            state: *state,
            last_progress: *watermark,
        })
    }

    /// How many watched flows are currently `Stalled`.
    pub fn stalled_count(&self) -> usize {
        self.flows.values().filter(|(s, _)| *s == HealthState::Stalled).count()
    }

    /// How many flows are being watched.
    pub fn watched_count(&self) -> usize {
        self.flows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> HealthMonitor {
        HealthMonitor::new(HealthConfig {
            slow_after: Duration::from_secs(60),
            stalled_after: Duration::from_secs(300),
        })
    }

    #[test]
    fn classification_walks_healthy_slow_stalled() {
        let mut m = monitor();
        m.register("t", SimTime::ZERO);
        assert!(m.check(SimTime(59_000_000)).is_empty());
        let t = m.check(SimTime(60_000_000));
        assert_eq!((t[0].from, t[0].to), (HealthState::Healthy, HealthState::Slow));
        assert!(m.check(SimTime(299_000_000)).is_empty(), "still slow, no transition");
        let t = m.check(SimTime(300_000_000));
        assert_eq!((t[0].from, t[0].to), (HealthState::Slow, HealthState::Stalled));
        assert_eq!(m.stalled_count(), 1);
    }

    #[test]
    fn progress_recovers_and_reports_the_transition() {
        let mut m = monitor();
        m.register("t", SimTime::ZERO);
        m.check(SimTime(400_000_000));
        assert_eq!(m.flow("t").unwrap().state, HealthState::Stalled);
        let t = m.progress("t", SimTime(400_000_001)).expect("recovery transition");
        assert_eq!((t.from, t.to), (HealthState::Stalled, HealthState::Healthy));
        assert_eq!(m.stalled_count(), 0);
        assert!(m.progress("t", SimTime(400_000_002)).is_none(), "healthy progress is silent");
    }

    #[test]
    fn finished_flows_are_forgotten() {
        let mut m = monitor();
        m.register("t", SimTime::ZERO);
        m.finish("t");
        assert!(m.check(SimTime(999_000_000)).is_empty());
        assert_eq!(m.watched_count(), 0);
    }

    #[test]
    fn stalled_deadline_never_undercuts_slow() {
        let mut m = HealthMonitor::new(HealthConfig {
            slow_after: Duration::from_secs(100),
            stalled_after: Duration::from_secs(10), // misconfigured: below slow_after
        });
        m.register("t", SimTime::ZERO);
        assert!(m.check(SimTime(50_000_000)).is_empty(), "below slow_after: still healthy");
        let t = m.check(SimTime(100_000_000));
        assert_eq!(t[0].to, HealthState::Stalled, "both deadlines hit at the clamped point");
    }

    #[test]
    fn transitions_come_in_transaction_order() {
        let mut m = monitor();
        m.register("b", SimTime::ZERO);
        m.register("a", SimTime::ZERO);
        let t = m.check(SimTime(400_000_000));
        let order: Vec<&str> = t.iter().map(|x| x.txn.as_str()).collect();
        assert_eq!(order, vec!["a", "b"]);
    }
}
