//! Bounded ring buffer backing the flight recorder.
//!
//! The paper's §3.1 demands a DfMS whose state "can be queried at any
//! time"; a *bounded* buffer keeps that query surface cheap on long-run
//! processes (§1 measures flows in days-to-months) by retaining the most
//! recent `capacity` entries and counting, rather than storing, the rest.

/// A fixed-capacity FIFO that overwrites its oldest entry when full.
///
/// Every push is counted in [`RingBuffer::total`]; pushes that evicted an
/// old entry are additionally counted in [`RingBuffer::dropped`], so an
/// operator can always tell whether a recording window was clipped.
///
/// ```
/// use dgf_obs::RingBuffer;
///
/// let mut ring = RingBuffer::new(2);
/// ring.push('a');
/// ring.push('b');
/// ring.push('c'); // evicts 'a'
/// assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec!['b', 'c']);
/// assert_eq!(ring.total(), 3);
/// assert_eq!(ring.dropped(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    slots: Vec<T>,
    /// Index of the oldest element (only meaningful once full).
    head: usize,
    capacity: usize,
    total: u64,
    dropped: u64,
}

impl<T> RingBuffer<T> {
    /// Creates an empty buffer holding at most `capacity` entries.
    ///
    /// A zero capacity is rounded up to one so `push` never has to
    /// special-case an unstorable entry.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBuffer { slots: Vec::with_capacity(capacity), head: 0, capacity, total: 0, dropped: 0 }
    }

    /// Appends `value`, evicting the oldest entry if the buffer is full.
    pub fn push(&mut self, value: T) {
        self.total += 1;
        if self.slots.len() < self.capacity {
            self.slots.push(value);
        } else {
            self.slots[self.head] = value;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of entries currently retained.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no entry has ever been pushed (or all were cleared).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The fixed capacity this buffer was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Count of all entries ever pushed, retained or not.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of entries evicted to make room for newer ones.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates retained entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (wrapped, straight) = self.slots.split_at(self.head);
        straight.iter().chain(wrapped.iter())
    }

    /// Drops all retained entries; `total`/`dropped` keep their history.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps_in_order() {
        let mut ring = RingBuffer::new(3);
        for i in 0..3 {
            ring.push(i);
        }
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(ring.dropped(), 0);

        for i in 3..8 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![5, 6, 7]);
        assert_eq!(ring.total(), 8);
        assert_eq!(ring.dropped(), 5);
    }

    #[test]
    fn wrap_point_moves_one_slot_per_push() {
        let mut ring = RingBuffer::new(4);
        for i in 0..6 {
            ring.push(i);
        }
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
        ring.push(6);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![3, 4, 5, 6]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut ring = RingBuffer::new(0);
        ring.push("x");
        ring.push("y");
        assert_eq!(ring.capacity(), 1);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec!["y"]);
    }

    #[test]
    fn clear_keeps_lifetime_counters() {
        let mut ring = RingBuffer::new(2);
        ring.push(1);
        ring.push(2);
        ring.push(3);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.total(), 3);
        assert_eq!(ring.dropped(), 1);
        ring.push(4);
        assert_eq!(ring.iter().copied().collect::<Vec<_>>(), vec![4]);
    }
}
