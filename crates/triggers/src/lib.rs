//! # dgf-triggers — datagrid triggers (paper §2.2)
//!
//! "A datagrid trigger is a mapping from any event in the logical data
//! storage namespace to a process initiated in the datagrid in response
//! to such an event." Triggers are Event–Condition–Action rules:
//!
//! * **Event** — a [`dgf_dgms::NamespaceEvent`] (insert/update/delete in
//!   the namespace), optionally filtered by kind and path scope; BEFORE
//!   triggers fire on the *intent* (the operation about to run), AFTER
//!   triggers on the completed event.
//! * **Condition** — a DGL Tcondition ([`dgf_dgl::Expr`]) evaluated with
//!   the event's fields and the target object's metadata bound as
//!   variables.
//! * **Action** — a DGL [`dgf_dgl::Flow`] submitted back to the DfMS, or
//!   a plain notification.
//!
//! The crate also implements the two §2.2 research hazards:
//! multi-user **ordering policies** ("different results might be produced
//! based on the order in which triggers defined by multiple users are
//! processed for the same event") and **cascade control** for triggers
//! that fire flows that emit events that fire triggers, under
//! non-transactional semantics.

mod engine;
mod trigger;

pub use engine::{EngineStats, OrderingPolicy, TriggerEngine};
pub use trigger::{Firing, Timing, Trigger, TriggerAction};
