//! Trigger definitions and firings.

use dgf_dgl::{Expr, Flow, Scope, Value};
use dgf_dgms::{DataGrid, EventKind, LogicalPath, NamespaceEvent};

/// When a trigger evaluates relative to its event.
///
/// §2.2: "Datagrid triggers could be triggered before or after events
/// complete."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Timing {
    /// On the completed event (the common case).
    #[default]
    After,
    /// On the *intent*: evaluated against the operation about to run,
    /// before any effect is visible. The object's metadata seen by the
    /// condition is the pre-operation state.
    Before,
}

/// What a fired trigger does.
#[derive(Debug, Clone, PartialEq)]
pub enum TriggerAction {
    /// Submit a DGL flow (templates inside it see the event bindings).
    Flow(Flow),
    /// Emit a notification message template.
    Notify(String),
}

/// One registered datagrid trigger.
#[derive(Debug, Clone)]
pub struct Trigger {
    /// Unique trigger name.
    pub name: String,
    /// Registering user (ordering policies may rank by owner).
    pub owner: String,
    /// Priority for the priority ordering policy (higher fires first).
    pub priority: i32,
    /// Before/after timing.
    pub timing: Timing,
    /// Event kinds that can fire this trigger; empty = all kinds.
    pub on_kinds: Vec<EventKind>,
    /// Only events on paths under this scope fire the trigger.
    pub scope: LogicalPath,
    /// The condition, evaluated with event/metadata bindings.
    pub condition: Expr,
    /// The action.
    pub action: TriggerAction,
    /// Disabled triggers never fire but stay registered.
    pub enabled: bool,
}

impl Trigger {
    /// A trigger on all events under `scope` with an always-true
    /// condition.
    pub fn new(name: impl Into<String>, owner: impl Into<String>, scope: LogicalPath, action: TriggerAction) -> Self {
        Trigger {
            name: name.into(),
            owner: owner.into(),
            priority: 0,
            timing: Timing::After,
            on_kinds: Vec::new(),
            scope,
            condition: Expr::always(),
            action,
            enabled: true,
        }
    }

    /// Builder-style event-kind filter.
    #[must_use]
    pub fn on(mut self, kinds: &[EventKind]) -> Self {
        self.on_kinds = kinds.to_vec();
        self
    }

    /// Builder-style condition.
    #[must_use]
    pub fn when(mut self, condition: Expr) -> Self {
        self.condition = condition;
        self
    }

    /// Builder-style priority.
    #[must_use]
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Builder-style BEFORE timing.
    #[must_use]
    pub fn before(mut self) -> Self {
        self.timing = Timing::Before;
        self
    }

    /// Does this trigger match the event structurally (kind + scope)?
    pub fn matches_event(&self, event: &NamespaceEvent) -> bool {
        self.enabled
            && (self.on_kinds.is_empty() || self.on_kinds.contains(&event.kind))
            && event.path.is_under(&self.scope)
    }

    /// Build the variable bindings a condition (and action templates)
    /// see for an event: `event.kind`, `event.path`, `event.principal`,
    /// `event.detail`, `event.seq`, plus one variable per metadata
    /// attribute of the target object/collection if it still exists.
    pub fn bindings(grid: &DataGrid, event: &NamespaceEvent) -> Scope {
        let mut scope = Scope::root();
        scope.declare("event.kind", Value::Str(event.kind.to_string()));
        scope.declare("event.path", Value::Str(event.path.to_string()));
        scope.declare("event.principal", Value::Str(event.principal.clone()));
        scope.declare("event.detail", Value::Str(event.detail.clone()));
        scope.declare("event.seq", Value::Int(event.seq as i64));
        // Metadata of the target (best effort; deletes leave none).
        if let Ok(obj) = grid.stat_object(&event.path) {
            scope.declare("object.size", Value::Int(obj.size as i64));
            scope.declare("object.owner", Value::Str(obj.owner.clone()));
            scope.declare("object.replicas", Value::Int(obj.replicas.len() as i64));
            for triple in &obj.metadata {
                scope.declare(format!("meta.{}", triple.attribute), Value::from_text(&triple.value));
            }
        } else if let Ok(coll) = grid.stat_collection(&event.path) {
            scope.declare("object.owner", Value::Str(coll.owner.clone()));
            for triple in &coll.metadata {
                scope.declare(format!("meta.{}", triple.attribute), Value::from_text(&triple.value));
            }
        }
        scope
    }
}

/// A matched trigger ready for its action to run.
#[derive(Debug, Clone)]
pub struct Firing {
    /// The trigger's name.
    pub trigger: String,
    /// The trigger's owner.
    pub owner: String,
    /// The causing event.
    pub event: NamespaceEvent,
    /// Cascade depth: 0 for events from user actions, +1 per trigger
    /// generation.
    pub depth: u32,
    /// The action to run.
    pub action: TriggerAction,
    /// The bindings captured at match time (interpolate action templates
    /// with these).
    pub bindings: Scope,
    /// The span of the activity whose event matched, when the caller is
    /// tracing — the engine parents the firing's action span under it.
    pub ctx: Option<dgf_obs::SpanContext>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_dgms::{MetaTriple, Operation, Principal, UserRegistry};
    use dgf_simgrid::{GridBuilder, GridPreset, SimTime};

    fn path(s: &str) -> LogicalPath {
        LogicalPath::parse(s).unwrap()
    }

    fn grid() -> DataGrid {
        let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 1 });
        let mut users = UserRegistry::new();
        users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
        users.make_admin("u").unwrap();
        DataGrid::new(topology, users)
    }

    #[test]
    fn structural_matching_respects_kind_scope_and_enabled() {
        let mut g = grid();
        g.execute("u", Operation::CreateCollection { path: path("/a") }, SimTime::ZERO).unwrap();
        g.execute("u", Operation::Ingest { path: path("/a/x"), size: 10, resource: "site0-disk".into() }, SimTime::ZERO)
            .unwrap();
        let ingest_event = g.events().last().unwrap().clone();

        let mut t = Trigger::new("t", "u", path("/a"), TriggerAction::Notify("hit".into()))
            .on(&[EventKind::ObjectIngested]);
        assert!(t.matches_event(&ingest_event));
        t.scope = path("/b");
        assert!(!t.matches_event(&ingest_event), "out of scope");
        t.scope = path("/a");
        t.on_kinds = vec![EventKind::ObjectDeleted];
        assert!(!t.matches_event(&ingest_event), "wrong kind");
        t.on_kinds.clear();
        assert!(t.matches_event(&ingest_event), "empty kinds = all");
        t.enabled = false;
        assert!(!t.matches_event(&ingest_event));
    }

    #[test]
    fn bindings_expose_event_and_metadata() {
        let mut g = grid();
        g.execute("u", Operation::Ingest { path: path("/x"), size: 123, resource: "site0-disk".into() }, SimTime::ZERO)
            .unwrap();
        g.execute(
            "u",
            Operation::SetMetadata { path: path("/x"), triple: MetaTriple::new("document-type", "seismogram") },
            SimTime::ZERO,
        )
        .unwrap();
        let event = g.events().last().unwrap().clone();
        let scope = Trigger::bindings(&g, &event);
        assert_eq!(scope.get("event.kind").unwrap().to_string(), "metadata-set");
        assert_eq!(scope.get("event.path").unwrap().to_string(), "/x");
        assert_eq!(scope.get("object.size"), Some(&Value::Int(123)));
        assert_eq!(scope.get("meta.document-type").unwrap().to_string(), "seismogram");

        // Conditions written against these bindings evaluate.
        let cond = Expr::parse("meta.document-type == 'seismogram' && object.size > 100").unwrap();
        assert!(cond.eval_bool(&scope).unwrap());
    }

    #[test]
    fn builders_compose() {
        let t = Trigger::new("n", "o", path("/"), TriggerAction::Notify("m".into()))
            .on(&[EventKind::ObjectIngested])
            .when(Expr::parse("object.size > 5").unwrap())
            .with_priority(9)
            .before();
        assert_eq!(t.priority, 9);
        assert_eq!(t.timing, Timing::Before);
        assert_eq!(t.on_kinds, vec![EventKind::ObjectIngested]);
    }
}
