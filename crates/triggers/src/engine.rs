//! The trigger engine: registration, ordering, polling, cascade control.

use crate::trigger::{Firing, Timing, Trigger};
use dgf_dgms::{DataGrid, NamespaceEvent, Operation};
use dgf_simgrid::SimTime;

/// How simultaneous matches from different users are ordered — the §2.2
/// open problem made concrete. Under non-transactional semantics the
/// order is observable (one trigger's flow may see another's effects),
/// so the policy is an explicit, benchmarkable choice.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum OrderingPolicy {
    /// First registered fires first (SRB-era behaviour).
    #[default]
    Registration,
    /// Higher [`Trigger::priority`] fires first; ties by registration.
    Priority,
    /// Owners earlier in the list fire first; unlisted owners last;
    /// ties by registration.
    OwnerRank(Vec<String>),
}

/// Counters for observability and the E4 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Events examined.
    pub events_seen: u64,
    /// Trigger matches whose condition evaluated true.
    pub fired: u64,
    /// Matches suppressed by the cascade-depth limit.
    pub suppressed_by_depth: u64,
    /// Conditions that errored (counted, never fatal).
    pub condition_errors: u64,
}

/// The trigger engine. The DfMS owns one and:
///
/// * calls [`TriggerEngine::before_op`] ahead of each DGMS operation it
///   executes (BEFORE triggers),
/// * calls [`TriggerEngine::poll`] after operations complete, passing
///   the cascade depth of whatever produced the new events (0 for user
///   actions).
#[derive(Debug, Default)]
pub struct TriggerEngine {
    triggers: Vec<Trigger>,
    policy: OrderingPolicy,
    max_depth: u32,
    cursor: u64,
    stats: EngineStats,
    obs: Option<dgf_obs::Obs>,
}

impl TriggerEngine {
    /// An engine with registration ordering and a cascade limit of 4.
    pub fn new() -> Self {
        TriggerEngine { max_depth: 4, ..Default::default() }
    }

    /// Builder-style ordering policy.
    #[must_use]
    pub fn with_policy(mut self, policy: OrderingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builder-style cascade-depth limit.
    #[must_use]
    pub fn with_max_depth(mut self, max_depth: u32) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Register a trigger. Returns false (and ignores it) when the name
    /// is already taken.
    pub fn register(&mut self, trigger: Trigger) -> bool {
        if self.triggers.iter().any(|t| t.name == trigger.name) {
            return false;
        }
        self.triggers.push(trigger);
        true
    }

    /// Remove a trigger by name; true if it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        let before = self.triggers.len();
        self.triggers.retain(|t| t.name != name);
        self.triggers.len() != before
    }

    /// Enable/disable a trigger; true if it exists.
    pub fn set_enabled(&mut self, name: &str, enabled: bool) -> bool {
        match self.triggers.iter_mut().find(|t| t.name == name) {
            Some(t) => {
                t.enabled = enabled;
                true
            }
            None => false,
        }
    }

    /// Registered triggers, in registration order.
    pub fn triggers(&self) -> &[Trigger] {
        &self.triggers
    }

    /// Counters so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Attach an observability handle. Every [`EngineStats`] increment is
    /// mirrored into counters under the `triggers` metric scope
    /// (`events.seen`, `fired`, `suppressed.depth`, `condition.errors`).
    pub fn set_obs(&mut self, obs: dgf_obs::Obs) {
        self.obs = Some(obs);
    }

    fn obs_inc(&self, name: &str) {
        if let Some(obs) = &self.obs {
            obs.inc("triggers", name);
        }
    }

    /// The cascade-depth limit.
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// Evaluate AFTER triggers against all events not yet seen.
    ///
    /// `depth` is the cascade depth of the activity that produced these
    /// events; resulting firings carry `depth + 1` and firings that would
    /// exceed the limit are counted and dropped. `ctx`, when given, is
    /// the span of the activity that emitted the events; it is stamped
    /// onto each firing so actions trace back to their cause.
    pub fn poll(&mut self, grid: &DataGrid, depth: u32, ctx: Option<dgf_obs::SpanContext>) -> Vec<Firing> {
        let events: Vec<NamespaceEvent> = grid.events_since(self.cursor).to_vec();
        if let Some(last) = events.last() {
            self.cursor = last.seq + 1;
        }
        let mut firings = Vec::new();
        for event in &events {
            self.stats.events_seen += 1;
            self.obs_inc("events.seen");
            firings.extend(self.match_event(grid, event, depth, Timing::After, ctx));
        }
        firings
    }

    /// Evaluate BEFORE triggers against an operation about to execute.
    ///
    /// The operation is rendered as a *prospective* event (seq = next
    /// sequence number, kind = the event the operation will emit) so the
    /// same condition language applies.
    pub fn before_op(
        &mut self,
        grid: &DataGrid,
        op: &Operation,
        principal: &str,
        now: SimTime,
        depth: u32,
        ctx: Option<dgf_obs::SpanContext>,
    ) -> Vec<Firing> {
        let Some(kind) = prospective_kind(op) else { return Vec::new() };
        let event = NamespaceEvent {
            seq: grid.next_event_seq(),
            kind,
            path: op.path().clone(),
            principal: principal.to_owned(),
            time: now,
            detail: format!("before {}", op.verb()),
        };
        self.match_event(grid, &event, depth, Timing::Before, ctx)
    }

    fn match_event(
        &mut self,
        grid: &DataGrid,
        event: &NamespaceEvent,
        depth: u32,
        timing: Timing,
        ctx: Option<dgf_obs::SpanContext>,
    ) -> Vec<Firing> {
        let mut matched: Vec<(usize, &Trigger)> = self
            .triggers
            .iter()
            .enumerate()
            .filter(|(_, t)| t.timing == timing && t.matches_event(event))
            .collect();
        match &self.policy {
            OrderingPolicy::Registration => {}
            OrderingPolicy::Priority => {
                matched.sort_by_key(|(idx, t)| (std::cmp::Reverse(t.priority), *idx));
            }
            OrderingPolicy::OwnerRank(ranks) => {
                matched.sort_by_key(|(idx, t)| {
                    let rank = ranks.iter().position(|o| o == &t.owner).unwrap_or(usize::MAX);
                    (rank, *idx)
                });
            }
        }
        let mut firings = Vec::new();
        for (_, trigger) in matched {
            let bindings = Trigger::bindings(grid, event);
            match trigger.condition.eval_bool(&bindings) {
                Ok(true) => {
                    if depth + 1 > self.max_depth {
                        self.stats.suppressed_by_depth += 1;
                        self.obs_inc("suppressed.depth");
                        continue;
                    }
                    self.stats.fired += 1;
                    self.obs_inc("fired");
                    firings.push(Firing {
                        trigger: trigger.name.clone(),
                        owner: trigger.owner.clone(),
                        event: event.clone(),
                        depth: depth + 1,
                        action: trigger.action.clone(),
                        bindings,
                        ctx,
                    });
                }
                Ok(false) => {}
                Err(_) => {
                    // A broken condition (e.g. referencing metadata the
                    // object lacks) must not take the engine down; §2.2's
                    // world is multi-user and non-transactional.
                    self.stats.condition_errors += 1;
                    self.obs_inc("condition.errors");
                }
            }
        }
        firings
    }
}

/// The event kind an operation will produce when it completes (checksum
/// outcomes are data-dependent, so BEFORE triggers see `ChecksumVerified`
/// as the nominal kind).
fn prospective_kind(op: &Operation) -> Option<dgf_dgms::EventKind> {
    use dgf_dgms::EventKind as K;
    Some(match op {
        Operation::CreateCollection { .. } => K::CollectionCreated,
        Operation::RemoveCollection { .. } => K::CollectionRemoved,
        Operation::Ingest { .. } => K::ObjectIngested,
        Operation::Replicate { .. } => K::ObjectReplicated,
        Operation::Migrate { .. } => K::ObjectMigrated,
        Operation::Trim { .. } => K::ReplicaTrimmed,
        Operation::Delete { .. } => K::ObjectDeleted,
        Operation::Rename { .. } => K::ObjectRenamed,
        Operation::Checksum { .. } => K::ChecksumVerified,
        Operation::SetMetadata { .. } => K::MetadataSet,
        Operation::SetPermission { .. } => K::PermissionSet,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trigger::TriggerAction;
    use dgf_dgl::Expr;
    use dgf_dgms::{EventKind, LogicalPath, MetaTriple, Principal, UserRegistry};
    use dgf_simgrid::{GridBuilder, GridPreset};

    fn path(s: &str) -> LogicalPath {
        LogicalPath::parse(s).unwrap()
    }

    fn grid() -> DataGrid {
        let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 1 });
        let mut users = UserRegistry::new();
        users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
        users.make_admin("u").unwrap();
        DataGrid::new(topology, users)
    }

    fn notify(name: &str, owner: &str) -> Trigger {
        Trigger::new(name, owner, path("/"), TriggerAction::Notify(format!("{name} fired")))
    }

    fn ingest(g: &mut DataGrid, p: &str, size: u64) {
        g.execute("u", Operation::Ingest { path: path(p), size, resource: "site0-disk".into() }, SimTime::ZERO)
            .unwrap();
    }

    #[test]
    fn poll_fires_matching_triggers_once() {
        let mut g = grid();
        let mut engine = TriggerEngine::new();
        assert!(engine.register(notify("t1", "u").on(&[EventKind::ObjectIngested])));
        ingest(&mut g, "/a", 10);
        let firings = engine.poll(&g, 0, None);
        assert_eq!(firings.len(), 1);
        assert_eq!(firings[0].trigger, "t1");
        assert_eq!(firings[0].depth, 1);
        // Cursor advanced: polling again yields nothing.
        assert!(engine.poll(&g, 0, None).is_empty());
        assert_eq!(engine.stats().fired, 1);
    }

    #[test]
    fn conditions_gate_firing() {
        let mut g = grid();
        let mut engine = TriggerEngine::new();
        engine.register(
            notify("big-files", "u")
                .on(&[EventKind::ObjectIngested])
                .when(Expr::parse("object.size > 1000").unwrap()),
        );
        ingest(&mut g, "/small", 10);
        assert!(engine.poll(&g, 0, None).is_empty());
        ingest(&mut g, "/big", 10_000);
        assert_eq!(engine.poll(&g, 0, None).len(), 1);
    }

    #[test]
    fn metadata_conditions_enable_the_auto_replication_use_case() {
        // §2.2 use case: "automating replication of certain data based on
        // their meta-data".
        let mut g = grid();
        let mut engine = TriggerEngine::new();
        engine.register(
            notify("replicate-raw", "u")
                .on(&[EventKind::MetadataSet])
                .when(Expr::parse("meta.document-type == 'raw'").unwrap()),
        );
        ingest(&mut g, "/x", 10);
        g.execute("u", Operation::SetMetadata { path: path("/x"), triple: MetaTriple::new("document-type", "raw") }, SimTime::ZERO)
            .unwrap();
        let firings = engine.poll(&g, 0, None);
        assert_eq!(firings.len(), 1, "fires on the metadata event, not the ingest");
    }

    #[test]
    fn duplicate_names_rejected_and_removal_works() {
        let mut engine = TriggerEngine::new();
        assert!(engine.register(notify("t", "u")));
        assert!(!engine.register(notify("t", "v")));
        assert_eq!(engine.triggers().len(), 1);
        assert!(engine.remove("t"));
        assert!(!engine.remove("t"));
        assert!(!engine.set_enabled("t", false));
    }

    #[test]
    fn ordering_policies_change_observable_order() {
        let mut g = grid();
        let make_engine = |policy| {
            let mut e = TriggerEngine::new().with_policy(policy);
            e.register(notify("alice-t", "alice"));
            e.register(notify("bob-t", "bob").with_priority(10));
            e.register(notify("carol-t", "carol").with_priority(5));
            e
        };
        ingest(&mut g, "/x", 1);

        let mut reg = make_engine(OrderingPolicy::Registration);
        let order: Vec<_> = reg.poll(&g, 0, None).into_iter().map(|f| f.trigger).collect();
        assert_eq!(order, ["alice-t", "bob-t", "carol-t"]);

        let mut pri = make_engine(OrderingPolicy::Priority);
        let order: Vec<_> = pri.poll(&g, 0, None).into_iter().map(|f| f.trigger).collect();
        assert_eq!(order, ["bob-t", "carol-t", "alice-t"]);

        let mut rank = make_engine(OrderingPolicy::OwnerRank(vec!["carol".into(), "alice".into()]));
        let order: Vec<_> = rank.poll(&g, 0, None).into_iter().map(|f| f.trigger).collect();
        assert_eq!(order, ["carol-t", "alice-t", "bob-t"], "unlisted owners last");
    }

    #[test]
    fn cascade_depth_limits_firing_chains() {
        let mut g = grid();
        let mut engine = TriggerEngine::new().with_max_depth(2);
        engine.register(notify("t", "u").on(&[EventKind::ObjectIngested]));
        ingest(&mut g, "/a", 1);
        let f1 = engine.poll(&g, 0, None);
        assert_eq!(f1[0].depth, 1);
        // Pretend the firing's flow ingested another object.
        ingest(&mut g, "/b", 1);
        let f2 = engine.poll(&g, f1[0].depth, None);
        assert_eq!(f2[0].depth, 2);
        // Next generation exceeds the limit and is suppressed.
        ingest(&mut g, "/c", 1);
        let f3 = engine.poll(&g, f2[0].depth, None);
        assert!(f3.is_empty());
        assert_eq!(engine.stats().suppressed_by_depth, 1);
    }

    #[test]
    fn before_triggers_fire_on_intent() {
        let mut g = grid();
        let mut engine = TriggerEngine::new();
        engine.register(
            notify("pre-delete-guard", "u")
                .on(&[EventKind::ObjectDeleted])
                .before(),
        );
        ingest(&mut g, "/x", 1);
        assert!(engine.poll(&g, 0, None).is_empty(), "AFTER poll ignores BEFORE triggers");
        let op = Operation::Delete { path: path("/x") };
        let firings = engine.before_op(&g, &op, "u", SimTime::ZERO, 0, None);
        assert_eq!(firings.len(), 1);
        // The object still exists at BEFORE time.
        assert!(g.exists(&path("/x")));
        // And the binding saw pre-operation state.
        assert_eq!(firings[0].bindings.get("object.size").unwrap().to_string(), "1");
    }

    #[test]
    fn broken_conditions_are_counted_not_fatal() {
        let mut g = grid();
        let mut engine = TriggerEngine::new();
        engine.register(
            notify("broken", "u").when(Expr::parse("meta.missing == 'x'").unwrap()),
        );
        engine.register(notify("healthy", "u"));
        ingest(&mut g, "/x", 1);
        let firings = engine.poll(&g, 0, None);
        assert_eq!(firings.len(), 1);
        assert_eq!(firings[0].trigger, "healthy");
        assert_eq!(engine.stats().condition_errors, 1);
    }
}
