//! Property tests: any tree the API can build survives a serialize/parse
//! round trip, in both compact and pretty form.

use dgf_xml::{parse, Element, WriteOptions};
use proptest::prelude::*;

/// Strategy for XML names (a safe subset; DGL names are all like this).
fn name_strategy() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9_.-]{0,12}"
}

/// Strategy for arbitrary text content, including characters that need
/// escaping and non-ASCII.
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~äöü❄&<>'\"]{1,24}").unwrap()
}

fn leaf_strategy() -> impl Strategy<Value = Element> {
    (
        name_strategy(),
        proptest::collection::vec((name_strategy(), text_strategy()), 0..4),
        proptest::option::of(text_strategy()),
    )
        .prop_map(|(name, attrs, text)| {
            let mut e = Element::new(name);
            for (an, av) in attrs {
                // set_attr dedupes names, keeping the tree well-formed.
                e.set_attr(an, av);
            }
            if let Some(t) = text {
                // The parser drops whitespace-only text and the pretty
                // writer trims mixed-content text, so push pre-trimmed
                // text: that is what any round trip preserves exactly.
                let t = t.trim();
                if !t.is_empty() {
                    e.push_text(t);
                }
            }
            e
        })
}

fn element_strategy() -> impl Strategy<Value = Element> {
    leaf_strategy().prop_recursive(4, 64, 5, |inner| {
        (leaf_strategy(), proptest::collection::vec(inner, 0..5)).prop_map(|(mut base, children)| {
            for c in children {
                base.push_element(c);
            }
            base
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compact_round_trip(e in element_strategy()) {
        let text = e.to_xml();
        let parsed = parse(&text).expect("compact output must reparse");
        prop_assert_eq!(parsed, e);
    }

    #[test]
    fn pretty_round_trip(e in element_strategy()) {
        let text = dgf_xml::write_pretty(&e, &WriteOptions::default());
        let parsed = parse(&text).expect("pretty output must reparse");
        prop_assert_eq!(parsed, e);
    }

    #[test]
    fn escape_unescape_identity(s in text_strategy()) {
        prop_assert_eq!(dgf_xml::unescape(&dgf_xml::escape_text(&s)).unwrap(), s.clone());
        prop_assert_eq!(dgf_xml::unescape(&dgf_xml::escape_attr(&s)).unwrap(), s);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,200}") {
        let _ = parse(&s);
    }

    #[test]
    fn subtree_size_ge_depth(e in element_strategy()) {
        prop_assert!(e.subtree_size() >= e.depth());
    }
}
