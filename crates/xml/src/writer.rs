//! Serialization of the document tree back to XML text.

use crate::escape::{escape_attr, escape_text};
use crate::tree::{Element, Node};
use std::fmt::Write as _;

/// Options controlling pretty-printed output.
#[derive(Debug, Clone)]
pub struct WriteOptions {
    /// Indentation unit (default: two spaces).
    pub indent: String,
    /// Whether to emit `<?xml version="1.0" encoding="UTF-8"?>` first.
    pub declaration: bool,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions { indent: "  ".to_owned(), declaration: true }
    }
}

/// Serialize an element with no inserted whitespace.
///
/// `parse(write_compact(e))` reproduces `e` exactly for any tree that does
/// not contain whitespace-only text nodes (the parser drops those).
pub fn write_compact(root: &Element) -> String {
    let mut out = String::with_capacity(128);
    write_element_compact(root, &mut out);
    out
}

fn write_element_compact(e: &Element, out: &mut String) {
    out.push('<');
    out.push_str(&e.name);
    for (name, value) in &e.attributes {
        let _ = write!(out, " {}=\"{}\"", name, escape_attr(value));
    }
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for child in &e.children {
        match child {
            Node::Element(c) => write_element_compact(c, out),
            Node::Text(t) => out.push_str(&escape_text(t)),
            Node::Comment(c) => {
                let _ = write!(out, "<!--{c}-->");
            }
        }
    }
    let _ = write!(out, "</{}>", e.name);
}

/// Serialize with indentation.
///
/// Elements whose content is pure text are kept on one line so scalar DGL
/// values (`<tcondition>i &lt; 10</tcondition>`) stay readable; elements
/// with element children get one line per child.
pub fn write_pretty(root: &Element, options: &WriteOptions) -> String {
    let mut out = String::with_capacity(256);
    if options.declaration {
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    }
    write_element_pretty(root, options, 0, &mut out);
    out.push('\n');
    out
}

fn write_element_pretty(e: &Element, options: &WriteOptions, level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str(&options.indent);
    }
    out.push('<');
    out.push_str(&e.name);
    for (name, value) in &e.attributes {
        let _ = write!(out, " {}=\"{}\"", name, escape_attr(value));
    }
    if e.children.is_empty() {
        out.push_str("/>");
        return;
    }
    // Any element with text content (scalar or mixed) is emitted inline:
    // inserting indentation inside it would change the character data.
    let has_text = e.children.iter().any(|c| matches!(c, Node::Text(_)));
    if has_text {
        out.push('>');
        for child in &e.children {
            match child {
                Node::Text(t) => out.push_str(&escape_text(t)),
                Node::Element(c) => write_element_compact(c, out),
                Node::Comment(c) => {
                    let _ = write!(out, "<!--{c}-->");
                }
            }
        }
        let _ = write!(out, "</{}>", e.name);
        return;
    }
    out.push('>');
    for child in &e.children {
        out.push('\n');
        match child {
            Node::Element(c) => write_element_pretty(c, options, level + 1, out),
            Node::Text(_) => unreachable!("handled by the inline branch above"),
            Node::Comment(c) => {
                for _ in 0..=level {
                    out.push_str(&options.indent);
                }
                let _ = write!(out, "<!--{c}-->");
            }
        }
    }
    out.push('\n');
    for _ in 0..level {
        out.push_str(&options.indent);
    }
    let _ = write!(out, "</{}>", e.name);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn sample() -> Element {
        Element::new("flow")
            .with_attr("name", "f&1")
            .with_child(
                Element::new("step")
                    .with_attr("name", "a")
                    .with_child(Element::new("operation").with_text("md5 < x")),
            )
            .with_child(Element::new("step").with_attr("name", "b"))
    }

    #[test]
    fn compact_round_trips() {
        let e = sample();
        assert_eq!(parse(&write_compact(&e)).unwrap(), e);
    }

    #[test]
    fn pretty_round_trips() {
        let e = sample();
        let text = write_pretty(&e, &WriteOptions::default());
        assert!(text.starts_with("<?xml"));
        assert_eq!(parse(&text).unwrap(), e);
    }

    #[test]
    fn pretty_keeps_scalar_elements_on_one_line() {
        let e = Element::new("v").with_child(Element::new("tcondition").with_text("i < 10"));
        let text = write_pretty(&e, &WriteOptions::default());
        assert!(text.contains("<tcondition>i &lt; 10</tcondition>"), "{text}");
    }

    #[test]
    fn empty_element_is_self_closing() {
        assert_eq!(write_compact(&Element::new("x")), "<x/>");
    }

    #[test]
    fn attributes_are_escaped() {
        let e = Element::new("x").with_attr("a", "\"quoted\" & <angled>");
        let text = write_compact(&e);
        assert!(text.contains("&quot;quoted&quot; &amp; &lt;angled&gt;"));
        assert_eq!(parse(&text).unwrap(), e);
    }

    #[test]
    fn comments_round_trip() {
        let mut e = Element::new("x");
        e.children.push(Node::Comment(" provenance note ".into()));
        e.push_element(Element::new("y"));
        assert_eq!(parse(&write_compact(&e)).unwrap(), e);
        assert_eq!(parse(&write_pretty(&e, &WriteOptions::default())).unwrap(), e);
    }

    #[test]
    fn custom_indent_and_no_declaration() {
        let options = WriteOptions { indent: "\t".into(), declaration: false };
        let text = write_pretty(&sample(), &options);
        assert!(!text.starts_with("<?xml"));
        assert!(text.contains("\n\t<step"));
    }
}
