//! The XML document tree: [`Element`] and [`Node`].

use crate::writer::{write_compact, write_pretty, WriteOptions};

/// A child of an [`Element`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// Character data (already entity-expanded).
    Text(String),
    /// A comment (`<!-- ... -->`). Preserved so DGL documents keep their
    /// human annotations across round-trips.
    Comment(String),
}

impl Node {
    /// Returns the element inside this node, if it is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            _ => None,
        }
    }

    /// Returns the text inside this node, if it is a text node.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Node::Text(t) => Some(t),
            _ => None,
        }
    }
}

/// An XML element: a name, ordered attributes, and ordered children.
///
/// Attribute order is preserved (DGL documents are diffed by humans), and
/// lookups are linear — elements in DGL have a handful of attributes, so a
/// map would cost more than it saves.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name (may contain a namespace prefix, kept verbatim).
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Children in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// Create an empty element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        Element { name: name.into(), attributes: Vec::new(), children: Vec::new() }
    }

    /// Builder-style: add an attribute.
    #[must_use]
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(name, value);
        self
    }

    /// Builder-style: add a child element.
    #[must_use]
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder-style: add a text child.
    #[must_use]
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Set (or replace) an attribute value.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attributes.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.attributes.push((name, value));
        }
    }

    /// Look up an attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Append a child element.
    pub fn push_element(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    /// Append a text child.
    pub fn push_text(&mut self, text: impl Into<String>) {
        self.children.push(Node::Text(text.into()));
    }

    /// Iterate over child elements only (skipping text and comments).
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// The first child element with the given tag name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// All child elements with the given tag name, in document order.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// Concatenated text content of this element's *direct* text children,
    /// with surrounding whitespace trimmed.
    ///
    /// This matches how DGL reads scalar values (`<tcondition>x == 1</tcondition>`).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for child in &self.children {
            if let Node::Text(t) = child {
                out.push_str(t);
            }
        }
        out.trim().to_owned()
    }

    /// True if the element has no element or non-whitespace text children.
    pub fn is_empty(&self) -> bool {
        self.children.iter().all(|c| match c {
            Node::Element(_) => false,
            Node::Text(t) => t.trim().is_empty(),
            Node::Comment(_) => true,
        })
    }

    /// Total number of elements in this subtree, including `self`.
    pub fn subtree_size(&self) -> usize {
        1 + self.child_elements().map(Element::subtree_size).sum::<usize>()
    }

    /// Maximum element nesting depth of this subtree (a lone element is 1).
    pub fn depth(&self) -> usize {
        1 + self.child_elements().map(Element::depth).max().unwrap_or(0)
    }

    /// Serialize compactly (no added whitespace).
    pub fn to_xml(&self) -> String {
        write_compact(self)
    }

    /// Serialize with two-space indentation and an XML declaration.
    pub fn to_xml_pretty(&self) -> String {
        write_pretty(self, &WriteOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("flow")
            .with_attr("name", "f")
            .with_child(Element::new("step").with_attr("name", "a"))
            .with_child(Element::new("step").with_attr("name", "b"))
            .with_text("  tail  ")
    }

    #[test]
    fn attribute_set_replaces_in_place() {
        let mut e = Element::new("x").with_attr("a", "1").with_attr("b", "2");
        e.set_attr("a", "3");
        assert_eq!(e.attr("a"), Some("3"));
        assert_eq!(e.attributes.len(), 2);
        assert_eq!(e.attributes[0].0, "a", "order preserved");
    }

    #[test]
    fn child_navigation() {
        let e = sample();
        assert_eq!(e.child_elements().count(), 2);
        assert_eq!(e.child("step").unwrap().attr("name"), Some("a"));
        assert_eq!(e.children_named("step").count(), 2);
        assert!(e.child("missing").is_none());
    }

    #[test]
    fn text_trims_and_concatenates() {
        let e = sample();
        assert_eq!(e.text(), "tail");
        let two = Element::new("t").with_text("a ").with_text(" b");
        assert_eq!(two.text(), "a  b");
    }

    #[test]
    fn emptiness_ignores_whitespace_and_comments() {
        let mut e = Element::new("e");
        e.push_text("   \n ");
        e.children.push(Node::Comment("note".into()));
        assert!(e.is_empty());
        e.push_element(Element::new("x"));
        assert!(!e.is_empty());
    }

    #[test]
    fn size_and_depth() {
        let e = sample();
        assert_eq!(e.subtree_size(), 3);
        assert_eq!(e.depth(), 2);
        assert_eq!(Element::new("leaf").depth(), 1);
    }
}
