//! Error and source-position types for the XML parser.

use std::fmt;

/// A 1-based line/column position inside the parsed source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes within the line; DGL is ASCII-heavy
    /// enough that byte columns are what editors expect).
    pub column: u32,
}

impl Position {
    /// The start of the document.
    pub const START: Position = Position { line: 1, column: 1 };
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Everything that can go wrong while parsing an XML document.
///
/// Every variant carries the [`Position`] at which the problem was
/// detected so DGL authors get actionable diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// The input ended in the middle of a construct.
    UnexpectedEof { pos: Position, context: &'static str },
    /// A character that cannot start or continue the current construct.
    UnexpectedChar { pos: Position, found: char, expected: &'static str },
    /// `</b>` closed an element opened as `<a>`.
    MismatchedTag { pos: Position, open: String, close: String },
    /// The same attribute appeared twice on one element.
    DuplicateAttribute { pos: Position, name: String },
    /// An entity reference we do not recognise (`&foo;`).
    UnknownEntity { pos: Position, entity: String },
    /// A numeric character reference that is not a valid scalar value.
    InvalidCharRef { pos: Position, raw: String },
    /// Content found after the document element closed.
    TrailingContent { pos: Position },
    /// The document contained no root element at all.
    NoRootElement,
    /// A construct we intentionally refuse (DOCTYPE, PIs, ...).
    Unsupported { pos: Position, what: &'static str },
    /// An element or attribute name that is not a valid XML name.
    InvalidName { pos: Position, name: String },
}

impl XmlError {
    /// The position at which the error was detected, when one exists.
    pub fn position(&self) -> Option<Position> {
        match self {
            XmlError::UnexpectedEof { pos, .. }
            | XmlError::UnexpectedChar { pos, .. }
            | XmlError::MismatchedTag { pos, .. }
            | XmlError::DuplicateAttribute { pos, .. }
            | XmlError::UnknownEntity { pos, .. }
            | XmlError::InvalidCharRef { pos, .. }
            | XmlError::TrailingContent { pos }
            | XmlError::Unsupported { pos, .. }
            | XmlError::InvalidName { pos, .. } => Some(*pos),
            XmlError::NoRootElement => None,
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof { pos, context } => {
                write!(f, "{pos}: unexpected end of input while parsing {context}")
            }
            XmlError::UnexpectedChar { pos, found, expected } => {
                write!(f, "{pos}: unexpected character {found:?}, expected {expected}")
            }
            XmlError::MismatchedTag { pos, open, close } => {
                write!(f, "{pos}: closing tag </{close}> does not match <{open}>")
            }
            XmlError::DuplicateAttribute { pos, name } => {
                write!(f, "{pos}: duplicate attribute {name:?}")
            }
            XmlError::UnknownEntity { pos, entity } => {
                write!(f, "{pos}: unknown entity reference &{entity};")
            }
            XmlError::InvalidCharRef { pos, raw } => {
                write!(f, "{pos}: invalid character reference &#{raw};")
            }
            XmlError::TrailingContent { pos } => {
                write!(f, "{pos}: content after the document element")
            }
            XmlError::NoRootElement => write!(f, "document contains no root element"),
            XmlError::Unsupported { pos, what } => {
                write!(f, "{pos}: unsupported XML construct: {what}")
            }
            XmlError::InvalidName { pos, name } => {
                write!(f, "{pos}: invalid XML name {name:?}")
            }
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_displays_as_line_colon_column() {
        let p = Position { line: 3, column: 14 };
        assert_eq!(p.to_string(), "3:14");
    }

    #[test]
    fn errors_carry_positions() {
        let e = XmlError::TrailingContent { pos: Position { line: 2, column: 5 } };
        assert_eq!(e.position(), Some(Position { line: 2, column: 5 }));
        assert_eq!(XmlError::NoRootElement.position(), None);
    }

    #[test]
    fn display_is_human_readable() {
        let e = XmlError::MismatchedTag {
            pos: Position::START,
            open: "flow".into(),
            close: "step".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("</step>"), "{msg}");
        assert!(msg.contains("<flow>"), "{msg}");
    }
}
