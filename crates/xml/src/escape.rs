//! Escaping and entity expansion for XML character data.

use crate::{Position, XmlError};

/// Escape a string for use as XML text content.
///
/// Escapes `&`, `<` and `>` (the latter for `]]>` safety and symmetry).
pub fn escape_text(s: &str) -> String {
    escape(s, false)
}

/// Escape a string for use inside a double-quoted attribute value.
pub fn escape_attr(s: &str) -> String {
    escape(s, true)
}

fn escape(s: &str, attr: bool) -> String {
    // Fast path: nothing to escape (the common case for DGL names/ids).
    if !s.bytes().any(|b| matches!(b, b'&' | b'<' | b'>' | b'"' | b'\'')) {
        return s.to_owned();
    }
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' if attr => out.push_str("&quot;"),
            '\'' if attr => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

/// Expand the five predefined entities and numeric character references.
///
/// `pos` is the position reported on error (the caller tracks precise
/// per-entity positions during parsing; this standalone helper reports the
/// start of the string).
pub fn unescape(s: &str) -> Result<String, XmlError> {
    unescape_at(s, Position::START)
}

pub(crate) fn unescape_at(s: &str, pos: Position) -> Result<String, XmlError> {
    if !s.contains('&') {
        return Ok(s.to_owned());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(idx) = rest.find('&') {
        out.push_str(&rest[..idx]);
        let after = &rest[idx + 1..];
        let semi = after.find(';').ok_or(XmlError::UnexpectedEof {
            pos,
            context: "entity reference",
        })?;
        let entity = &after[..semi];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with('#') => {
                let raw = &entity[1..];
                let value = if let Some(hex) = raw.strip_prefix('x').or_else(|| raw.strip_prefix('X')) {
                    u32::from_str_radix(hex, 16)
                } else {
                    raw.parse::<u32>()
                };
                let c = value
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| XmlError::InvalidCharRef { pos, raw: raw.to_owned() })?;
                out.push(c);
            }
            _ => {
                return Err(XmlError::UnknownEntity { pos, entity: entity.to_owned() });
            }
        }
        rest = &after[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping_round_trips() {
        let raw = r#"a < b && c > "d" 'e'"#;
        let esc = escape_text(raw);
        assert!(!esc.contains('<'));
        assert_eq!(unescape(&esc).unwrap(), raw);
    }

    #[test]
    fn attr_escaping_handles_quotes() {
        let esc = escape_attr(r#"say "hi" & 'bye'"#);
        assert!(esc.contains("&quot;"));
        assert!(esc.contains("&apos;"));
        assert_eq!(unescape(&esc).unwrap(), r#"say "hi" & 'bye'"#);
    }

    #[test]
    fn fast_path_allocates_copy_only() {
        assert_eq!(escape_text("plain"), "plain");
        assert_eq!(unescape("plain").unwrap(), "plain");
    }

    #[test]
    fn numeric_references_decimal_and_hex() {
        assert_eq!(unescape("&#65;&#x42;&#x63;").unwrap(), "ABc");
        assert_eq!(unescape("snow&#x2603;man").unwrap(), "snow\u{2603}man");
    }

    #[test]
    fn invalid_char_ref_rejected() {
        assert!(matches!(unescape("&#x110000;"), Err(XmlError::InvalidCharRef { .. })));
        assert!(matches!(unescape("&#zz;"), Err(XmlError::InvalidCharRef { .. })));
    }

    #[test]
    fn unknown_entity_rejected() {
        assert!(matches!(unescape("&nbsp;"), Err(XmlError::UnknownEntity { .. })));
    }

    #[test]
    fn unterminated_entity_rejected() {
        assert!(matches!(unescape("x &amp y"), Err(XmlError::UnexpectedEof { .. })));
    }
}
