//! # dgf-xml — a minimal, dependency-free XML 1.0 subset
//!
//! The Data Grid Language (DGL) of the Datagridflows system is an
//! XML-Schema-described language (Jagatheesan et al., VLDB DMG 2005,
//! Appendix A). This crate provides the small, strict XML layer that the
//! `dgf-dgl` crate parses and emits: a tokenizer, a document tree, an
//! escaping module and a writer with both compact and pretty output.
//!
//! Supported subset (everything a DGL document uses):
//! * the XML declaration (`<?xml version="1.0" ... ?>`), accepted and ignored
//! * elements with attributes (single- or double-quoted)
//! * character data, including the five predefined entities and numeric
//!   character references (`&#38;`, `&#x26;`)
//! * comments and CDATA sections
//! * well-formedness checks: tag balance, attribute uniqueness, single root
//!
//! Deliberately unsupported (rejected with a clear error, never silently
//! mis-parsed): DOCTYPE/DTDs, processing instructions other than the XML
//! declaration, and external entities. DGL never uses them, and rejecting
//! them removes the classic XML attack surface.
//!
//! ```
//! use dgf_xml::{parse, Element};
//!
//! let doc = parse("<flow name='f1'><step/><step/></flow>").unwrap();
//! assert_eq!(doc.name, "flow");
//! assert_eq!(doc.attr("name"), Some("f1"));
//! assert_eq!(doc.child_elements().count(), 2);
//! let round = dgf_xml::parse(&doc.to_xml_pretty()).unwrap();
//! assert_eq!(doc, round);
//! ```

mod error;
mod escape;
mod parser;
mod tree;
mod writer;

pub use error::{Position, XmlError};
pub use escape::{escape_attr, escape_text, unescape};
pub use parser::{parse, parse_all};
pub use tree::{Element, Node};
pub use writer::{write_compact, write_pretty, WriteOptions};
