//! A recursive-descent parser for the XML subset described in the crate docs.

use crate::error::{Position, XmlError};
use crate::escape::unescape_at;
use crate::tree::{Element, Node};

/// Maximum element nesting depth. The parser is recursive-descent; a
/// hostile document with unbounded nesting must not blow the stack —
/// even a 2 MB test-thread stack only fits a few hundred debug frames.
/// Real DGL documents nest a handful of levels.
pub const MAX_DEPTH: usize = 200;

/// Parse a complete XML document into its root element.
///
/// Leading/trailing whitespace, comments, and one XML declaration are
/// allowed around the root; anything else is an error.
pub fn parse(input: &str) -> Result<Element, XmlError> {
    let mut p = Parser::new(input);
    p.skip_prolog()?;
    let root = match p.peek() {
        Some('<') => p.parse_element()?,
        Some(c) => {
            return Err(XmlError::UnexpectedChar { pos: p.pos(), found: c, expected: "'<' starting the root element" })
        }
        None => return Err(XmlError::NoRootElement),
    };
    p.skip_misc()?;
    if let Some(c) = p.peek() {
        let _ = c;
        return Err(XmlError::TrailingContent { pos: p.pos() });
    }
    Ok(root)
}

/// Parse a sequence of sibling root elements (used by test corpora that
/// concatenate several DGL documents in one file).
pub fn parse_all(input: &str) -> Result<Vec<Element>, XmlError> {
    let mut p = Parser::new(input);
    p.skip_prolog()?;
    let mut out = Vec::new();
    loop {
        match p.peek() {
            Some('<') => out.push(p.parse_element()?),
            Some(c) => {
                return Err(XmlError::UnexpectedChar { pos: p.pos(), found: c, expected: "'<' or end of input" })
            }
            None => break,
        }
        p.skip_misc()?;
    }
    if out.is_empty() {
        return Err(XmlError::NoRootElement);
    }
    Ok(out)
}

struct Parser<'a> {
    input: &'a str,
    offset: usize,
    line: u32,
    col: u32,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, offset: 0, line: 1, col: 1, depth: 0 }
    }

    fn pos(&self) -> Position {
        Position { line: self.line, column: self.col }
    }

    fn peek(&self) -> Option<char> {
        self.input[self.offset..].chars().next()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.offset..].starts_with(s)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.offset += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn bump_str(&mut self, s: &str) {
        debug_assert!(self.starts_with(s));
        for _ in s.chars() {
            self.bump();
        }
    }

    fn expect(&mut self, c: char, expected: &'static str) -> Result<(), XmlError> {
        match self.peek() {
            Some(found) if found == c => {
                self.bump();
                Ok(())
            }
            Some(found) => Err(XmlError::UnexpectedChar { pos: self.pos(), found, expected }),
            None => Err(XmlError::UnexpectedEof { pos: self.pos(), context: expected }),
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.bump();
        }
    }

    /// Skip whitespace and comments between top-level constructs.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<!--") {
                self.parse_comment()?;
            } else {
                return Ok(());
            }
        }
    }

    /// Skip the XML declaration (if present), whitespace, and comments.
    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        self.skip_whitespace();
        if self.starts_with("<?xml") {
            // Consume up to the closing "?>".
            let pos = self.pos();
            self.bump_str("<?xml");
            loop {
                if self.starts_with("?>") {
                    self.bump_str("?>");
                    break;
                }
                if self.bump().is_none() {
                    return Err(XmlError::UnexpectedEof { pos, context: "XML declaration" });
                }
            }
        }
        self.skip_misc()?;
        if self.starts_with("<!DOCTYPE") {
            return Err(XmlError::Unsupported { pos: self.pos(), what: "DOCTYPE declaration" });
        }
        if self.starts_with("<?") {
            return Err(XmlError::Unsupported { pos: self.pos(), what: "processing instruction" });
        }
        Ok(())
    }

    fn is_name_start(c: char) -> bool {
        c.is_alphabetic() || c == '_' || c == ':'
    }

    fn is_name_char(c: char) -> bool {
        Self::is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.offset;
        match self.peek() {
            Some(c) if Self::is_name_start(c) => {
                self.bump();
            }
            Some(c) => {
                return Err(XmlError::UnexpectedChar { pos: self.pos(), found: c, expected: "an XML name" })
            }
            None => return Err(XmlError::UnexpectedEof { pos: self.pos(), context: "an XML name" }),
        }
        while matches!(self.peek(), Some(c) if Self::is_name_char(c)) {
            self.bump();
        }
        Ok(self.input[start..self.offset].to_owned())
    }

    fn parse_comment(&mut self) -> Result<Node, XmlError> {
        let pos = self.pos();
        self.bump_str("<!--");
        let start = self.offset;
        loop {
            if self.starts_with("-->") {
                let text = self.input[start..self.offset].to_owned();
                self.bump_str("-->");
                return Ok(Node::Comment(text));
            }
            if self.bump().is_none() {
                return Err(XmlError::UnexpectedEof { pos, context: "comment" });
            }
        }
    }

    fn parse_cdata(&mut self) -> Result<Node, XmlError> {
        let pos = self.pos();
        self.bump_str("<![CDATA[");
        let start = self.offset;
        loop {
            if self.starts_with("]]>") {
                let text = self.input[start..self.offset].to_owned();
                self.bump_str("]]>");
                return Ok(Node::Text(text));
            }
            if self.bump().is_none() {
                return Err(XmlError::UnexpectedEof { pos, context: "CDATA section" });
            }
        }
    }

    fn parse_attr_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.peek() {
            Some(q @ ('"' | '\'')) => q,
            Some(found) => {
                return Err(XmlError::UnexpectedChar { pos: self.pos(), found, expected: "a quoted attribute value" })
            }
            None => return Err(XmlError::UnexpectedEof { pos: self.pos(), context: "attribute value" }),
        };
        let open_pos = self.pos();
        self.bump();
        let start = self.offset;
        loop {
            match self.peek() {
                Some(c) if c == quote => {
                    let raw = &self.input[start..self.offset];
                    self.bump();
                    return unescape_at(raw, open_pos);
                }
                Some('<') => {
                    return Err(XmlError::UnexpectedChar { pos: self.pos(), found: '<', expected: "attribute value content ('<' is illegal)" })
                }
                Some(_) => {
                    self.bump();
                }
                None => return Err(XmlError::UnexpectedEof { pos: open_pos, context: "attribute value" }),
            }
        }
    }

    fn parse_element(&mut self) -> Result<Element, XmlError> {
        let open_pos = self.pos();
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(XmlError::Unsupported { pos: open_pos, what: "nesting deeper than MAX_DEPTH elements" });
        }
        let result = self.parse_element_inner(open_pos);
        self.depth -= 1;
        result
    }

    fn parse_element_inner(&mut self, open_pos: Position) -> Result<Element, XmlError> {
        self.expect('<', "'<'")?;
        let name = self.parse_name()?;
        let mut element = Element::new(name);

        // Attributes.
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some('>') => {
                    self.bump();
                    break;
                }
                Some('/') => {
                    self.bump();
                    self.expect('>', "'>' after '/'")?;
                    return Ok(element);
                }
                Some(c) if Self::is_name_start(c) => {
                    let attr_pos = self.pos();
                    let attr_name = self.parse_name()?;
                    self.skip_whitespace();
                    self.expect('=', "'=' after attribute name")?;
                    self.skip_whitespace();
                    let value = self.parse_attr_value()?;
                    if element.attr(&attr_name).is_some() {
                        return Err(XmlError::DuplicateAttribute { pos: attr_pos, name: attr_name });
                    }
                    element.attributes.push((attr_name, value));
                }
                Some(found) => {
                    return Err(XmlError::UnexpectedChar { pos: self.pos(), found, expected: "attribute, '>' or '/>'" })
                }
                None => {
                    return Err(XmlError::UnexpectedEof { pos: open_pos, context: "start tag" })
                }
            }
        }

        // Children until the matching close tag.
        loop {
            if self.starts_with("</") {
                let close_pos = self.pos();
                self.bump_str("</");
                let close_name = self.parse_name()?;
                self.skip_whitespace();
                self.expect('>', "'>' closing an end tag")?;
                if close_name != element.name {
                    return Err(XmlError::MismatchedTag { pos: close_pos, open: element.name, close: close_name });
                }
                return Ok(element);
            }
            if self.starts_with("<!--") {
                element.children.push(self.parse_comment()?);
                continue;
            }
            if self.starts_with("<![CDATA[") {
                element.children.push(self.parse_cdata()?);
                continue;
            }
            if self.starts_with("<!") || self.starts_with("<?") {
                return Err(XmlError::Unsupported { pos: self.pos(), what: "markup declaration inside content" });
            }
            match self.peek() {
                Some('<') => {
                    let child = self.parse_element()?;
                    element.children.push(Node::Element(child));
                }
                Some(_) => {
                    let text_pos = self.pos();
                    let start = self.offset;
                    while let Some(c) = self.peek() {
                        if c == '<' {
                            break;
                        }
                        self.bump();
                    }
                    let raw = &self.input[start..self.offset];
                    let text = unescape_at(raw, text_pos)?;
                    // Whitespace-only runs between elements are formatting,
                    // not data: dropping them makes pretty/compact output
                    // structurally identical, which DGL round-trip tests rely on.
                    if !text.trim().is_empty() {
                        element.children.push(Node::Text(text));
                    }
                }
                None => {
                    return Err(XmlError::UnexpectedEof { pos: open_pos, context: "element content" })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements_and_attributes() {
        let doc = parse(r#"<a x="1" y='two'><b/><c>text</c></a>"#).unwrap();
        assert_eq!(doc.name, "a");
        assert_eq!(doc.attr("x"), Some("1"));
        assert_eq!(doc.attr("y"), Some("two"));
        assert_eq!(doc.child("c").unwrap().text(), "text");
        assert!(doc.child("b").unwrap().is_empty());
    }

    #[test]
    fn accepts_declaration_comments_and_whitespace() {
        let doc = parse("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!-- dgl -->\n<flow/>\n<!-- after -->\n").unwrap();
        assert_eq!(doc.name, "flow");
    }

    #[test]
    fn expands_entities_in_text_and_attributes() {
        let doc = parse(r#"<s cond="a &lt; b &amp;&amp; c">x &gt; y</s>"#).unwrap();
        assert_eq!(doc.attr("cond"), Some("a < b && c"));
        assert_eq!(doc.text(), "x > y");
    }

    #[test]
    fn cdata_is_verbatim_text() {
        let doc = parse("<s><![CDATA[a < b && <tag>]]></s>").unwrap();
        assert_eq!(doc.text(), "a < b && <tag>");
    }

    #[test]
    fn comments_are_preserved_as_children() {
        let doc = parse("<f><!-- keep me --><g/></f>").unwrap();
        assert!(matches!(&doc.children[0], Node::Comment(c) if c.trim() == "keep me"));
    }

    #[test]
    fn whitespace_between_elements_is_dropped() {
        let doc = parse("<f>\n  <g/>\n  <h/>\n</f>").unwrap();
        assert_eq!(doc.children.len(), 2);
    }

    #[test]
    fn mixed_content_text_is_kept() {
        let doc = parse("<f>hello <g/> world</f>").unwrap();
        assert_eq!(doc.children.len(), 3);
        assert_eq!(doc.children[0].as_text(), Some("hello "));
    }

    #[test]
    fn rejects_mismatched_tags() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(err, XmlError::MismatchedTag { open, close, .. } if open == "b" && close == "a"));
    }

    #[test]
    fn rejects_duplicate_attributes() {
        assert!(matches!(parse(r#"<a x="1" x="2"/>"#), Err(XmlError::DuplicateAttribute { name, .. }) if name == "x"));
    }

    #[test]
    fn rejects_doctype_and_pi() {
        assert!(matches!(parse("<!DOCTYPE html><a/>"), Err(XmlError::Unsupported { .. })));
        assert!(matches!(parse("<?php ?><a/>"), Err(XmlError::Unsupported { .. })));
    }

    #[test]
    fn rejects_trailing_content() {
        assert!(matches!(parse("<a/>junk"), Err(XmlError::TrailingContent { .. })));
        assert!(matches!(parse("<a/><b/>"), Err(XmlError::TrailingContent { .. })));
    }

    #[test]
    fn rejects_empty_and_truncated_documents() {
        assert!(matches!(parse(""), Err(XmlError::NoRootElement)));
        assert!(matches!(parse("   \n "), Err(XmlError::NoRootElement)));
        assert!(matches!(parse("<a><b>"), Err(XmlError::UnexpectedEof { .. })));
        assert!(matches!(parse("<a"), Err(XmlError::UnexpectedEof { .. })));
    }

    #[test]
    fn rejects_raw_angle_in_attribute() {
        assert!(matches!(parse("<a x=\"<\"/>"), Err(XmlError::UnexpectedChar { .. })));
    }

    #[test]
    fn parse_all_reads_sibling_roots() {
        let docs = parse_all("<a/> <b/> <!-- x --> <c/>").unwrap();
        assert_eq!(docs.iter().map(|d| d.name.as_str()).collect::<Vec<_>>(), ["a", "b", "c"]);
        assert!(matches!(parse_all("  "), Err(XmlError::NoRootElement)));
    }

    #[test]
    fn error_positions_point_at_the_problem() {
        let err = parse("<a>\n  <b x='1' x='2'/>\n</a>").unwrap_err();
        let pos = err.position().unwrap();
        assert_eq!(pos.line, 2);
        assert!(pos.column > 1);
    }

    #[test]
    fn hostile_nesting_is_rejected_not_a_stack_overflow() {
        let deep = format!("{}{}", "<a>".repeat(100_000), "</a>".repeat(100_000));
        assert!(matches!(parse(&deep), Err(XmlError::Unsupported { .. })));
        // Depth inside the limit parses fine.
        let ok = format!("{}{}", "<a>".repeat(100), "</a>".repeat(100));
        assert_eq!(parse(&ok).unwrap().depth(), 100);
    }

    #[test]
    fn unicode_content_survives() {
        let doc = parse("<f name='données'>päivä \u{2603}</f>").unwrap();
        assert_eq!(doc.attr("name"), Some("données"));
        assert_eq!(doc.text(), "päivä \u{2603}");
    }
}
