//! Pass 3: grid feasibility.
//!
//! With a [`GridContext`] the analyzer can do the scheduler's
//! structural matchmaking *before* submission: every literally-named
//! resource must exist, every `execute` must have at least one compute
//! resource that could ever host it (mirroring the planner's
//! `feasible_ever`), and ingest volumes must fit the storage they
//! target. Templated names (`${...}`) are runtime-dependent and skipped
//! — the pass is conservative, never speculative.

use crate::{join_path, GridContext};
use dgf_dgl::{
    Children, ControlPattern, Diagnostic, DglOperation, Flow, IterSource, Severity, Step,
    UserDefinedRule, RULE_AFTER_EXIT, RULE_BEFORE_ENTRY,
};
use dgf_scheduler::ResourceReq;
use dgf_simgrid::StorageId;
use std::collections::BTreeMap;

pub(crate) fn run(flow: &Flow, ctx: &GridContext<'_>, diags: &mut Vec<Diagnostic>) {
    let mut pass = Feasibility { ctx, diags, ingest: BTreeMap::new() };
    pass.walk_flow(flow, "", 1);
    let totals = std::mem::take(&mut pass.ingest);
    let root = join_path("", &flow.name);
    // Aggregate check last, anchored at the root: a single ingest can
    // fit while the whole campaign does not.
    for (name, (id, total)) in totals {
        let free = ctx.topology.storage(id).free();
        if total > free {
            pass.diags.push(
                Diagnostic::new(
                    "DGF023",
                    Severity::Warning,
                    &root,
                    format!(
                        "flow ingests {total} bytes onto `{name}` but only {free} bytes are free"
                    ),
                )
                .with_hint("spread the ingest across resources, trim first, or target a larger tier"),
            );
        }
    }
}

/// True when the string still contains a `${...}` template — its value
/// is unknowable before execution.
fn templated(s: &str) -> bool {
    s.contains("${")
}

struct Feasibility<'a, 'c> {
    ctx: &'a GridContext<'c>,
    diags: &'a mut Vec<Diagnostic>,
    /// Aggregate literal ingest bytes per literally-named resource.
    ingest: BTreeMap<String, (StorageId, u64)>,
}

impl Feasibility<'_, '_> {
    fn walk_flow(&mut self, flow: &Flow, prefix: &str, multiplier: u64) {
        let here = join_path(prefix, &flow.name);
        // A literal for-each item list multiplies everything inside it.
        let multiplier = match &flow.logic.pattern {
            ControlPattern::ForEach { source: IterSource::Items(items), .. } => {
                multiplier.saturating_mul(items.len() as u64)
            }
            _ => multiplier,
        };
        self.walk_rules(&flow.logic.rules, &here, multiplier);
        match &flow.children {
            Children::Flows(flows) => {
                for f in flows {
                    self.walk_flow(f, &here, multiplier);
                }
            }
            Children::Steps(steps) => {
                for s in steps {
                    self.walk_step(s, &here, multiplier);
                }
            }
        }
    }

    fn walk_step(&mut self, step: &Step, prefix: &str, multiplier: u64) {
        let here = join_path(prefix, &step.name);
        self.walk_rules(&step.rules, &here, multiplier);
        self.check_operation(&step.operation, &here, multiplier);
    }

    /// Rule-action steps of firing rules run inline; their data
    /// operations face the same grid. Dead rules never run — skip them.
    fn walk_rules(&mut self, rules: &[UserDefinedRule], node: &str, multiplier: u64) {
        for rule in rules.iter().filter(|r| r.name == RULE_BEFORE_ENTRY || r.name == RULE_AFTER_EXIT) {
            for action in &rule.actions {
                for s in &action.steps {
                    self.check_operation(&s.operation, &join_path(node, &s.name), multiplier);
                }
            }
        }
    }

    /// Resolve a literally-named storage resource; emits DGF020 when
    /// the topology has no such resource. `None` for templated names.
    fn storage(&mut self, name: &str, node: &str, role: &str) -> Option<StorageId> {
        if templated(name) {
            return None;
        }
        let id = self.ctx.topology.storage_by_name(name);
        if id.is_none() {
            self.diags.push(
                Diagnostic::new(
                    "DGF020",
                    Severity::Error,
                    node,
                    format!("unknown {role} resource `{name}`: the grid topology has no storage by that name"),
                )
                .with_hint("check the resource name against the grid description, or template it for late binding"),
            );
        }
        id
    }

    fn check_operation(&mut self, op: &DglOperation, node: &str, multiplier: u64) {
        match op {
            DglOperation::Ingest { size, resource, .. } => {
                let Some(id) = self.storage(resource, node, "target") else { return };
                if templated(size) {
                    return;
                }
                let Ok(bytes) = size.trim().parse::<u64>() else { return };
                let store = self.ctx.topology.storage(id);
                if bytes > store.capacity {
                    self.diags.push(
                        Diagnostic::new(
                            "DGF024",
                            Severity::Error,
                            node,
                            format!(
                                "ingested object ({bytes} bytes) exceeds the total capacity of `{resource}` ({} bytes)",
                                store.capacity
                            ),
                        )
                        .with_hint("target a larger tier, or split the object"),
                    );
                    return;
                }
                let entry = self.ingest.entry(resource.clone()).or_insert((id, 0));
                entry.1 = entry.1.saturating_add(bytes.saturating_mul(multiplier));
            }
            DglOperation::Replicate { src, dst, .. } => {
                let from = src.as_deref().and_then(|s| self.storage(s, node, "source"));
                let to = self.storage(dst, node, "destination");
                self.check_route(from, to, node);
            }
            DglOperation::Migrate { from, to, .. } => {
                let from = self.storage(from, node, "source");
                let to = self.storage(to, node, "destination");
                self.check_route(from, to, node);
            }
            DglOperation::Trim { resource, .. } => {
                self.storage(resource, node, "trim");
            }
            DglOperation::Checksum { resource: Some(resource), .. } => {
                self.storage(resource, node, "checksum");
            }
            DglOperation::Execute { resource_type, .. } => {
                self.check_execute(resource_type.as_deref(), node);
            }
            _ => {}
        }
    }

    fn check_route(&mut self, from: Option<StorageId>, to: Option<StorageId>, node: &str) {
        let (Some(from), Some(to)) = (from, to) else { return };
        let topo = self.ctx.topology;
        let (a, b) = (topo.storage_domain(from), topo.storage_domain(to));
        if topo.route(a, b).is_none() {
            self.diags.push(
                Diagnostic::new(
                    "DGF025",
                    Severity::Warning,
                    node,
                    format!(
                        "no network route between `{}` and `{}`; the transfer can never complete",
                        topo.domain(a).name,
                        topo.domain(b).name
                    ),
                )
                .with_hint("pick a destination reachable from the source domain"),
            );
        }
    }

    /// Mirror of the planner's `feasible_ever`, split into "no capable
    /// resource" (DGF021) vs "capable resources exist but every SLA
    /// excludes this VO" (DGF022).
    fn check_execute(&mut self, resource_type: Option<&str>, node: &str) {
        let req = match resource_type {
            None => ResourceReq::default(),
            Some(spec) if templated(spec) => return,
            Some(spec) => match ResourceReq::parse(spec) {
                Some(req) => req,
                None => {
                    self.diags.push(
                        Diagnostic::new(
                            "DGF021",
                            Severity::Warning,
                            node,
                            format!("resourceType `{spec}` does not parse; no resource can satisfy it"),
                        )
                        .with_hint("use `compute`, `compute:<min-slots>`, or `compute@<domain>`"),
                    );
                    return;
                }
            },
        };
        let topo = self.ctx.topology;
        if let Some(domain) = &req.domain {
            if topo.domain_by_name(domain).is_none() {
                self.diags.push(
                    Diagnostic::new(
                        "DGF021",
                        Severity::Warning,
                        node,
                        format!("resourceType pins domain `{domain}`, which the grid topology does not contain"),
                    )
                    .with_hint("check the domain name against the grid description"),
                );
                return;
            }
        }
        let capable: Vec<_> = topo
            .compute_ids()
            .filter(|&id| {
                let r = topo.compute(id);
                r.online
                    && (req.min_slots == 0 || r.slots >= req.min_slots)
                    && req
                        .domain
                        .as_ref()
                        .is_none_or(|d| &topo.domain(topo.compute_domain(id)).name == d)
            })
            .collect();
        if capable.is_empty() {
            self.diags.push(
                Diagnostic::new(
                    "DGF021",
                    Severity::Warning,
                    node,
                    format!(
                        "no online compute resource can ever satisfy `{}` (ignoring current load)",
                        resource_type.unwrap_or("compute")
                    ),
                )
                .with_hint("lower the slot requirement or unpin the domain"),
            );
            return;
        }
        let admitted = capable.iter().any(|&id| {
            let sla = self.ctx.infra.sla(id);
            sla.admits_vo(self.ctx.vo) && sla.usable_slots(topo.compute(id).slots) > 0
        });
        if !admitted {
            let vo = self.ctx.vo.unwrap_or("<none>");
            self.diags.push(
                Diagnostic::new(
                    "DGF022",
                    Severity::Warning,
                    node,
                    format!(
                        "{} capable resource(s) exist but every SLA excludes VO `{vo}` or shares zero slots",
                        capable.len()
                    ),
                )
                .with_hint("submit under an admitted VO, or negotiate an SLA for this one"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{lint_with_grid, GridContext};
    use dgf_dgl::FlowBuilder;
    use dgf_scheduler::{InfraDescription, Sla};
    use dgf_simgrid::{GridBuilder, GridPreset, Topology};

    fn mesh() -> Topology {
        GridBuilder::preset(GridPreset::UniformMesh { domains: 2 })
    }

    fn codes(flow: &Flow, topo: &Topology, infra: &InfraDescription, vo: Option<&str>) -> Vec<(String, Severity)> {
        let ctx = GridContext { topology: topo, infra, vo };
        lint_with_grid(flow, &ctx).diagnostics.iter().map(|d| (d.code.clone(), d.severity)).collect()
    }

    fn ingest(name: &str, size: &str, resource: &str) -> Step {
        Step::new(
            name,
            DglOperation::Ingest { path: format!("/d/{name}"), size: size.into(), resource: resource.into() },
        )
    }

    #[test]
    fn unknown_resources_are_errors_but_templates_are_skipped() {
        let topo = mesh();
        let infra = InfraDescription::open();
        let flow = Flow::sequence("f", vec![ingest("a", "100", "nosuch-disk")]);
        assert!(codes(&flow, &topo, &infra, None).contains(&("DGF020".into(), Severity::Error)));

        let mut flow = Flow::sequence("f", vec![ingest("a", "100", "${target}")]);
        flow.variables.push(dgf_dgl::VarDecl::new("target", "site0-disk"));
        assert!(codes(&flow, &topo, &infra, None).is_empty());
    }

    #[test]
    fn oversized_objects_and_oversubscribed_campaigns() {
        let topo = mesh();
        let infra = InfraDescription::open();
        // site0-pfs is 10 TB total.
        let huge = Flow::sequence("f", vec![ingest("a", "99000000000000", "site0-pfs")]);
        assert!(codes(&huge, &topo, &infra, None).contains(&("DGF024".into(), Severity::Error)));

        // 6 TB per iteration × 2 iterations > 10 TB free, though each
        // object fits on its own.
        let campaign = FlowBuilder::for_each_items("f", "run", ["one", "two"])
            .add_step(ingest("a", "6000000000000", "site0-pfs"))
            .build()
            .unwrap();
        let got = codes(&campaign, &topo, &infra, None);
        assert!(got.contains(&("DGF023".into(), Severity::Warning)), "{got:?}");
        assert!(!got.iter().any(|(c, _)| c == "DGF024"));
    }

    #[test]
    fn unroutable_transfers_warn() {
        // Two disconnected sites: no link added.
        let mut b = GridBuilder::new();
        b.add_site("east", 8);
        b.add_site("west", 8);
        let topo = b.build();
        let infra = InfraDescription::open();
        let flow = Flow::sequence(
            "f",
            vec![Step::new(
                "move",
                DglOperation::Migrate { path: "/d/x".into(), from: "east-disk".into(), to: "west-disk".into() },
            )],
        );
        assert!(codes(&flow, &topo, &infra, None).contains(&("DGF025".into(), Severity::Warning)));
    }

    fn execute(resource_type: Option<&str>) -> Flow {
        Flow::sequence(
            "f",
            vec![Step::new(
                "run",
                DglOperation::Execute {
                    code: "sim".into(),
                    nominal_secs: "60".into(),
                    resource_type: resource_type.map(Into::into),
                    inputs: vec![],
                    outputs: vec![],
                },
            )],
        )
    }

    #[test]
    fn impossible_compute_requirements_warn() {
        let topo = mesh(); // 32-slot clusters
        let infra = InfraDescription::open();
        let got = codes(&execute(Some("compute:4096")), &topo, &infra, None);
        assert!(got.contains(&("DGF021".into(), Severity::Warning)), "{got:?}");
        let got = codes(&execute(Some("compute@mars")), &topo, &infra, None);
        assert!(got.contains(&("DGF021".into(), Severity::Warning)), "{got:?}");
        assert!(codes(&execute(Some("compute:8")), &topo, &infra, None).is_empty());
        assert!(codes(&execute(None), &topo, &infra, None).is_empty());
    }

    #[test]
    fn sla_exclusion_warns_per_vo() {
        let topo = mesh();
        let mut infra = InfraDescription::open();
        for id in topo.compute_ids() {
            infra.publish(id, Sla::for_vos(&["cms"]));
        }
        let got = codes(&execute(None), &topo, &infra, Some("atlas"));
        assert!(got.contains(&("DGF022".into(), Severity::Warning)), "{got:?}");
        assert!(codes(&execute(None), &topo, &infra, Some("cms")).is_empty());
    }
}
