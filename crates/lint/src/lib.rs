//! # dgf-lint — pre-execution static analysis for DGL flows
//!
//! The paper's flows are *long-run* processes: "managing data as a
//! long-run process" is the whole point of the DfMS, and a flow that
//! dies hours into a multi-day run on an undefined variable or an SLA
//! no placement can satisfy wastes exactly the storage, network, and
//! compute that §2.3's cost model is trying to conserve. The DGL
//! structures of Figures 1–3 are declarative enough to verify *before*
//! execution; this crate is that verifier.
//!
//! Three passes walk the recursive [`Flow`] tree:
//!
//! 1. **def/use** (`defuse`) — resolves every variable read
//!    (templates, `Expr`s, iteration sources) against the nested scopes
//!    the engine will actually build, flagging undefined reads, unused
//!    declarations, shadowing, and list variables iterated before the
//!    `query` step that binds them;
//! 2. **control flow** (`control`) — duplicate/unreachable `case`
//!    arms, constant-condition `while` loops, empty `for-each` sources,
//!    dead siblings after a never-terminating loop, rules that can
//!    never fire, and operations forbidden inside rule actions;
//! 3. **feasibility** (`feasibility`) — with a [`GridContext`],
//!    checks literally-named resources against the `simgrid` topology
//!    and the scheduler's SLA/infrastructure description: unknown
//!    resources, unsatisfiable compute requirements, placements every
//!    SLA excludes, and transfer volumes exceeding storage capacity.
//!
//! Every finding is a [`Diagnostic`] with a stable `DGF0xx` code (see
//! [`CATALOG`]), a [`Severity`], a slash-joined node path into the flow
//! tree, and a fix hint. Output is deterministic: the same flow always
//! produces the same report, byte for byte.
//!
//! The analyzer is conservative where the engine is dynamic: templated
//! resource names (`${...}`) are skipped by the feasibility pass, and
//! `Error` severity is reserved for flows the engine is certain to
//! reject or fail — the submit gate in `dgf-dfms` refuses those, while
//! warnings ride along in the report.

mod catalog;
mod control;
mod defuse;
mod feasibility;

pub use catalog::{code_info, CodeInfo, CATALOG};

use dgf_dgl::{Diagnostic, Flow, Severity, ValidationReport};
use dgf_scheduler::InfraDescription;
use dgf_simgrid::Topology;

/// The grid the feasibility pass checks against.
#[derive(Debug, Clone, Copy)]
pub struct GridContext<'a> {
    /// Physical topology: domains, storage, compute, links.
    pub topology: &'a Topology,
    /// Published SLAs per compute resource.
    pub infra: &'a InfraDescription,
    /// The VO the flow would be submitted under, for SLA matchmaking.
    pub vo: Option<&'a str>,
}

/// Run the structural passes (def/use + control flow) over a flow.
///
/// ```
/// use dgf_dgl::FlowBuilder;
///
/// let flow = FlowBuilder::sequential("f")
///     .step("n", dgf_dgl::DglOperation::Notify { message: "${who}".into() })
///     .build()
///     .unwrap();
/// let report = dgf_lint::lint(&flow);
/// assert!(!report.valid);
/// assert_eq!(report.diagnostics[0].code, "DGF001");
/// ```
pub fn lint(flow: &Flow) -> ValidationReport {
    let mut diags = Vec::new();
    defuse::run(flow, &mut diags);
    control::run(flow, &mut diags);
    finish(flow, diags)
}

/// Run all three passes: structural plus grid feasibility.
pub fn lint_with_grid(flow: &Flow, ctx: &GridContext<'_>) -> ValidationReport {
    let mut diags = Vec::new();
    defuse::run(flow, &mut diags);
    control::run(flow, &mut diags);
    feasibility::run(flow, ctx, &mut diags);
    finish(flow, diags)
}

fn finish(flow: &Flow, mut diags: Vec<Diagnostic>) -> ValidationReport {
    // Deterministic presentation: by node path, then code, then message
    // (stable, so equal keys keep traversal order).
    diags.sort_by(|a, b| {
        (a.node.as_str(), a.code.as_str(), a.message.as_str())
            .cmp(&(b.node.as_str(), b.code.as_str(), b.message.as_str()))
    });
    let valid = diags.iter().all(|d| d.severity != Severity::Error);
    ValidationReport { flow: flow.name.clone(), valid, diagnostics: diags }
}

/// Join a parent node path and a child name into `/a/b` form.
pub(crate) fn join_path(prefix: &str, name: &str) -> String {
    format!("{prefix}/{name}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_dgl::{DglOperation, FlowBuilder};

    #[test]
    fn clean_flows_produce_clean_reports() {
        let flow = FlowBuilder::sequential("f")
            .step("n", DglOperation::Notify { message: "hello".into() })
            .build()
            .unwrap();
        let report = lint(&flow);
        assert!(report.valid, "{report:#?}");
        assert!(report.diagnostics.is_empty());
        assert_eq!(report.flow, "f");
    }

    #[test]
    fn reports_are_deterministic() {
        let flow = FlowBuilder::sequential("f")
            .var("unused", "1")
            .step("a", DglOperation::Notify { message: "${ghost}".into() })
            .step("b", DglOperation::Notify { message: "${phantom}".into() })
            .build()
            .unwrap();
        let a = lint(&flow);
        let b = lint(&flow);
        assert_eq!(a, b);
        assert!(!a.valid);
        // Sorted by node path: /f < /f/a < /f/b.
        let nodes: Vec<&str> = a.diagnostics.iter().map(|d| d.node.as_str()).collect();
        let mut sorted = nodes.clone();
        sorted.sort_unstable();
        assert_eq!(nodes, sorted);
    }

    #[test]
    fn every_emitted_code_is_in_the_catalog() {
        // The catalog is the contract for docs and operators; a
        // diagnostic with an uncatalogued code is a bug.
        let flow = FlowBuilder::sequential("f")
            .var("unused", "1")
            .step("a", DglOperation::Notify { message: "${ghost}".into() })
            .build()
            .unwrap();
        for d in lint(&flow).diagnostics {
            let info = CATALOG.iter().find(|c| c.code == d.code);
            assert!(info.is_some(), "code {} missing from CATALOG", d.code);
            assert_eq!(info.unwrap().severity, d.severity, "severity drift for {}", d.code);
        }
    }
}
