//! The diagnostic catalog: one entry per stable code.
//!
//! Codes are never renumbered and retired codes are never reused, so
//! operators can filter and suppress by code across releases. The
//! severity here is the *nominal* severity: a handful of checks
//! downgrade `Error` to `Warning` when the offending construct is
//! provably unreachable (e.g. inside a rule that can never fire).

use dgf_dgl::Severity;

/// One catalogued diagnostic code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeInfo {
    /// The stable code (`DGF001`…).
    pub code: &'static str,
    /// Nominal severity.
    pub severity: Severity,
    /// Short title (kebab-ish, for CLI summaries).
    pub title: &'static str,
    /// One-line description of what the check catches.
    pub summary: &'static str,
}

/// Every diagnostic code the analyzer can emit.
///
/// `DGF00x` — def/use; `DGF01x` — control flow; `DGF02x` — grid
/// feasibility.
pub const CATALOG: &[CodeInfo] = &[
    CodeInfo {
        code: "DGF001",
        severity: Severity::Error,
        title: "undefined variable",
        summary: "a template or expression reads a variable no enclosing scope declares",
    },
    CodeInfo {
        code: "DGF002",
        severity: Severity::Warning,
        title: "unused variable",
        summary: "a declared variable is never read anywhere in its scope",
    },
    CodeInfo {
        code: "DGF003",
        severity: Severity::Warning,
        title: "shadowed variable",
        summary: "a declaration reuses a name already visible from an enclosing scope",
    },
    CodeInfo {
        code: "DGF004",
        severity: Severity::Error,
        title: "list used before query",
        summary: "a list variable is iterated before the query step that binds it, or bound in a scope that does not outlive the binding step",
    },
    CodeInfo {
        code: "DGF010",
        severity: Severity::Error,
        title: "duplicate case arm",
        summary: "two switch arms match the same value; the engine always picks the first, the second can never run",
    },
    CodeInfo {
        code: "DGF011",
        severity: Severity::Warning,
        title: "constant switch",
        summary: "the switch expression is constant, so every other arm is unreachable",
    },
    CodeInfo {
        code: "DGF012",
        severity: Severity::Warning,
        title: "while always true",
        summary: "the while condition is constantly true; the run only ends when the engine's iteration limit fails it",
    },
    CodeInfo {
        code: "DGF013",
        severity: Severity::Warning,
        title: "while always false",
        summary: "the while condition is constantly false; the body never runs",
    },
    CodeInfo {
        code: "DGF014",
        severity: Severity::Warning,
        title: "empty for-each",
        summary: "the for-each iterates over an explicitly empty item list; the body never runs",
    },
    CodeInfo {
        code: "DGF015",
        severity: Severity::Warning,
        title: "empty flow",
        summary: "the flow has no children and does nothing",
    },
    CodeInfo {
        code: "DGF016",
        severity: Severity::Warning,
        title: "dead code after infinite loop",
        summary: "sequential siblings after a constant-true while loop can never start",
    },
    CodeInfo {
        code: "DGF017",
        severity: Severity::Warning,
        title: "rule never fires",
        summary: "only beforeEntry and afterExit rules are fired by the engine; any other rule name is dead",
    },
    CodeInfo {
        code: "DGF018",
        severity: Severity::Warning,
        title: "rule selects no action",
        summary: "the rule's condition is constant and selects none of its actions",
    },
    CodeInfo {
        code: "DGF019",
        severity: Severity::Error,
        title: "forbidden operation in rule action",
        summary: "execute and query operations are rejected by the engine inside rule actions",
    },
    CodeInfo {
        code: "DGF020",
        severity: Severity::Error,
        title: "unknown resource",
        summary: "an operation names a storage resource the topology does not contain",
    },
    CodeInfo {
        code: "DGF021",
        severity: Severity::Warning,
        title: "unsatisfiable compute requirement",
        summary: "no compute resource can ever satisfy the step's resourceType, ignoring current load",
    },
    CodeInfo {
        code: "DGF022",
        severity: Severity::Warning,
        title: "SLA excludes all placements",
        summary: "capable resources exist but every one's SLA excludes this VO or shares zero slots",
    },
    CodeInfo {
        code: "DGF023",
        severity: Severity::Warning,
        title: "storage capacity exceeded",
        summary: "the flow's aggregate ingest volume exceeds the free capacity of a target resource",
    },
    CodeInfo {
        code: "DGF024",
        severity: Severity::Error,
        title: "object exceeds resource capacity",
        summary: "a single ingested object is larger than the target resource's total capacity",
    },
    CodeInfo {
        code: "DGF025",
        severity: Severity::Warning,
        title: "unreachable resource",
        summary: "a transfer names source and destination domains with no network route between them",
    },
];

/// Look up a code's catalog entry.
pub fn code_info(code: &str) -> Option<&'static CodeInfo> {
    CATALOG.iter().find(|c| c.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_sorted_and_well_formed() {
        for w in CATALOG.windows(2) {
            assert!(w[0].code < w[1].code, "{} before {}", w[0].code, w[1].code);
        }
        for c in CATALOG {
            assert!(c.code.starts_with("DGF") && c.code.len() == 6, "{}", c.code);
            assert!(!c.title.is_empty() && !c.summary.is_empty());
        }
        assert_eq!(code_info("DGF001").unwrap().severity, Severity::Error);
        assert!(code_info("DGF999").is_none());
    }
}
