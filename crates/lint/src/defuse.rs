//! Pass 1: definition/use analysis of DGL variables.
//!
//! The walker mirrors the engine's scoping exactly:
//!
//! * each flow/step node pushes one frame; declared variables land in
//!   it, in order, so a later initial can reference an earlier one;
//! * `assign` (and `query … into`) updates the nearest declaring frame,
//!   or declares in the *innermost* frame when undeclared — which means
//!   an undeclared binding made inside a regular step dies when the
//!   step's frame pops (the engine copies only surviving frames back to
//!   the parent);
//! * rule-action steps run inline in the *node's* scope, so their
//!   assigns persist for the node's lifetime;
//! * only `beforeEntry`/`afterExit` rules fire; other rules are dead
//!   code, so defects inside them are downgraded from error to warning.

use crate::join_path;
use dgf_dgl::{
    template_refs, Children, ControlPattern, Diagnostic, DglOperation, Expr, Flow, IterSource,
    Severity, Step, UserDefinedRule, RULE_AFTER_EXIT, RULE_BEFORE_ENTRY,
};
use std::collections::HashSet;

pub(crate) fn run(flow: &Flow, diags: &mut Vec<Diagnostic>) {
    let mut query_targets = HashSet::new();
    collect_query_targets(flow, &mut query_targets);
    let mut pass = DefUse {
        frames: Vec::new(),
        diags,
        query_targets,
        bound_lists: HashSet::new(),
        reachable: true,
    };
    pass.walk_flow(flow, "");
}

struct VarInfo {
    name: String,
    read: bool,
    decl_path: String,
}

struct DefUse<'a> {
    frames: Vec<Vec<VarInfo>>,
    diags: &'a mut Vec<Diagnostic>,
    /// Every `query … into` target anywhere in the flow.
    query_targets: HashSet<String>,
    /// Query targets whose binding step has already run, walking in
    /// execution order.
    bound_lists: HashSet<String>,
    /// False inside rules that can never fire: errors downgrade to
    /// warnings there (the engine will never evaluate them).
    reachable: bool,
}

impl DefUse<'_> {
    fn emit(&mut self, code: &str, severity: Severity, node: &str, message: String, hint: &str) {
        let severity = if severity == Severity::Error && !self.reachable { Severity::Warning } else { severity };
        let message = if self.reachable { message } else { format!("{message} (in a rule that never fires)") };
        self.diags.push(Diagnostic::new(code, severity, node, message).with_hint(hint));
    }

    fn declare(&mut self, name: &str, node: &str) {
        let visible = self
            .frames
            .iter()
            .flat_map(|f| f.iter())
            .rev()
            .find(|v| v.name == name)
            .map(|v| v.decl_path.clone());
        if let Some(outer) = visible {
            self.emit(
                "DGF003",
                Severity::Warning,
                node,
                format!("declaration of `{name}` shadows the declaration at {outer}"),
                "rename one of the variables, or drop the inner declaration to reuse the outer one",
            );
        }
        self.frames
            .last_mut()
            .expect("declare inside a frame")
            .push(VarInfo { name: name.to_owned(), read: false, decl_path: node.to_owned() });
    }

    /// Mark the nearest declaration of `name` as read. False when no
    /// frame declares it.
    fn mark_read(&mut self, name: &str) -> bool {
        for frame in self.frames.iter_mut().rev() {
            if let Some(v) = frame.iter_mut().rev().find(|v| v.name == name) {
                v.read = true;
                return true;
            }
        }
        false
    }

    fn is_declared(&self, name: &str) -> bool {
        self.frames.iter().any(|f| f.iter().any(|v| v.name == name))
    }

    fn read(&mut self, name: &str, node: &str, context: &str) {
        if !self.mark_read(name) {
            let hint = if self.query_targets.contains(name) {
                format!("declare `{name}` in an enclosing flow's variables so the query binding outlives its step")
            } else {
                format!("declare `{name}` in an enclosing flow's or step's variables")
            };
            self.emit(
                "DGF001",
                Severity::Error,
                node,
                format!("undefined variable `{name}` in {context}"),
                &hint,
            );
        }
    }

    fn check_template(&mut self, template: &str, node: &str, context: &str) {
        for name in template_refs(template) {
            self.read(&name, node, context);
        }
    }

    fn check_expr(&mut self, expr: &Expr, node: &str, context: &str) {
        for name in expr.referenced_vars() {
            self.read(&name, node, context);
        }
    }

    fn walk_flow(&mut self, flow: &Flow, prefix: &str) {
        let here = join_path(prefix, &flow.name);
        self.frames.push(Vec::new());
        for v in &flow.variables {
            self.check_template(&v.initial, &here, &format!("the initial value of `{}`", v.name));
            self.declare(&v.name, &here);
        }
        self.walk_rules_named(&flow.logic.rules, RULE_BEFORE_ENTRY, &here);
        match &flow.logic.pattern {
            ControlPattern::While(cond) => self.check_expr(cond, &here, "the while condition"),
            ControlPattern::Switch { on, .. } => self.check_expr(on, &here, "the switch expression"),
            ControlPattern::ForEach { var, source, .. } => {
                self.check_iter_source(source, &here);
                self.declare(var, &here);
                // The engine binds the loop variable every iteration;
                // an unread loop variable is normal (side-effect-only
                // bodies), so pre-mark it read.
                self.mark_read(var);
            }
            ControlPattern::Sequential | ControlPattern::Parallel => {}
        }
        match &flow.children {
            Children::Flows(flows) => {
                for f in flows {
                    self.walk_flow(f, &here);
                }
            }
            Children::Steps(steps) => {
                for s in steps {
                    self.walk_step(s, &here);
                }
            }
        }
        self.walk_rules_named(&flow.logic.rules, RULE_AFTER_EXIT, &here);
        self.walk_dead_rules(&flow.logic.rules, &here);
        self.pop_frame();
    }

    fn walk_step(&mut self, step: &Step, prefix: &str) {
        let here = join_path(prefix, &step.name);
        self.frames.push(Vec::new());
        for v in &step.variables {
            self.check_template(&v.initial, &here, &format!("the initial value of `{}`", v.name));
            self.declare(&v.name, &here);
        }
        self.walk_rules_named(&step.rules, RULE_BEFORE_ENTRY, &here);
        self.check_operation(&step.operation, &here, /* inline= */ false);
        self.walk_rules_named(&step.rules, RULE_AFTER_EXIT, &here);
        self.walk_dead_rules(&step.rules, &here);
        self.pop_frame();
    }

    /// Rule actions run inline in the node's scope: no fresh frame, and
    /// the engine ignores inline steps' own variables and rules.
    fn walk_rules_named(&mut self, rules: &[UserDefinedRule], name: &str, node: &str) {
        for rule in rules.iter().filter(|r| r.name == name) {
            self.check_expr(&rule.condition, node, &format!("the condition of rule `{}`", rule.name));
            for action in &rule.actions {
                for step in &action.steps {
                    let path = join_path(node, &step.name);
                    self.check_operation(&step.operation, &path, /* inline= */ true);
                }
            }
        }
    }

    /// Rules with non-reserved names never fire; still check their
    /// contents, downgraded, so latent typos surface without blocking
    /// submission of a flow that would in fact run.
    fn walk_dead_rules(&mut self, rules: &[UserDefinedRule], node: &str) {
        let was = self.reachable;
        self.reachable = false;
        for rule in rules.iter().filter(|r| r.name != RULE_BEFORE_ENTRY && r.name != RULE_AFTER_EXIT) {
            self.check_expr(&rule.condition, node, &format!("the condition of rule `{}`", rule.name));
            for action in &rule.actions {
                for step in &action.steps {
                    let path = join_path(node, &step.name);
                    self.check_operation(&step.operation, &path, /* inline= */ true);
                }
            }
        }
        self.reachable = was;
    }

    fn check_iter_source(&mut self, source: &IterSource, node: &str) {
        match source {
            IterSource::Items(items) => {
                for item in items {
                    self.check_template(item, node, "a for-each item");
                }
            }
            IterSource::Collection(c) => self.check_template(c, node, "the for-each collection"),
            IterSource::Query { collection, attribute, value } => {
                self.check_template(collection, node, "the for-each query collection");
                self.check_template(attribute, node, "the for-each query attribute");
                self.check_template(value, node, "the for-each query value");
            }
            IterSource::Variable(name) => {
                if !self.mark_read(name) {
                    self.emit(
                        "DGF001",
                        Severity::Error,
                        node,
                        format!("undefined variable `{name}` as the for-each source"),
                        &format!("declare `{name}` in an enclosing flow's variables and bind it with a query step"),
                    );
                } else if self.reachable
                    && self.query_targets.contains(name)
                    && !self.bound_lists.contains(name)
                {
                    self.emit(
                        "DGF004",
                        Severity::Error,
                        node,
                        format!("list variable `{name}` is iterated before the query step that binds it"),
                        "move the query step ahead of this for-each in a sequential flow",
                    );
                }
            }
        }
    }

    fn check_operation(&mut self, op: &DglOperation, node: &str, inline: bool) {
        let t = |this: &mut Self, template: &str, what: &str| {
            this.check_template(template, node, what);
        };
        match op {
            DglOperation::CreateCollection { path } | DglOperation::Delete { path } => {
                t(self, path, "the path")
            }
            DglOperation::Ingest { path, size, resource } => {
                t(self, path, "the path");
                t(self, size, "the size");
                t(self, resource, "the resource");
            }
            DglOperation::Replicate { path, src, dst } => {
                t(self, path, "the path");
                if let Some(src) = src {
                    t(self, src, "the source resource");
                }
                t(self, dst, "the destination resource");
            }
            DglOperation::Migrate { path, from, to } => {
                t(self, path, "the path");
                t(self, from, "the source resource");
                t(self, to, "the destination resource");
            }
            DglOperation::Trim { path, resource } => {
                t(self, path, "the path");
                t(self, resource, "the resource");
            }
            DglOperation::Rename { path, to } => {
                t(self, path, "the path");
                t(self, to, "the new path");
            }
            DglOperation::Checksum { path, resource, .. } => {
                t(self, path, "the path");
                if let Some(resource) = resource {
                    t(self, resource, "the resource");
                }
            }
            DglOperation::SetMetadata { path, attribute, value } => {
                t(self, path, "the path");
                t(self, attribute, "the attribute");
                t(self, value, "the value");
            }
            DglOperation::SetPermission { path, grantee, level } => {
                t(self, path, "the path");
                t(self, grantee, "the grantee");
                t(self, level, "the permission level");
            }
            DglOperation::Query { collection, attribute, value, into } => {
                t(self, collection, "the query collection");
                t(self, attribute, "the query attribute");
                t(self, value, "the query value");
                if self.is_declared(into) {
                    self.mark_read(into);
                    if self.reachable {
                        self.bound_lists.insert(into.clone());
                    }
                } else if inline {
                    // Inline queries are rejected at runtime (DGF019,
                    // control pass); no binding to model.
                } else {
                    self.emit(
                        "DGF004",
                        Severity::Error,
                        node,
                        format!(
                            "query binds `{into}` in the step's own scope, which is discarded when the step completes"
                        ),
                        &format!("declare `{into}` in an enclosing flow's variables so the binding outlives this step"),
                    );
                    // Model the engine faithfully anyway: the binding
                    // exists inside this step's frame.
                    self.frames
                        .last_mut()
                        .expect("step frame")
                        .push(VarInfo { name: into.clone(), read: true, decl_path: node.to_owned() });
                }
            }
            DglOperation::Execute { code, nominal_secs, resource_type, inputs, outputs } => {
                t(self, code, "the code name");
                t(self, nominal_secs, "the nominal duration");
                if let Some(rt) = resource_type {
                    t(self, rt, "the resource type");
                }
                for input in inputs {
                    t(self, input, "an input path");
                }
                for (path, size) in outputs {
                    t(self, path, "an output path");
                    t(self, size, "an output size");
                }
            }
            DglOperation::Assign { variable, expr } => {
                self.check_expr(expr, node, "the assigned expression");
                if self.is_declared(variable) {
                    self.mark_read(variable);
                } else if self.reachable {
                    // Undeclared assign: binds in the innermost frame.
                    // For a regular step that frame dies with the step;
                    // inline rule actions bind the node's frame, which
                    // children and later siblings of the node do see.
                    self.frames
                        .last_mut()
                        .expect("frame present")
                        .push(VarInfo { name: variable.clone(), read: !inline, decl_path: node.to_owned() });
                }
            }
            DglOperation::Notify { message } => t(self, message, "the message"),
        }
    }

    fn pop_frame(&mut self) {
        let frame = self.frames.pop().expect("balanced frames");
        for v in frame {
            // `dgf.`-prefixed names are reserved engine directives
            // (`dgf.deadline`, `dgf.class`): the *engine* reads them at
            // submission, so "never read by the flow" is their normal,
            // correct state.
            if v.name.starts_with("dgf.") {
                continue;
            }
            if !v.read {
                self.diags.push(
                    Diagnostic::new(
                        "DGF002",
                        Severity::Warning,
                        &v.decl_path,
                        format!("variable `{}` is declared but never read", v.name),
                    )
                    .with_hint("remove the declaration, or reference it from a template or expression"),
                );
            }
        }
    }
}

fn collect_query_targets(flow: &Flow, out: &mut HashSet<String>) {
    fn scan_step(step: &Step, out: &mut HashSet<String>) {
        if let DglOperation::Query { into, .. } = &step.operation {
            out.insert(into.clone());
        }
        for rule in &step.rules {
            for action in &rule.actions {
                for s in &action.steps {
                    scan_step(s, out);
                }
            }
        }
    }
    for rule in &flow.logic.rules {
        for action in &rule.actions {
            for s in &action.steps {
                scan_step(s, out);
            }
        }
    }
    match &flow.children {
        Children::Flows(flows) => {
            for f in flows {
                collect_query_targets(f, out);
            }
        }
        Children::Steps(steps) => {
            for s in steps {
                scan_step(s, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_dgl::{FlowBuilder, RuleAction, VarDecl};

    fn lint_codes(flow: &Flow) -> Vec<(String, Severity)> {
        let report = crate::lint(flow);
        report.diagnostics.iter().map(|d| (d.code.clone(), d.severity)).collect()
    }

    #[test]
    fn undefined_template_and_expr_reads_are_errors() {
        let flow = FlowBuilder::sequential("f")
            .step("n", DglOperation::Notify { message: "hi ${who}".into() })
            .build()
            .unwrap();
        assert!(lint_codes(&flow).contains(&("DGF001".into(), Severity::Error)));

        let flow = FlowBuilder::while_loop("w", "i < 3").unwrap()
            .step("n", DglOperation::Notify { message: "x".into() })
            .build()
            .unwrap();
        assert!(lint_codes(&flow).contains(&("DGF001".into(), Severity::Error)), "expr read of undeclared i");
    }

    #[test]
    fn declared_variables_resolve_across_nesting() {
        let inner = FlowBuilder::sequential("inner")
            .step("n", DglOperation::Notify { message: "${site}".into() })
            .build()
            .unwrap();
        let mut outer = Flow::parallel_flows("outer", vec![inner]);
        outer.variables.push(VarDecl::new("site", "sdsc"));
        let report = crate::lint(&outer);
        assert!(report.valid, "{report:#?}");
    }

    #[test]
    fn unused_and_shadowed_variables_warn() {
        let flow = FlowBuilder::sequential("f")
            .var("dead", "1")
            .step("n", DglOperation::Notify { message: "x".into() })
            .build()
            .unwrap();
        assert!(lint_codes(&flow).contains(&("DGF002".into(), Severity::Warning)));

        let inner = FlowBuilder::sequential("inner")
            .var("site", "npaci")
            .step("n", DglOperation::Notify { message: "${site}".into() })
            .build()
            .unwrap();
        let mut outer = Flow::parallel_flows("outer", vec![inner]);
        outer.variables.push(VarDecl::new("site", "sdsc"));
        let codes = lint_codes(&outer);
        assert!(codes.contains(&("DGF003".into(), Severity::Warning)), "{codes:?}");
        // The outer `site` is shadowed and never read -> also unused.
        assert!(codes.contains(&("DGF002".into(), Severity::Warning)));
    }

    #[test]
    fn foreach_loop_variable_is_defined_inside_the_body() {
        let flow = FlowBuilder::for_each_items("sweep", "file", ["a", "b"])
            .step("sum", DglOperation::Checksum { path: "${file}".into(), resource: None, register: false })
            .build()
            .unwrap();
        assert!(crate::lint(&flow).valid);
    }

    #[test]
    fn list_iterated_before_its_query_step() {
        // for-each over `hits` runs before the query that binds it.
        let iterate = FlowBuilder::for_each_items("use", "f", Vec::<String>::new()).build().unwrap();
        let mut iterate = iterate;
        iterate.logic.pattern = ControlPattern::ForEach {
            var: "f".into(),
            source: IterSource::Variable("hits".into()),
            parallel: false,
        };
        let bind = FlowBuilder::sequential("bind")
            .step(
                "q",
                DglOperation::Query { collection: "/c".into(), attribute: "a".into(), value: "v".into(), into: "hits".into() },
            )
            .build()
            .unwrap();
        let mut outer = Flow { name: "outer".into(), variables: vec![VarDecl::new("hits", "")], logic: dgf_dgl::FlowLogic::sequential(), children: Children::Flows(vec![iterate, bind]) };
        let codes = lint_codes(&outer);
        assert!(codes.contains(&("DGF004".into(), Severity::Error)), "{codes:?}");

        // Swapping the order fixes it.
        let Children::Flows(children) = &mut outer.children else { unreachable!() };
        children.swap(0, 1);
        let codes = lint_codes(&outer);
        assert!(!codes.iter().any(|(c, _)| c == "DGF004"), "{codes:?}");
    }

    #[test]
    fn query_into_undeclared_variable_is_flagged() {
        let flow = FlowBuilder::sequential("f")
            .step(
                "q",
                DglOperation::Query { collection: "/c".into(), attribute: "a".into(), value: "v".into(), into: "hits".into() },
            )
            .build()
            .unwrap();
        let codes = lint_codes(&flow);
        assert!(codes.contains(&("DGF004".into(), Severity::Error)), "{codes:?}");
    }

    #[test]
    fn assigns_to_declared_variables_are_fine() {
        let flow = FlowBuilder::while_loop("loop", "i < 3").unwrap()
            .var("i", "0")
            .step("inc", DglOperation::Assign { variable: "i".into(), expr: Expr::parse("i + 1").unwrap() })
            .build()
            .unwrap();
        let report = crate::lint(&flow);
        assert!(report.valid, "{report:#?}");
    }

    #[test]
    fn before_entry_assign_binds_for_the_node() {
        // An Assign inside beforeEntry writes the node's own frame, so
        // children can read it.
        let mut flow = FlowBuilder::sequential("f")
            .step("n", DglOperation::Notify { message: "${greeting}".into() })
            .build()
            .unwrap();
        flow.logic.rules = vec![UserDefinedRule::unconditional(
            RULE_BEFORE_ENTRY,
            vec![Step::new("set", DglOperation::Assign { variable: "greeting".into(), expr: Expr::parse("'hi'").unwrap() })],
        )];
        let report = crate::lint(&flow);
        assert!(report.valid, "{report:#?}");
    }

    #[test]
    fn errors_inside_dead_rules_downgrade_to_warnings() {
        let mut flow = FlowBuilder::sequential("f")
            .step("n", DglOperation::Notify { message: "x".into() })
            .build()
            .unwrap();
        flow.logic.rules = vec![UserDefinedRule::new(
            "myRule",
            Expr::parse("ghost == 1").unwrap(),
            vec![RuleAction { name: "a".into(), steps: vec![] }],
        )];
        let report = crate::lint(&flow);
        assert!(report.valid, "dead-rule reads must not reject the flow: {report:#?}");
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "DGF001" && d.severity == Severity::Warning));
    }
}
