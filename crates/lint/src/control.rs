//! Pass 2: control-flow checks.
//!
//! Everything here is decidable without a grid: constant conditions,
//! duplicate or unreachable arms, empty bodies, and rule plumbing the
//! engine will never exercise (only `beforeEntry`/`afterExit` fire) or
//! will reject at runtime (`execute`/`query` inside rule actions).

use crate::join_path;
use dgf_dgl::{
    Children, ControlPattern, Diagnostic, DglOperation, Expr, Flow, IterSource, Scope, Severity,
    Step, UserDefinedRule, Value, RULE_AFTER_EXIT, RULE_BEFORE_ENTRY,
};
use std::collections::HashSet;

pub(crate) fn run(flow: &Flow, diags: &mut Vec<Diagnostic>) {
    walk_flow(flow, "", diags);
}

/// Evaluate an expression that references no variables. `None` when the
/// expression does reference variables (not a constant) or fails to
/// evaluate (the def/use pass owns that complaint).
fn const_value(expr: &Expr) -> Option<Value> {
    if !expr.referenced_vars().is_empty() {
        return None;
    }
    expr.eval(&Scope::root()).ok()
}

fn walk_flow(flow: &Flow, prefix: &str, diags: &mut Vec<Diagnostic>) {
    let here = join_path(prefix, &flow.name);

    if flow.children.is_empty() {
        diags.push(
            Diagnostic::new("DGF015", Severity::Warning, &here, "flow has no children and does nothing")
                .with_hint("add steps or sub-flows, or delete the flow"),
        );
    }

    match &flow.logic.pattern {
        ControlPattern::While(cond) => match const_value(cond) {
            Some(v) if v.truthy() => diags.push(
                Diagnostic::new(
                    "DGF012",
                    Severity::Warning,
                    &here,
                    format!("while condition `{cond}` is always true; the loop only ends when the engine's iteration limit fails the run"),
                )
                .with_hint("make the condition depend on a variable the body updates"),
            ),
            Some(_) => diags.push(
                Diagnostic::new(
                    "DGF013",
                    Severity::Warning,
                    &here,
                    format!("while condition `{cond}` is always false; the body never runs"),
                )
                .with_hint("make the condition depend on a variable, or remove the loop"),
            ),
            None => {}
        },
        ControlPattern::ForEach { source: IterSource::Items(items), .. } if items.is_empty() => {
            diags.push(
                Diagnostic::new("DGF014", Severity::Warning, &here, "for-each iterates over an empty item list; the body never runs")
                    .with_hint("add items, or switch to a collection or query source"),
            );
        }
        ControlPattern::Switch { on, cases } => {
            let mut seen: HashSet<Option<&str>> = HashSet::new();
            for case in cases {
                let key = case.value.as_deref();
                if !seen.insert(key) {
                    let label = key.map_or("default".to_owned(), |v| format!("`{v}`"));
                    diags.push(
                        Diagnostic::new(
                            "DGF010",
                            Severity::Error,
                            &here,
                            format!("duplicate switch arm for {label}; the engine always picks the first, the second can never run"),
                        )
                        .with_hint("remove or re-value the duplicate arm"),
                    );
                }
            }
            if let Some(v) = const_value(on) {
                let chosen = v.to_string();
                diags.push(
                    Diagnostic::new(
                        "DGF011",
                        Severity::Warning,
                        &here,
                        format!("switch expression `{on}` is constant (`{chosen}`); every other arm is unreachable"),
                    )
                    .with_hint("switch on a variable, or replace the switch with the arm that matches"),
                );
            }
        }
        ControlPattern::Sequential | ControlPattern::Parallel | ControlPattern::ForEach { .. } => {}
    }

    check_rules(&flow.logic.rules, &here, diags);

    // Sequential siblings after a constant-true while loop never start.
    let sequential = matches!(flow.logic.pattern, ControlPattern::Sequential);
    let child_infinite = |pattern: &ControlPattern| {
        matches!(pattern, ControlPattern::While(c) if const_value(c).is_some_and(|v| v.truthy()))
    };
    match &flow.children {
        Children::Flows(flows) => {
            let mut dead_from = None;
            for (i, f) in flows.iter().enumerate() {
                if sequential {
                    if let Some(first) = dead_from {
                        if first == i {
                            diags.push(dead_sibling(&here, &flows[i - 1].name, &f.name));
                        }
                    } else if child_infinite(&f.logic.pattern) {
                        dead_from = Some(i + 1);
                    }
                }
                walk_flow(f, &here, diags);
            }
        }
        Children::Steps(steps) => {
            for s in steps {
                walk_step(s, &here, diags);
            }
        }
    }
}

fn dead_sibling(here: &str, looping: &str, dead: &str) -> Diagnostic {
    Diagnostic::new(
        "DGF016",
        Severity::Warning,
        join_path(here, dead),
        format!("unreachable: sequential sibling `{looping}` loops forever, so `{dead}` (and anything after it) never starts"),
    )
    .with_hint("fix the preceding loop's condition, or move this work before it")
}

fn walk_step(step: &Step, prefix: &str, diags: &mut Vec<Diagnostic>) {
    let here = join_path(prefix, &step.name);
    check_rules(&step.rules, &here, diags);
}

fn check_rules(rules: &[UserDefinedRule], node: &str, diags: &mut Vec<Diagnostic>) {
    for rule in rules {
        let fires = rule.name == RULE_BEFORE_ENTRY || rule.name == RULE_AFTER_EXIT;
        if !fires {
            diags.push(
                Diagnostic::new(
                    "DGF017",
                    Severity::Warning,
                    node,
                    format!("rule `{}` never fires: the engine only fires `beforeEntry` and `afterExit`", rule.name),
                )
                .with_hint("rename the rule to beforeEntry or afterExit, or remove it"),
            );
        } else if let Some(v) = const_value(&rule.condition) {
            // Mirror the engine's selection: exact name match, else the
            // single action when the value is truthy.
            let selected = rule.actions.iter().any(|a| a.name == v.to_string())
                || (v.truthy() && rule.actions.len() == 1);
            if !rule.actions.is_empty() && !selected {
                diags.push(
                    Diagnostic::new(
                        "DGF018",
                        Severity::Warning,
                        node,
                        format!(
                            "rule `{}` has a constant condition (`{v}`) that selects none of its {} action(s)",
                            rule.name,
                            rule.actions.len()
                        ),
                    )
                    .with_hint("make the condition evaluate to an action's name, or to a truthy value with a single action"),
                );
            }
        }
        for action in &rule.actions {
            for s in &action.steps {
                let severity = if fires { Severity::Error } else { Severity::Warning };
                let op = match &s.operation {
                    DglOperation::Execute { .. } => Some("execute"),
                    DglOperation::Query { .. } => Some("query"),
                    _ => None,
                };
                if let Some(op) = op {
                    let suffix = if fires { "" } else { " (in a rule that never fires)" };
                    diags.push(
                        Diagnostic::new(
                            "DGF019",
                            severity,
                            join_path(node, &s.name),
                            format!("`{op}` is not allowed inside a rule action; the engine rejects it at runtime{suffix}"),
                        )
                        .with_hint("move the operation into a regular step and let the rule set a variable instead"),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_dgl::{Case, FlowBuilder, RuleAction};

    fn codes(flow: &Flow) -> Vec<(String, Severity)> {
        crate::lint(flow).diagnostics.iter().map(|d| (d.code.clone(), d.severity)).collect()
    }

    fn notify(name: &str) -> Step {
        Step::new(name, DglOperation::Notify { message: "x".into() })
    }

    #[test]
    fn constant_while_conditions_warn_both_ways() {
        let t = FlowBuilder::while_loop("t", "true").unwrap().add_step(notify("n")).build().unwrap();
        assert!(codes(&t).contains(&("DGF012".into(), Severity::Warning)));
        let f = FlowBuilder::while_loop("f", "1 > 2").unwrap().add_step(notify("n")).build().unwrap();
        assert!(codes(&f).contains(&("DGF013".into(), Severity::Warning)));
        // A variable-dependent condition is not constant.
        let v = FlowBuilder::while_loop("v", "i < 3").unwrap().var("i", "0").add_step(notify("n")).build().unwrap();
        assert!(!codes(&v).iter().any(|(c, _)| c == "DGF012" || c == "DGF013"));
    }

    #[test]
    fn duplicate_case_arms_are_errors_and_constant_switch_warns() {
        let mut flow = FlowBuilder::sequential("s").add_step(notify("a")).add_step(notify("b")).build().unwrap();
        flow.variables.push(dgf_dgl::VarDecl::new("mode", "fast"));
        flow.logic.pattern = ControlPattern::Switch {
            on: Expr::parse("mode").unwrap(),
            cases: vec![
                Case { value: Some("fast".into()) },
                Case { value: Some("fast".into()) },
            ],
        };
        assert!(codes(&flow).contains(&("DGF010".into(), Severity::Error)));

        flow.logic.pattern = ControlPattern::Switch {
            on: Expr::parse("'fast'").unwrap(),
            cases: vec![Case { value: Some("fast".into()) }, Case { value: Some("slow".into()) }],
        };
        let got = codes(&flow);
        assert!(got.contains(&("DGF011".into(), Severity::Warning)), "{got:?}");
    }

    #[test]
    fn empty_foreach_and_empty_flow_warn() {
        let empty_items = FlowBuilder::for_each_items("e", "f", Vec::<String>::new())
            .add_step(notify("n"))
            .build()
            .unwrap();
        assert!(codes(&empty_items).contains(&("DGF014".into(), Severity::Warning)));

        let hollow = Flow::sequence("hollow", vec![]);
        assert!(codes(&hollow).contains(&("DGF015".into(), Severity::Warning)));
    }

    #[test]
    fn sequential_siblings_after_an_infinite_loop_are_dead() {
        let spin = FlowBuilder::while_loop("spin", "true").unwrap().add_step(notify("n")).build().unwrap();
        let after = Flow::sequence("after", vec![notify("n")]);
        let outer = Flow {
            name: "outer".into(),
            variables: vec![],
            logic: dgf_dgl::FlowLogic::sequential(),
            children: Children::Flows(vec![spin.clone(), after.clone()]),
        };
        let got = codes(&outer);
        assert!(got.contains(&("DGF016".into(), Severity::Warning)), "{got:?}");

        // Parallel siblings are fine: they all start together.
        let outer = Flow::parallel_flows("outer", vec![spin, after]);
        assert!(!codes(&outer).iter().any(|(c, _)| c == "DGF016"));
    }

    #[test]
    fn rule_plumbing_diagnostics() {
        // Custom-named rule never fires.
        let mut flow = Flow::sequence("f", vec![notify("n")]);
        flow.logic.rules =
            vec![UserDefinedRule::unconditional("onDisaster", vec![notify("cleanup")])];
        assert!(codes(&flow).contains(&("DGF017".into(), Severity::Warning)));

        // Constant condition that selects none of two actions.
        flow.logic.rules = vec![UserDefinedRule::new(
            RULE_BEFORE_ENTRY,
            Expr::parse("'nosuch'").unwrap(),
            vec![
                RuleAction { name: "a".into(), steps: vec![] },
                RuleAction { name: "b".into(), steps: vec![] },
            ],
        )];
        assert!(codes(&flow).contains(&("DGF018".into(), Severity::Warning)));

        // Execute inside a firing rule action is an error; inside a dead
        // rule it is only a warning.
        let exec = Step::new(
            "run",
            DglOperation::Execute {
                code: "c".into(),
                nominal_secs: "1".into(),
                resource_type: None,
                inputs: vec![],
                outputs: vec![],
            },
        );
        flow.logic.rules = vec![UserDefinedRule::unconditional(RULE_BEFORE_ENTRY, vec![exec.clone()])];
        assert!(codes(&flow).contains(&("DGF019".into(), Severity::Error)));
        flow.logic.rules = vec![UserDefinedRule::unconditional("dead", vec![exec])];
        let got = codes(&flow);
        assert!(got.contains(&("DGF019".into(), Severity::Warning)), "{got:?}");
        assert!(crate::lint(&flow).valid);
    }
}
