//! # datagridflows — managing long-run processes on datagrids
//!
//! A from-scratch Rust implementation of *Jagatheesan et al.,
//! "Datagridflows: Managing Long-Run Processes on Datagrids"* (VLDB DMG
//! 2005): the **Data Grid Language (DGL)** and a **Datagridflow
//! Management System (DfMS)** running on an SRB-style data grid over a
//! deterministic simulated infrastructure.
//!
//! This umbrella crate re-exports the whole system through namespaced
//! modules:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`xml`] | `dgf-xml` | the minimal XML layer DGL documents use |
//! | [`simgrid`] | `dgf-simgrid` | simulated domains, storage, network, clock |
//! | [`dgms`] | `dgf-dgms` | the data grid: namespace, replicas, metadata, MD5 |
//! | [`dgl`] | `dgf-dgl` | the language: flows, steps, rules, requests |
//! | [`scheduler`] | `dgf-scheduler` | planners, cost model, SLAs, virtual data |
//! | [`triggers`] | `dgf-triggers` | event–condition–action datagrid triggers |
//! | [`ilm`] | `dgf-ilm` | information lifecycle management, star flows |
//! | [`dfms`] | `dgf-dfms` | the engine: lifecycle, provenance, server, P2P |
//! | [`baselines`] | `dgf-baselines` | cron-script ILM, client-side engine |
//!
//! ## Quickstart
//!
//! ```
//! use datagridflows::prelude::*;
//!
//! // A two-site simulated datagrid with one registered admin.
//! let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
//! let mut users = UserRegistry::new();
//! users.register(Principal::new("arun", topology.domain_ids().next().unwrap()));
//! users.make_admin("arun").unwrap();
//! let grid = DataGrid::new(topology, users);
//!
//! // A DfMS server with a cost-based scheduler.
//! let mut dfms = Dfms::new(grid, Scheduler::new(PlannerKind::CostBased, 42));
//!
//! // Describe a datagridflow in DGL and run it.
//! let flow = FlowBuilder::sequential("hello-grid")
//!     .step("mk", DglOperation::CreateCollection { path: "/home".into() })
//!     .step("put", DglOperation::Ingest {
//!         path: "/home/data.bin".into(), size: "1000000".into(), resource: "site0-disk".into(),
//!     })
//!     .step("sum", DglOperation::Checksum { path: "/home/data.bin".into(), resource: None, register: true })
//!     .build()
//!     .unwrap();
//! let txn = dfms.submit_flow("arun", flow).unwrap();
//! dfms.pump();
//! assert_eq!(dfms.status(&txn, None).unwrap().state, RunState::Completed);
//! ```

/// The XML layer (re-export of `dgf-xml`).
pub mod xml {
    pub use dgf_xml::*;
}

/// The simulated physical grid (re-export of `dgf-simgrid`).
pub mod simgrid {
    pub use dgf_simgrid::*;
}

/// The data grid management system (re-export of `dgf-dgms`).
pub mod dgms {
    pub use dgf_dgms::*;
}

/// The Data Grid Language (re-export of `dgf-dgl`).
pub mod dgl {
    pub use dgf_dgl::*;
}

/// Schedulers and brokers (re-export of `dgf-scheduler`).
pub mod scheduler {
    pub use dgf_scheduler::*;
}

/// Datagrid triggers (re-export of `dgf-triggers`).
pub mod triggers {
    pub use dgf_triggers::*;
}

/// Information lifecycle management (re-export of `dgf-ilm`).
pub mod ilm {
    pub use dgf_ilm::*;
}

/// The DfMS engine and server (re-export of `dgf-dfms`).
pub mod dfms {
    pub use dgf_dfms::*;
}

/// Flight recorder and metrics registry (re-export of `dgf-obs`).
pub mod obs {
    pub use dgf_obs::*;
}

/// Baseline systems for comparison (re-export of `dgf-baselines`).
pub mod baselines {
    pub use dgf_baselines::*;
}

/// Pre-execution static analysis of DGL flows (re-export of `dgf-lint`).
pub mod lint {
    pub use dgf_lint::*;
}

/// The write-ahead journal behind DfMS crash recovery (re-export of
/// `dgf-journal`). See `docs/RECOVERY.md`.
pub mod journal {
    pub use dgf_journal::*;
}

/// The most common imports, for examples and applications.
pub mod prelude {
    pub use crate::baselines::{ClientCrash, ClientSideEngine, CronEntry, CronRule, CronScriptIlm};
    pub use crate::dfms::{
        BisectOutcome, BisectPredicate, Dfms, DfmsNetwork, DfmsServer, EngineMetrics,
        JournalConfig, Materialized, ProvenanceError, ProvenanceQuery, ProvenanceRecord,
        ProvenanceStore, RunOptions, StateDiff, StepOutcome, SyncPolicy, TimeTravel,
    };
    pub use crate::dgl::{
        BisectSpec, DataGridRequest, DataGridResponse, DglOperation, ErrorPolicy, Expr, Flow,
        FlowBuilder, FlowStatusQuery, ProfileQuery, ProfileReport, RecoveryQuery, RecoveryReport,
        ReplayStats, ReportEvent, ReportMetric, ReportSpan, RequestBody, ResponseBody, Diagnostic,
        FlowValidationQuery, RunState, Severity, StatusReport, Step, TelemetryQuery,
        TelemetryReport, TimeTravelQuery, TimeTravelReport, ValidationReport, Value,
    };
    // The attribution (dgf-why) wire pair. `WaitState` / `AlertState`
    // exist in both dgf-dgl and dgf-obs; the prelude exports the wire
    // versions (reach the analysis-side twins via `crate::obs::…`).
    pub use crate::dgl::{
        AlertState, WaitState, WhyAlert, WhyBottleneck, WhyPath, WhyQuery, WhyReport, WhySegment,
    };
    pub use crate::journal::Journal;
    pub use crate::lint::{lint, lint_with_grid, GridContext};
    pub use crate::obs::{
        decode_perfetto, to_chrome_trace, to_perfetto_trace, CountingAllocator, EventTail,
        FlowHealth, HealthConfig, HealthState, MetricsSnapshot, Obs, ObsEvent, ProfileSnapshot,
        Rollup, SamplingConfig, Span, SpanContext, SpanId, SpanKind, TimeSeriesStore, TraceId,
    };
    pub use crate::dgms::{
        DataGrid, EventKind, LogicalPath, MetaQuery, MetaTriple, Operation, Permission, Principal,
        UserRegistry,
    };
    pub use crate::ilm::{
        exploding_star_flow, imploding_star_flow, DomainValueModel, IlmJob, PolicyEngine, TierSpec,
    };
    pub use crate::scheduler::{
        AbstractTask, BindingMode, CostWeights, PlannerKind, Scheduler, Sla, VirtualDataCatalog,
    };
    pub use crate::simgrid::{
        Duration, FailureEvent, FailurePlan, GridBuilder, GridPreset, ScheduleWindow, SimTime,
        StorageResource, StorageTier, Topology,
    };
    pub use crate::triggers::{OrderingPolicy, Timing, Trigger, TriggerAction, TriggerEngine};
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_layers_are_reachable() {
        // Compile-time re-export sanity.
        let _ = crate::xml::Element::new("x");
        let _ = crate::simgrid::SimTime::ZERO;
        let _ = crate::dgl::Value::Int(1);
        let _ = crate::scheduler::PlannerKind::ALL;
        let _ = crate::dgms::Permission::Read;
    }
}
