//! The journal file: framed append, validated open, compaction.

use crate::crc32::crc32;
use dgf_xml::Element;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// The 8-byte file header: magic plus format version.
pub const FILE_HEADER: &[u8; 8] = b"DGFJRNL1";

/// Upper bound on one record's payload. A frame claiming more than this
/// is treated as a torn tail, not an allocation request — a corrupt
/// length field must never make the reader try to allocate the moon.
pub const MAX_RECORD_LEN: u32 = 256 * 1024 * 1024;

/// What a record is, derived from its element name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// `<genesis>` — configuration pin, written once at creation.
    Genesis,
    /// `<command>` — an external input; the replay script.
    Command,
    /// `<transition>` — a derived effect; verification material.
    Transition,
    /// `<checkpoint>` — full snapshot; compaction boundary.
    Checkpoint,
}

impl RecordKind {
    /// The element name carrying this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            RecordKind::Genesis => "genesis",
            RecordKind::Command => "command",
            RecordKind::Transition => "transition",
            RecordKind::Checkpoint => "checkpoint",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "genesis" => RecordKind::Genesis,
            "command" => RecordKind::Command,
            "transition" => RecordKind::Transition,
            "checkpoint" => RecordKind::Checkpoint,
            _ => return None,
        })
    }
}

/// One validated journal record.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Journal sequence number; strictly increasing, with gaps after
    /// compaction (seqs are assigned once and never renumbered).
    pub seq: u64,
    /// The record's kind (mirrors `body.name`).
    pub kind: RecordKind,
    /// The record body. Attribute `seq` is stamped by the journal; all
    /// other content belongs to the engine's vocabulary.
    pub body: Element,
}

/// What `Journal::open` found on disk.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpenReport {
    /// True when the file did not exist (or was empty) and was created.
    pub created: bool,
    /// Valid records read.
    pub records: u64,
    /// Bytes of torn tail truncated from the end of the file — residue
    /// of a crash mid-write. Zero on a clean open.
    pub truncated_bytes: u64,
    /// Sequence number of the newest checkpoint record, if any.
    pub last_checkpoint_seq: Option<u64>,
}

/// Outcome of a compaction pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Records kept (genesis, commands, the checkpoint, and everything
    /// after it).
    pub kept: u64,
    /// Transition and stale checkpoint records dropped.
    pub dropped: u64,
    /// File size before, in bytes.
    pub bytes_before: u64,
    /// File size after, in bytes.
    pub bytes_after: u64,
}

/// When appended records are fsynced.
///
/// Regardless of policy, non-transition records (genesis, commands,
/// checkpoints) are synced before `append` returns: that is the
/// write-ahead contract. The policy governs only transition batching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Sync after every record. Maximum durability, maximum latency.
    EveryRecord,
    /// Sync after every `n` unsynced transitions (and on every command).
    Batch(u32),
    /// Never sync transitions eagerly; they ride along with the next
    /// command sync or an explicit [`Journal::sync`].
    Manual,
}

impl Default for SyncPolicy {
    fn default() -> Self {
        SyncPolicy::Batch(32)
    }
}

/// Journal errors. Torn tails are *not* errors — they are truncated and
/// reported via [`OpenReport`]; this type covers real I/O failures,
/// foreign files, and misuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// An OS-level I/O failure, with context.
    Io(String),
    /// The file exists but does not start with the journal header.
    BadHeader(String),
    /// An append was handed a record the journal cannot frame (unknown
    /// element name, oversized payload).
    BadRecord(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(msg) => write!(f, "journal I/O: {msg}"),
            JournalError::BadHeader(msg) => write!(f, "not a journal: {msg}"),
            JournalError::BadRecord(msg) => write!(f, "unframeable record: {msg}"),
        }
    }
}

impl std::error::Error for JournalError {}

fn io_err(context: &str, e: std::io::Error) -> JournalError {
    JournalError::Io(format!("{context}: {e}"))
}

/// An open, appendable journal file.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
    policy: SyncPolicy,
    next_seq: u64,
    records: u64,
    offset: u64,
    unsynced: u32,
    last_checkpoint_seq: Option<u64>,
    sync_calls: u64,
    sync_nanos: u64,
}

impl Journal {
    /// Open (or create) the journal at `path`.
    ///
    /// Returns the journal positioned for append, every valid record
    /// already in the file, and a report. A torn tail — a partial or
    /// corrupt final frame left by a crash — is truncated from the file
    /// before the journal is handed back, so the next append lands on a
    /// clean boundary.
    pub fn open(
        path: &Path,
        policy: SyncPolicy,
    ) -> Result<(Journal, Vec<Record>, OpenReport), JournalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err(&format!("open {}", path.display()), e))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(|e| io_err("read", e))?;

        let mut report = OpenReport::default();
        let records;
        let good_len;
        if bytes.is_empty() {
            file.write_all(FILE_HEADER).map_err(|e| io_err("write header", e))?;
            file.sync_data().map_err(|e| io_err("sync header", e))?;
            report.created = true;
            records = Vec::new();
            good_len = FILE_HEADER.len() as u64;
        } else {
            let (parsed, good) = parse_frames(&bytes)?;
            if good < bytes.len() as u64 {
                report.truncated_bytes = bytes.len() as u64 - good;
                file.set_len(good).map_err(|e| io_err("truncate torn tail", e))?;
                file.sync_data().map_err(|e| io_err("sync truncation", e))?;
            }
            records = parsed;
            good_len = good;
        }
        report.records = records.len() as u64;
        report.last_checkpoint_seq = records
            .iter()
            .rev()
            .find(|r| r.kind == RecordKind::Checkpoint)
            .map(|r| r.seq);
        file.seek(SeekFrom::Start(good_len)).map_err(|e| io_err("seek", e))?;

        let journal = Journal {
            path: path.to_owned(),
            file,
            policy,
            next_seq: records.last().map(|r| r.seq + 1).unwrap_or(1),
            records: records.len() as u64,
            offset: good_len,
            unsynced: 0,
            last_checkpoint_seq: report.last_checkpoint_seq,
            sync_calls: 0,
            sync_nanos: 0,
        };
        Ok((journal, records, report))
    }

    /// Read a journal without opening it for append and without
    /// modifying the file; a torn tail is reported, not truncated.
    pub fn read(path: &Path) -> Result<(Vec<Record>, OpenReport), JournalError> {
        let bytes =
            fs::read(path).map_err(|e| io_err(&format!("read {}", path.display()), e))?;
        if bytes.is_empty() {
            return Ok((Vec::new(), OpenReport { created: true, ..Default::default() }));
        }
        let (records, good) = parse_frames(&bytes)?;
        let report = OpenReport {
            created: false,
            records: records.len() as u64,
            truncated_bytes: bytes.len() as u64 - good,
            last_checkpoint_seq: records
                .iter()
                .rev()
                .find(|r| r.kind == RecordKind::Checkpoint)
                .map(|r| r.seq),
        };
        Ok((records, report))
    }

    /// Append one record. `body.name` must be one of the four journal
    /// element names; the journal stamps a `seq` attribute and returns
    /// the assigned sequence number. Durability follows the write-ahead
    /// contract described on [`SyncPolicy`].
    pub fn append(&mut self, mut body: Element) -> Result<u64, JournalError> {
        let kind = RecordKind::from_name(&body.name).ok_or_else(|| {
            JournalError::BadRecord(format!(
                "element <{}> is not a journal record (want genesis/command/transition/checkpoint)",
                body.name
            ))
        })?;
        let seq = self.next_seq;
        body.set_attr("seq", seq.to_string());
        let payload = body.to_xml().into_bytes();
        if payload.len() as u64 > MAX_RECORD_LEN as u64 {
            return Err(JournalError::BadRecord(format!(
                "payload of {} bytes exceeds the {} byte frame limit",
                payload.len(),
                MAX_RECORD_LEN
            )));
        }
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame).map_err(|e| io_err("append", e))?;
        self.offset += frame.len() as u64;
        self.next_seq += 1;
        self.records += 1;
        if kind == RecordKind::Checkpoint {
            self.last_checkpoint_seq = Some(seq);
        }
        let sync_now = kind != RecordKind::Transition
            || match self.policy {
                SyncPolicy::EveryRecord => true,
                SyncPolicy::Batch(n) => self.unsynced + 1 >= n.max(1),
                SyncPolicy::Manual => false,
            };
        if sync_now {
            self.sync()?;
        } else {
            self.unsynced += 1;
        }
        Ok(seq)
    }

    /// Force any batched transitions to disk.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        let started = std::time::Instant::now();
        self.file.sync_data().map_err(|e| io_err("sync", e))?;
        self.sync_calls += 1;
        self.sync_nanos += started.elapsed().as_nanos() as u64;
        self.unsynced = 0;
        Ok(())
    }

    /// Drain the fsync cost accumulated since the last call as
    /// `(calls, wall_nanos)`. Every [`Journal::sync`] — whether forced
    /// by the [`SyncPolicy`] during [`Journal::append`] or issued
    /// directly — is counted, so a caller polling after each append
    /// attributes fsync cost exactly once. Wall time is report-only:
    /// it varies between runs and must never feed deterministic state.
    pub fn take_sync_profile(&mut self) -> (u64, u64) {
        let taken = (self.sync_calls, self.sync_nanos);
        self.sync_calls = 0;
        self.sync_nanos = 0;
        taken
    }

    /// Compact the journal at a checkpoint boundary: keep the genesis
    /// record, every command (the replay script is retained from
    /// genesis), the checkpoint at `checkpoint_seq`, and every record
    /// after it; drop older transitions and stale checkpoints, whose
    /// content the checkpoint subsumes. Atomic: the new file is written
    /// beside the old and renamed over it.
    pub fn compact(&mut self, checkpoint_seq: u64) -> Result<CompactStats, JournalError> {
        self.sync()?;
        let (records, _) = Self::read(&self.path)?;
        let bytes_before = self.offset;
        let keep: Vec<&Record> = records
            .iter()
            .filter(|r| match r.kind {
                RecordKind::Genesis | RecordKind::Command => true,
                RecordKind::Checkpoint | RecordKind::Transition => r.seq >= checkpoint_seq,
            })
            .collect();
        let dropped = records.len() - keep.len();

        let tmp = self.path.with_extension("compact-tmp");
        {
            let mut out = File::create(&tmp)
                .map_err(|e| io_err(&format!("create {}", tmp.display()), e))?;
            out.write_all(FILE_HEADER).map_err(|e| io_err("write header", e))?;
            for r in &keep {
                let payload = r.body.to_xml().into_bytes();
                out.write_all(&(payload.len() as u32).to_le_bytes())
                    .and_then(|_| out.write_all(&crc32(&payload).to_le_bytes()))
                    .and_then(|_| out.write_all(&payload))
                    .map_err(|e| io_err("write compacted frame", e))?;
            }
            out.sync_data().map_err(|e| io_err("sync compacted file", e))?;
        }
        fs::rename(&tmp, &self.path).map_err(|e| io_err("rename compacted file", e))?;

        self.file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(|e| io_err("reopen after compaction", e))?;
        self.offset = self.file.seek(SeekFrom::End(0)).map_err(|e| io_err("seek", e))?;
        self.records = keep.len() as u64;
        self.unsynced = 0;
        Ok(CompactStats {
            kept: keep.len() as u64,
            dropped: dropped as u64,
            bytes_before,
            bytes_after: self.offset,
        })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The sequence number of the last appended record, if any.
    pub fn last_seq(&self) -> Option<u64> {
        if self.next_seq > 1 {
            Some(self.next_seq - 1)
        } else {
            None
        }
    }

    /// Records currently in the file (after any compaction).
    pub fn records_in_file(&self) -> u64 {
        self.records
    }

    /// Current file size in bytes — the journal position.
    pub fn bytes(&self) -> u64 {
        self.offset
    }

    /// Seq of the newest checkpoint in the file, if any.
    pub fn last_checkpoint_seq(&self) -> Option<u64> {
        self.last_checkpoint_seq
    }

    /// Crash-simulation and surgery helper: truncate the file at `path`
    /// so only the first `keep` records remain. Returns the number of
    /// records actually kept (≤ `keep`).
    pub fn truncate_records(path: &Path, keep: usize) -> Result<usize, JournalError> {
        let bytes =
            fs::read(path).map_err(|e| io_err(&format!("read {}", path.display()), e))?;
        let (records, _) = parse_frames(&bytes)?;
        let kept = keep.min(records.len());
        // Walk the frames again to find the byte boundary after `kept`.
        let mut off = FILE_HEADER.len();
        for _ in 0..kept {
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            off += 8 + len;
        }
        let f = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err("open for truncate", e))?;
        f.set_len(off as u64).map_err(|e| io_err("truncate", e))?;
        f.sync_data().map_err(|e| io_err("sync", e))?;
        Ok(kept)
    }
}

/// Parse the byte image of a journal: header, then frames until the
/// first violation. Returns the valid records and the byte offset of
/// the end of the last valid frame (everything past it is torn tail).
fn parse_frames(bytes: &[u8]) -> Result<(Vec<Record>, u64), JournalError> {
    if bytes.len() < FILE_HEADER.len() || &bytes[..FILE_HEADER.len()] != FILE_HEADER {
        return Err(JournalError::BadHeader(format!(
            "missing {:?} header",
            String::from_utf8_lossy(FILE_HEADER)
        )));
    }
    let mut records = Vec::new();
    let mut off = FILE_HEADER.len();
    let mut good = off as u64;
    let mut last_seq = 0u64;
    while bytes.len() - off >= 8 {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            break; // corrupt length field
        }
        let len = len as usize;
        if bytes.len() - off - 8 < len {
            break; // short frame: torn mid-payload
        }
        let payload = &bytes[off + 8..off + 8 + len];
        if crc32(payload) != crc {
            break; // payload bit-rot or torn mid-frame
        }
        let Ok(text) = std::str::from_utf8(payload) else { break };
        let Ok(body) = dgf_xml::parse(text) else { break };
        let Some(kind) = RecordKind::from_name(&body.name) else { break };
        let Some(seq) = body.attr("seq").and_then(|s| s.parse::<u64>().ok()) else { break };
        if seq <= last_seq {
            break; // seqs are strictly increasing; anything else is corruption
        }
        last_seq = seq;
        off += 8 + len;
        good = off as u64;
        records.push(Record { seq, kind, body });
    }
    Ok((records, good))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "dgf-journal-test-{}-{name}-{n}.jrnl",
            std::process::id()
        ))
    }

    fn cmd(kind: &str) -> Element {
        Element::new("command").with_attr("kind", kind)
    }

    fn trans(what: &str) -> Element {
        Element::new("transition").with_attr("kind", what)
    }

    #[test]
    fn append_reopen_round_trip() {
        let p = tmp("roundtrip");
        let (mut j, recs, report) = Journal::open(&p, SyncPolicy::EveryRecord).unwrap();
        assert!(report.created && recs.is_empty());
        assert_eq!(j.append(Element::new("genesis").with_attr("label", "g")).unwrap(), 1);
        assert_eq!(j.append(cmd("pump")).unwrap(), 2);
        assert_eq!(j.append(trans("step.start")).unwrap(), 3);
        drop(j);

        let (j2, recs, report) = Journal::open(&p, SyncPolicy::default()).unwrap();
        assert!(!report.created);
        assert_eq!(report.records, 3);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].kind, RecordKind::Genesis);
        assert_eq!(recs[1].body.attr("kind"), Some("pump"));
        assert_eq!(recs[2].seq, 3);
        assert_eq!(j2.next_seq(), 4);
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let p = tmp("torn");
        let (mut j, _, _) = Journal::open(&p, SyncPolicy::EveryRecord).unwrap();
        for i in 0..5 {
            j.append(cmd(&format!("c{i}"))).unwrap();
        }
        let full = j.bytes();
        drop(j);
        // Tear the file at every byte length between records 3 and 5:
        // reopen must always surface exactly the intact prefix.
        let bytes = fs::read(&p).unwrap();
        let mut boundaries = vec![FILE_HEADER.len()];
        let mut off = FILE_HEADER.len();
        while off < bytes.len() {
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            off += 8 + len;
            boundaries.push(off);
        }
        assert_eq!(boundaries.len(), 6);
        for cut in boundaries[3] + 1..full as usize {
            fs::write(&p, &bytes[..cut]).unwrap();
            let (_, recs, report) = Journal::open(&p, SyncPolicy::default()).unwrap();
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(recs.len(), whole, "cut at byte {cut}");
            assert!(report.truncated_bytes > 0 || boundaries.contains(&cut));
            // After open, the file itself holds only the valid prefix.
            assert_eq!(fs::metadata(&p).unwrap().len() as usize, boundaries[whole]);
        }
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn corrupt_crc_truncates_from_the_flip() {
        let p = tmp("crc");
        let (mut j, _, _) = Journal::open(&p, SyncPolicy::EveryRecord).unwrap();
        for i in 0..4 {
            j.append(cmd(&format!("c{i}"))).unwrap();
        }
        drop(j);
        let mut bytes = fs::read(&p).unwrap();
        // Flip one payload byte inside the third record.
        let mut off = FILE_HEADER.len();
        for _ in 0..2 {
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            off += 8 + len;
        }
        bytes[off + 12] ^= 0x40;
        fs::write(&p, &bytes).unwrap();
        let (_, recs, report) = Journal::open(&p, SyncPolicy::default()).unwrap();
        assert_eq!(recs.len(), 2, "records after the corrupt one are unreachable");
        assert!(report.truncated_bytes > 0);
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn foreign_files_are_rejected() {
        let p = tmp("foreign");
        fs::write(&p, b"<provenance/>").unwrap();
        match Journal::open(&p, SyncPolicy::default()) {
            Err(JournalError::BadHeader(_)) => {}
            other => panic!("expected BadHeader, got {other:?}"),
        }
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn unknown_elements_are_unframeable() {
        let p = tmp("badrec");
        let (mut j, _, _) = Journal::open(&p, SyncPolicy::default()).unwrap();
        match j.append(Element::new("telemetry")) {
            Err(JournalError::BadRecord(_)) => {}
            other => panic!("expected BadRecord, got {other:?}"),
        }
        drop(j);
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn compaction_keeps_commands_and_tail() {
        let p = tmp("compact");
        let (mut j, _, _) = Journal::open(&p, SyncPolicy::EveryRecord).unwrap();
        j.append(Element::new("genesis").with_attr("label", "g")).unwrap();
        j.append(cmd("submit")).unwrap(); // seq 2
        for i in 0..10 {
            j.append(trans(&format!("s{i}"))).unwrap(); // 3..=12
        }
        let ck = j.append(Element::new("checkpoint")).unwrap(); // 13
        j.append(cmd("pump")).unwrap(); // 14
        j.append(trans("after")).unwrap(); // 15
        let before = j.records_in_file();
        let stats = j.compact(ck).unwrap();
        assert_eq!(before, 15);
        assert_eq!(stats.dropped, 10, "pre-checkpoint transitions dropped");
        assert_eq!(stats.kept, 5, "genesis + 2 commands + checkpoint + tail transition");
        assert!(stats.bytes_after < stats.bytes_before);
        assert_eq!(j.last_checkpoint_seq(), Some(ck));

        // Appends continue with un-renumbered seqs and the file reopens.
        let s = j.append(cmd("resume")).unwrap();
        assert_eq!(s, 16);
        drop(j);
        let (_, recs, report) = Journal::open(&p, SyncPolicy::default()).unwrap();
        assert_eq!(report.truncated_bytes, 0);
        let seqs: Vec<u64> = recs.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![1, 2, 13, 14, 15, 16]);
        assert_eq!(report.last_checkpoint_seq, Some(13));
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn truncate_records_cuts_on_boundaries() {
        let p = tmp("cut");
        let (mut j, _, _) = Journal::open(&p, SyncPolicy::EveryRecord).unwrap();
        for i in 0..6 {
            j.append(cmd(&format!("c{i}"))).unwrap();
        }
        drop(j);
        assert_eq!(Journal::truncate_records(&p, 4).unwrap(), 4);
        let (recs, report) = Journal::read(&p).unwrap();
        assert_eq!(recs.len(), 4);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(Journal::truncate_records(&p, 99).unwrap(), 4, "keep is clamped");
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn manual_policy_batches_until_sync() {
        let p = tmp("manual");
        let (mut j, _, _) = Journal::open(&p, SyncPolicy::Manual).unwrap();
        j.append(trans("a")).unwrap();
        j.append(trans("b")).unwrap();
        j.sync().unwrap();
        j.append(cmd("pump")).unwrap(); // commands sync themselves
        drop(j);
        let (recs, _) = Journal::read(&p).unwrap();
        assert_eq!(recs.len(), 3);
        fs::remove_file(&p).unwrap();
    }
}
