//! CRC-32/IEEE (the zlib/gzip polynomial), table-driven.
//!
//! Hand-rolled because the journal must build offline; the table is
//! computed at compile time from the reflected polynomial 0xEDB88320.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32/IEEE of `data` (init `!0`, final xor `!0` — the common zlib
/// convention, so values match any standard crc32 tool).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let a = crc32(b"datagridflow");
        let b = crc32(b"datagridflqw");
        assert_ne!(a, b);
    }
}
