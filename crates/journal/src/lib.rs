//! # dgf-journal — the DfMS write-ahead journal
//!
//! The paper's premise (§1, §3.1) is that datagridflows are *long-run*
//! processes: they outlive any single client or server session, so the
//! engine state that drives them must outlive the process too. This
//! crate is the durability layer: an append-only, CRC-framed journal of
//! engine commands and state transitions, with periodic checkpoints and
//! log compaction, from which a crashed DfMS can be rebuilt by
//! deterministic replay.
//!
//! ## What goes in the file
//!
//! Every record is one XML element (the same `dgf_xml` trees the rest of
//! the system speaks), framed in binary so torn tails are detectable.
//! Four element names are meaningful to the journal itself:
//!
//! - `<genesis>` — written once when a journal is created; pins a label
//!   describing the engine configuration the log assumes. Recovery
//!   refuses to replay a journal against a differently-configured engine.
//! - `<command>` — an external input to the engine (submit, pump,
//!   lifecycle action, failure injection...). Commands are the *replay
//!   script*: re-applying them in order to an identical engine
//!   reproduces identical state, because the engine is deterministic.
//! - `<transition>` — an effect the engine derived while executing a
//!   command (step started/finished, scheduler binding, trigger firing,
//!   a provenance record). Transitions are not needed to replay — they
//!   are re-derived — but they let recovery *verify* the replay and
//!   know, before re-driving anything, which steps already completed.
//! - `<checkpoint>` — a full provenance snapshot plus run-tree and
//!   counter summary. At a checkpoint boundary the journal is
//!   compacted: transitions older than the checkpoint are dropped
//!   (their content lives in the checkpoint), commands are kept from
//!   genesis (they are the replay script and stay cheap).
//!
//! The journal does not interpret record bodies beyond the element name;
//! the engine in `dgf-dfms` owns the vocabulary inside them.
//!
//! ## On-disk format
//!
//! ```text
//! file   := header frame*
//! header := "DGFJRNL1"                      (8 bytes: magic + version)
//! frame  := len:u32le crc:u32le payload     (crc = CRC-32/IEEE of payload)
//! payload:= compact XML, one element        (`Element::to_xml`)
//! ```
//!
//! Binary length-prefixed framing (rather than line-based) is deliberate:
//! XML attribute values may carry raw newlines, so no text delimiter is
//! safe. A reader accepts the longest valid prefix; anything after the
//! first short, corrupt, or unparsable frame is a *torn tail* — the
//! residue of a crash mid-write — and is truncated, never an error.
//!
//! ## Durability
//!
//! Appends are buffered through the OS like any write; [`SyncPolicy`]
//! controls when `fsync` pins them to the platter. Commands, checkpoints
//! and genesis records are always synced before the append returns —
//! that is the write-ahead contract: a command is durable before the
//! engine acts on it. Transitions are batched per policy; losing a few
//! costs nothing but verification coverage, since replay re-derives them.

mod crc32;
mod journal;

pub use journal::{
    CompactStats, Journal, JournalError, OpenReport, Record, RecordKind, SyncPolicy,
    FILE_HEADER, MAX_RECORD_LEN,
};

pub use crc32::crc32;
