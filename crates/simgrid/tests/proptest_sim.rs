//! Property tests over the simulation substrate: routing, windows,
//! transfers, and the event queue.

use dgf_simgrid::{
    Duration, EventQueue, GridBuilder, GridPreset, ScheduleWindow, SimTime, TransferModel,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Routing is symmetric in latency and bottleneck on undirected links.
    #[test]
    fn routes_are_symmetric(domains in 2u32..10, a in 0u32..10, b in 0u32..10) {
        let a = a % domains;
        let b = b % domains;
        let t = GridBuilder::preset(GridPreset::UniformMesh { domains });
        let fwd = t.route(dgf_simgrid::DomainId(a), dgf_simgrid::DomainId(b)).unwrap();
        let rev = t.route(dgf_simgrid::DomainId(b), dgf_simgrid::DomainId(a)).unwrap();
        prop_assert_eq!(fwd.latency, rev.latency);
        prop_assert_eq!(fwd.bottleneck_bandwidth, rev.bottleneck_bandwidth);
        prop_assert_eq!(fwd.links.len(), rev.links.len());
        if a == b {
            prop_assert!(fwd.is_local());
        }
    }

    /// In a tiered grid, every pair of domains is connected, and hop
    /// counts never exceed the tree diameter (4: T2→T1→T0→T1→T2).
    #[test]
    fn tiered_grids_are_connected(t1 in 1u32..5, t2 in 1u32..4) {
        let t = GridBuilder::preset(GridPreset::Tiered { tier1: t1, tier2_per_tier1: t2 });
        for a in t.domain_ids() {
            for b in t.domain_ids() {
                let route = t.route(a, b);
                prop_assert!(route.is_some(), "{a} -> {b} disconnected");
                prop_assert!(route.unwrap().links.len() <= 4);
            }
        }
    }

    /// next_open always lands inside the window, at or after the probe.
    #[test]
    fn next_open_is_sound(
        days in proptest::collection::vec(0u8..7, 1..7),
        start in 0u8..24,
        len in 1u8..24,
        probe_hours in 0u64..(24 * 21),
    ) {
        let end = (start + len).min(24);
        prop_assume!(end > start);
        let w = ScheduleWindow::new(&days, start, end);
        let probe = SimTime::from_hours(probe_hours);
        let open = w.next_open(probe);
        prop_assert!(open >= probe);
        prop_assert!(w.is_open(open), "next_open({probe}) = {open} is closed");
        // Nothing earlier (on hour boundaries) is open after the probe.
        let mut check = probe;
        while check < open {
            // only check hour boundaries after probe
            let next_hour = SimTime::from_hours(check.as_secs() / 3600 + 1);
            if next_hour >= open { break; }
            prop_assert!(!w.is_open(next_hour), "{next_hour} open before {open}");
            check = next_hour;
        }
    }

    /// remaining_open never exceeds the window's nominal length and is
    /// zero exactly when closed.
    #[test]
    fn remaining_open_is_bounded(
        days in proptest::collection::vec(0u8..7, 1..7),
        start in 0u8..23,
        len in 1u8..12,
        probe_hours in 0u64..(24 * 14),
    ) {
        let end = (start + len).min(24);
        prop_assume!(end > start);
        let w = ScheduleWindow::new(&days, start, end);
        let probe = SimTime::from_hours(probe_hours);
        let remaining = w.remaining_open(probe);
        if w.is_open(probe) {
            prop_assert!(remaining > Duration::ZERO);
            // Bounded by consecutive permitted days: at most 7 days.
            prop_assert!(remaining <= Duration::from_days(7));
        } else {
            prop_assert_eq!(remaining, Duration::ZERO);
        }
    }

    /// Transfers only slow down as contention rises, and all shares are
    /// released after finish.
    #[test]
    fn contention_monotonicity(concurrent in 1usize..12, gb in 1u64..8) {
        let t = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
        let src = t.storage_by_name("site0-pfs").unwrap();
        let dst = t.storage_by_name("site1-pfs").unwrap();
        let route = t.route(t.storage_domain(src), t.storage_domain(dst)).unwrap();
        let mut model = TransferModel::new();
        let bytes = gb * 1_000_000_000;
        let mut handles = Vec::new();
        let mut last = Duration::ZERO;
        for _ in 0..concurrent {
            let (d, h) = model.begin(&t, src, dst, &route, bytes);
            prop_assert!(d >= last, "duration decreased under added contention");
            last = d;
            handles.push(h);
        }
        for h in handles {
            model.finish(h);
        }
        prop_assert_eq!(model.total_active_shares(), 0);
    }

    /// The event queue is a stable priority queue: pops are ordered by
    /// (time, insertion sequence).
    #[test]
    fn event_queue_is_stable(times in proptest::collection::vec(0u64..1_000, 1..50)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_secs(*t), (*t, i));
        }
        let mut expected: Vec<(u64, usize)> = times.iter().copied().enumerate().map(|(i, t)| (t, i)).collect();
        expected.sort_by_key(|(t, i)| (*t, *i));
        let popped: Vec<(u64, usize)> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        prop_assert_eq!(popped, expected);
    }

    /// The failure generator is deterministic per seed and balanced.
    #[test]
    fn failure_plans_are_deterministic(seed in 0u64..1_000, mtbf_h in 1u64..24) {
        let t = GridBuilder::preset(GridPreset::UniformMesh { domains: 3 });
        let mk = || dgf_simgrid::FailurePlan::generate(
            &t,
            Duration::from_days(10),
            Duration::from_hours(mtbf_h),
            Duration::from_hours(1),
            seed,
        );
        let p1 = mk();
        let p2 = mk();
        prop_assert_eq!(p1.events(), p2.events());
        let downs = p1.events().iter().filter(|(_, e)| matches!(e,
            dgf_simgrid::FailureEvent::Compute(_, false) | dgf_simgrid::FailureEvent::Link(_, false))).count();
        let ups = p1.events().len() - downs;
        prop_assert_eq!(downs, ups);
    }
}
