//! Virtual time: [`SimTime`] instants and [`Duration`] spans.
//!
//! Resolution is one microsecond; ranges comfortably cover the "years
//! later" provenance-query horizon the paper requires (u64 µs ≈ 584k
//! years).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulation clock, in microseconds since epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

pub(crate) const MICROS_PER_SEC: u64 = 1_000_000;
pub(crate) const SECS_PER_HOUR: u64 = 3_600;
pub(crate) const SECS_PER_DAY: u64 = 86_400;

impl SimTime {
    /// The simulation epoch. By convention this is **midnight on a
    /// Monday**, which is what [`crate::ScheduleWindow`] assumes when
    /// mapping instants to days-of-week.
    pub const ZERO: SimTime = SimTime(0);

    /// Build an instant from whole seconds since epoch.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Build an instant from whole hours since epoch.
    pub fn from_hours(hours: u64) -> Self {
        Self::from_secs(hours * SECS_PER_HOUR)
    }

    /// Build an instant from whole days since epoch.
    pub fn from_days(days: u64) -> Self {
        Self::from_secs(days * SECS_PER_DAY)
    }

    /// Whole seconds since epoch (truncating).
    pub fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Seconds since epoch as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Day index since epoch (day 0 = the epoch Monday).
    pub fn day(self) -> u64 {
        self.as_secs() / SECS_PER_DAY
    }

    /// Day of week, 0 = Monday .. 6 = Sunday.
    pub fn day_of_week(self) -> u8 {
        (self.day() % 7) as u8
    }

    /// Hour of day, 0..=23.
    pub fn hour_of_day(self) -> u8 {
        ((self.as_secs() % SECS_PER_DAY) / SECS_PER_HOUR) as u8
    }

    /// The span from `earlier` to `self`; saturates at zero if `earlier`
    /// is actually later.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The start (midnight) of the day containing this instant.
    pub fn start_of_day(self) -> SimTime {
        SimTime::from_secs(self.day() * SECS_PER_DAY)
    }
}

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Build from microseconds.
    pub fn from_micros(micros: u64) -> Self {
        Duration(micros)
    }

    /// Build from milliseconds.
    pub fn from_millis(millis: u64) -> Self {
        Duration(millis * 1_000)
    }

    /// Build from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        Duration(secs * MICROS_PER_SEC)
    }

    /// Build from fractional seconds; negative or non-finite values clamp
    /// to zero (transfer models can produce tiny negative rounding).
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return Duration::ZERO;
        }
        Duration((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Build from whole hours.
    pub fn from_hours(hours: u64) -> Self {
        Self::from_secs(hours * SECS_PER_HOUR)
    }

    /// Build from whole days.
    pub fn from_days(days: u64) -> Self {
        Self::from_secs(days * SECS_PER_DAY)
    }

    /// Whole seconds (truncating).
    pub fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.as_secs_f64();
        if secs >= SECS_PER_DAY as f64 {
            write!(f, "{:.2}d", secs / SECS_PER_DAY as f64)
        } else if secs >= SECS_PER_HOUR as f64 {
            write!(f, "{:.2}h", secs / SECS_PER_HOUR as f64)
        } else {
            write!(f, "{secs:.3}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calendar_mapping_starts_monday_midnight() {
        assert_eq!(SimTime::ZERO.day_of_week(), 0);
        assert_eq!(SimTime::ZERO.hour_of_day(), 0);
        assert_eq!(SimTime::from_days(5).day_of_week(), 5, "Saturday");
        assert_eq!(SimTime::from_days(7).day_of_week(), 0, "next Monday");
        assert_eq!(SimTime::from_hours(26).hour_of_day(), 2);
        assert_eq!(SimTime::from_hours(26).day(), 1);
    }

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::from_secs(100) + Duration::from_millis(250);
        assert_eq!(t.0, 100_250_000);
        assert_eq!(t - SimTime::from_secs(100), Duration::from_millis(250));
        assert_eq!(SimTime::from_secs(1) - SimTime::from_secs(5), Duration::ZERO, "saturating");
    }

    #[test]
    fn float_construction_clamps() {
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NAN), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(1.5), Duration::from_millis(1500));
    }

    #[test]
    fn display_is_scaled_for_humans() {
        assert_eq!(Duration::from_secs(30).to_string(), "30.000s");
        assert_eq!(Duration::from_hours(2).to_string(), "2.00h");
        assert_eq!(Duration::from_days(3).to_string(), "3.00d");
    }

    #[test]
    fn start_of_day_truncates() {
        let t = SimTime::from_hours(50); // day 2, 02:00
        assert_eq!(t.start_of_day(), SimTime::from_days(2));
    }
}
