//! Schedule windows: "an ILM process could only be run at some domains
//! during non-working hours or on weekends" (paper, §2.1).

use crate::time::{Duration, SimTime};

/// A weekly recurring availability window.
///
/// A window is defined by a set of permitted days-of-week (0 = Monday)
/// and a permitted hour range within those days. The hour range may wrap
/// midnight (`start_hour > end_hour`), in which case the window runs from
/// `start_hour` to midnight and from midnight to `end_hour` *of days whose
/// preceding day is permitted* — i.e. the night shift belongs to the day
/// it started on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleWindow {
    days: [bool; 7],
    start_hour: u8,
    end_hour: u8, // exclusive; == 24 means "to midnight"
}

impl ScheduleWindow {
    /// A window that is always open.
    pub fn always() -> Self {
        ScheduleWindow { days: [true; 7], start_hour: 0, end_hour: 24 }
    }

    /// Open on the given days (0 = Monday .. 6 = Sunday) between
    /// `start_hour` (inclusive) and `end_hour` (exclusive, max 24).
    ///
    /// # Panics
    /// If `end_hour > 24`, `start_hour >= 24`, or no day is permitted.
    pub fn new(days: &[u8], start_hour: u8, end_hour: u8) -> Self {
        assert!(start_hour < 24, "start_hour out of range");
        assert!(end_hour <= 24, "end_hour out of range");
        assert!(!days.is_empty(), "a window needs at least one day");
        let mut mask = [false; 7];
        for &d in days {
            assert!(d < 7, "day of week out of range");
            mask[d as usize] = true;
        }
        ScheduleWindow { days: mask, start_hour, end_hour }
    }

    /// Weekends, all day — the classic archival window.
    pub fn weekends() -> Self {
        Self::new(&[5, 6], 0, 24)
    }

    /// Weekday nights from `start` to `end` (wrapping midnight when
    /// `end <= start`), e.g. `off_hours(20, 6)`.
    pub fn off_hours(start: u8, end: u8) -> Self {
        let mut w = Self::new(&[0, 1, 2, 3, 4], start, end.max(1));
        w.end_hour = end; // allow wrap encoding (end <= start)
        w
    }

    /// Rebuild a window from its raw parts (the inverse of
    /// [`ScheduleWindow::parts`]) — serialization support for callers
    /// that persist run options, e.g. the DfMS write-ahead journal.
    /// Wrapping encodings (`end_hour <= start_hour`) are accepted as-is.
    ///
    /// # Panics
    /// If `start_hour >= 24`, `end_hour > 24`, or no day is permitted.
    pub fn from_parts(days: [bool; 7], start_hour: u8, end_hour: u8) -> Self {
        assert!(start_hour < 24, "start_hour out of range");
        assert!(end_hour <= 24, "end_hour out of range");
        assert!(days.iter().any(|d| *d), "a window needs at least one day");
        ScheduleWindow { days, start_hour, end_hour }
    }

    /// The window's raw parts: permitted days (0 = Monday), start hour
    /// (inclusive), end hour (exclusive; `<= start` encodes a midnight
    /// wrap).
    pub fn parts(&self) -> ([bool; 7], u8, u8) {
        (self.days, self.start_hour, self.end_hour)
    }

    fn day_open(&self, dow: u8) -> bool {
        self.days[dow as usize]
    }

    fn wraps(&self) -> bool {
        self.end_hour <= self.start_hour
    }

    /// Is the window open at instant `t`?
    pub fn is_open(&self, t: SimTime) -> bool {
        let dow = t.day_of_week();
        let hour = t.hour_of_day();
        if !self.wraps() {
            return self.day_open(dow) && hour >= self.start_hour && hour < self.end_hour;
        }
        // Wrapping: [start, 24) on a permitted day, or [0, end) on the day
        // after a permitted day.
        if self.day_open(dow) && hour >= self.start_hour {
            return true;
        }
        let prev = (dow + 6) % 7;
        self.day_open(prev) && hour < self.end_hour
    }

    /// The earliest instant `>= t` at which the window is open.
    ///
    /// Always terminates: a window permits at least one day, so scanning
    /// hour starts for at most 8 days finds an opening.
    pub fn next_open(&self, t: SimTime) -> SimTime {
        if self.is_open(t) {
            return t;
        }
        // Advance to the next whole hour, then scan hour boundaries.
        let hour_micros = 3_600 * 1_000_000u64;
        let mut probe = SimTime((t.0 / hour_micros + 1) * hour_micros);
        for _ in 0..(24 * 8) {
            if self.is_open(probe) {
                return probe;
            }
            probe += Duration::from_hours(1);
        }
        unreachable!("a ScheduleWindow always opens within 8 days");
    }

    /// How long from `t` until the window next opens — the wait an
    /// arriving task experiences. Returns [`Duration::ZERO`] if the
    /// window is already open (observability layers histogram this).
    pub fn wait_until_open(&self, t: SimTime) -> Duration {
        self.next_open(t).since(t)
    }

    /// How long from `t` until the window closes, assuming it is open at
    /// `t`. Returns [`Duration::ZERO`] if it is closed.
    pub fn remaining_open(&self, t: SimTime) -> Duration {
        if !self.is_open(t) {
            return Duration::ZERO;
        }
        let hour_micros = 3_600 * 1_000_000u64;
        let mut probe = SimTime((t.0 / hour_micros + 1) * hour_micros);
        while self.is_open(probe) {
            probe += Duration::from_hours(1);
        }
        // The window closes at the start of the first closed hour.
        probe.since(t)
    }
}

impl Default for ScheduleWindow {
    fn default() -> Self {
        Self::always()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Epoch (t=0) is Monday 00:00.
    fn at(day: u64, hour: u64) -> SimTime {
        SimTime::from_hours(day * 24 + hour)
    }

    #[test]
    fn always_open() {
        let w = ScheduleWindow::always();
        assert!(w.is_open(SimTime::ZERO));
        assert!(w.is_open(at(6, 23)));
        assert_eq!(w.next_open(at(3, 3)), at(3, 3));
    }

    #[test]
    fn weekend_window() {
        let w = ScheduleWindow::weekends();
        assert!(!w.is_open(at(0, 12)), "Monday noon closed");
        assert!(!w.is_open(at(4, 23)), "Friday night closed");
        assert!(w.is_open(at(5, 0)), "Saturday midnight open");
        assert!(w.is_open(at(6, 23)), "Sunday 23:00 open");
        assert!(!w.is_open(at(7, 0)), "next Monday closed");
        assert_eq!(w.next_open(at(0, 12)), at(5, 0));
        assert_eq!(w.next_open(at(5, 10)), at(5, 10), "already open");
    }

    #[test]
    fn business_hours_window() {
        let w = ScheduleWindow::new(&[0, 1, 2, 3, 4], 9, 17);
        assert!(w.is_open(at(0, 9)));
        assert!(w.is_open(at(0, 16)));
        assert!(!w.is_open(at(0, 17)), "end is exclusive");
        assert!(!w.is_open(at(5, 12)), "Saturday closed");
        assert_eq!(w.next_open(at(0, 18)), at(1, 9), "opens Tuesday morning");
    }

    #[test]
    fn off_hours_wraps_midnight() {
        let w = ScheduleWindow::off_hours(20, 6);
        assert!(w.is_open(at(0, 21)), "Monday 21:00");
        assert!(w.is_open(at(1, 3)), "Tuesday 03:00 belongs to Monday's night");
        assert!(!w.is_open(at(1, 12)), "Tuesday noon closed");
        assert!(w.is_open(at(5, 4)), "Saturday 04:00 belongs to Friday's shift");
        assert!(!w.is_open(at(5, 23)), "Saturday evening closed (weekday window)");
        assert!(!w.is_open(at(6, 3)), "Sunday 03:00 closed: Saturday not a window day");
    }

    #[test]
    fn remaining_open_measures_to_the_boundary() {
        let w = ScheduleWindow::new(&[0], 9, 12);
        assert_eq!(w.remaining_open(at(0, 10)), Duration::from_hours(2));
        assert_eq!(w.remaining_open(at(0, 13)), Duration::ZERO);
        // Mid-hour: from 10:30 to 12:00 is 1.5 hours.
        let t = at(0, 10) + Duration::from_secs(1800);
        assert_eq!(w.remaining_open(t), Duration::from_secs(5400));
    }

    #[test]
    #[should_panic(expected = "day of week")]
    fn invalid_day_panics() {
        let _ = ScheduleWindow::new(&[7], 0, 4);
    }
}
