//! Physical storage resources: the systems an SRB server would broker.

use crate::time::Duration;
use std::fmt;

/// Identifier of a storage resource within a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StorageId(pub u32);

impl fmt::Display for StorageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sr{}", self.0)
    }
}

/// Storage technology tiers, ordered cheapest-and-slowest first.
///
/// Parameters below are era-appropriate magnitudes (2005 hardware); the
/// experiments only depend on their *relative* ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StorageTier {
    /// Tape silo (e.g. HPSS backend): huge, cheap, minutes of mount latency.
    Tape,
    /// Disk-fronted archive (e.g. SAM-FS): cheap, seconds of latency.
    Archive,
    /// Commodity disk array.
    Disk,
    /// Parallel filesystem (e.g. GPFS on a cluster).
    ParallelFs,
    /// RAM-backed cache.
    Memory,
}

impl StorageTier {
    /// All tiers, cheapest first.
    pub const ALL: [StorageTier; 5] = [
        StorageTier::Tape,
        StorageTier::Archive,
        StorageTier::Disk,
        StorageTier::ParallelFs,
        StorageTier::Memory,
    ];

    /// Default access latency before the first byte moves.
    pub fn default_latency(self) -> Duration {
        match self {
            StorageTier::Tape => Duration::from_secs(60),
            StorageTier::Archive => Duration::from_secs(5),
            StorageTier::Disk => Duration::from_millis(10),
            StorageTier::ParallelFs => Duration::from_millis(5),
            StorageTier::Memory => Duration::from_micros(100),
        }
    }

    /// Default sequential bandwidth in bytes/second.
    pub fn default_bandwidth(self) -> u64 {
        const MB: u64 = 1_000_000;
        match self {
            StorageTier::Tape => 30 * MB,
            StorageTier::Archive => 60 * MB,
            StorageTier::Disk => 80 * MB,
            StorageTier::ParallelFs => 400 * MB,
            StorageTier::Memory => 2_000 * MB,
        }
    }

    /// Default monthly cost per gigabyte, in milli-dollars (the ILM
    /// optimizer minimizes this; only ratios matter).
    pub fn default_cost_per_gb_month(self) -> u64 {
        match self {
            StorageTier::Tape => 1,
            StorageTier::Archive => 5,
            StorageTier::Disk => 40,
            StorageTier::ParallelFs => 120,
            StorageTier::Memory => 4_000,
        }
    }
}

impl fmt::Display for StorageTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StorageTier::Tape => "tape",
            StorageTier::Archive => "archive",
            StorageTier::Disk => "disk",
            StorageTier::ParallelFs => "parallel-fs",
            StorageTier::Memory => "memory",
        };
        f.write_str(s)
    }
}

/// A physical storage system mapped into the datagrid's logical resource
/// namespace by an SRB-style server.
#[derive(Debug, Clone)]
pub struct StorageResource {
    /// Logical resource name ("sdsc-hpss", "ucsd-gpfs", ...).
    pub name: String,
    /// Technology tier.
    pub tier: StorageTier,
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Bytes currently allocated.
    pub used: u64,
    /// First-byte latency.
    pub latency: Duration,
    /// Sequential bandwidth, bytes/second.
    pub bandwidth: u64,
    /// Monthly cost per GB in milli-dollars.
    pub cost_per_gb_month: u64,
    /// Whether the resource is currently reachable (failure injection).
    pub online: bool,
}

impl StorageResource {
    /// A resource with tier-default performance characteristics.
    pub fn with_tier_defaults(name: impl Into<String>, tier: StorageTier, capacity: u64) -> Self {
        StorageResource {
            name: name.into(),
            tier,
            capacity,
            used: 0,
            latency: tier.default_latency(),
            bandwidth: tier.default_bandwidth(),
            cost_per_gb_month: tier.default_cost_per_gb_month(),
            online: true,
        }
    }

    /// Remaining free bytes.
    pub fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.used)
    }

    /// Try to allocate `bytes`; false if capacity would be exceeded.
    #[must_use]
    pub fn allocate(&mut self, bytes: u64) -> bool {
        if self.free() < bytes {
            return false;
        }
        self.used += bytes;
        true
    }

    /// Release previously allocated bytes (saturating).
    pub fn release(&mut self, bytes: u64) {
        self.used = self.used.saturating_sub(bytes);
    }

    /// Time to read `bytes` sequentially from this resource alone
    /// (latency + size/bandwidth), ignoring network effects.
    pub fn access_time(&self, bytes: u64) -> Duration {
        self.latency + Duration::from_secs_f64(bytes as f64 / self.bandwidth as f64)
    }

    /// Monthly cost in milli-dollars of holding `bytes` here.
    pub fn holding_cost(&self, bytes: u64) -> u64 {
        // Round up to whole GB like storage billing does.
        let gb = bytes.div_ceil(1_000_000_000).max(1);
        gb * self.cost_per_gb_month
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_order_cheap_to_fast() {
        let costs: Vec<_> = StorageTier::ALL.iter().map(|t| t.default_cost_per_gb_month()).collect();
        assert!(costs.windows(2).all(|w| w[0] < w[1]), "cost increases along ALL: {costs:?}");
        let bws: Vec<_> = StorageTier::ALL.iter().map(|t| t.default_bandwidth()).collect();
        assert!(bws.windows(2).all(|w| w[0] < w[1]), "bandwidth increases along ALL");
        let lats: Vec<_> = StorageTier::ALL.iter().map(|t| t.default_latency()).collect();
        assert!(lats.windows(2).all(|w| w[0] > w[1]), "latency decreases along ALL");
    }

    #[test]
    fn allocation_respects_capacity() {
        let mut r = StorageResource::with_tier_defaults("d", StorageTier::Disk, 100);
        assert!(r.allocate(60));
        assert!(r.allocate(40));
        assert!(!r.allocate(1), "full");
        assert_eq!(r.free(), 0);
        r.release(50);
        assert_eq!(r.free(), 50);
        r.release(1_000);
        assert_eq!(r.used, 0, "release saturates");
    }

    #[test]
    fn access_time_includes_latency_and_bandwidth() {
        let r = StorageResource::with_tier_defaults("t", StorageTier::Tape, u64::MAX);
        let t = r.access_time(300_000_000); // 300 MB at 30 MB/s = 10 s + 60 s mount
        assert_eq!(t.as_secs(), 70);
        // Memory: dominated by transfer, tiny latency.
        let m = StorageResource::with_tier_defaults("m", StorageTier::Memory, u64::MAX);
        assert!(m.access_time(2_000_000_000).as_secs() <= 1);
    }

    #[test]
    fn holding_cost_rounds_up_to_gb() {
        let r = StorageResource::with_tier_defaults("d", StorageTier::Disk, u64::MAX);
        assert_eq!(r.holding_cost(1), 40, "1 byte bills as 1 GB");
        assert_eq!(r.holding_cost(1_500_000_000), 80, "1.5 GB bills as 2 GB");
        let tape = StorageResource::with_tier_defaults("t", StorageTier::Tape, u64::MAX);
        assert!(tape.holding_cost(10_000_000_000) < r.holding_cost(10_000_000_000));
    }
}
