//! The deterministic discrete-event queue driving every simulation.

use crate::time::{Duration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic discrete-event queue.
///
/// Events are ordered by scheduled time; ties break by insertion sequence,
/// so two runs that schedule the same events in the same order pop them in
/// the same order — the property every experiment in `EXPERIMENTS.md`
/// relies on.
///
/// The queue owns the clock: popping an event advances `now` to the
/// event's timestamp. Scheduling in the past is a logic error and panics
/// in debug builds (it silently clamps to `now` in release, matching how
/// a real scheduler would treat an already-due timer).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: SimTime::ZERO }
    }

    /// The current simulation instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at` (clamped to `now`).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past: {at} < {}", self.now);
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Schedule `event` after `delay` from now.
    pub fn schedule_in(&mut self, delay: Duration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(s) = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Peek at the timestamp of the next event without popping.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Advance the clock directly (used when external work — e.g. the
    /// threaded DfMS front-end — injects time passage between events).
    pub fn advance_to(&mut self, at: SimTime) {
        debug_assert!(at >= self.now);
        self.now = self.now.max(at);
    }

    /// Drain every event in timestamp order, applying `f`. Events that
    /// `f` schedules during the drain are also processed. Returns the
    /// number of events processed.
    pub fn run_to_completion(&mut self, mut f: impl FnMut(&mut Self, SimTime, E)) -> usize {
        let mut n = 0;
        while let Some((at, event)) = self.pop() {
            n += 1;
            f(self, at, event);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), "late");
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_at(SimTime::from_secs(1), "b");
        q.schedule_at(SimTime::from_secs(5), "mid");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["a", "b", "mid", "late"]);
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(Duration::from_secs(3), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop().unwrap();
        assert_eq!(q.now(), SimTime::from_secs(3));
    }

    #[test]
    fn schedule_in_is_relative_to_current_now() {
        let mut q = EventQueue::new();
        q.schedule_in(Duration::from_secs(2), 1u32);
        q.pop().unwrap();
        q.schedule_in(Duration::from_secs(2), 2u32);
        let (t, e) = q.pop().unwrap();
        assert_eq!(e, 2);
        assert_eq!(t, SimTime::from_secs(4));
    }

    #[test]
    fn run_to_completion_handles_cascading_events() {
        let mut q = EventQueue::new();
        q.schedule_in(Duration::from_secs(1), 3u32);
        let mut seen = Vec::new();
        let n = q.run_to_completion(|q, _, remaining| {
            seen.push(remaining);
            if remaining > 0 {
                q.schedule_in(Duration::from_secs(1), remaining - 1);
            }
        });
        assert_eq!(n, 4);
        assert_eq!(seen, [3, 2, 1, 0]);
        assert_eq!(q.now(), SimTime::from_secs(4));
    }

    #[test]
    fn next_time_peeks_without_advancing() {
        let mut q = EventQueue::new();
        assert!(q.next_time().is_none());
        q.schedule_at(SimTime::from_secs(9), ());
        assert_eq!(q.next_time(), Some(SimTime::from_secs(9)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
