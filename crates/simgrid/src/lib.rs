//! # dgf-simgrid — deterministic discrete-event datagrid infrastructure
//!
//! The Datagridflows paper (Jagatheesan et al., VLDB DMG 2005) evaluates
//! its ideas on production grids: SRB deployments federating storage at
//! SDSC, UK hospitals (BBSRC), CERN tiers (CMS), and SCEC sites. None of
//! that hardware exists here, so this crate simulates the *physical* layer
//! those systems ran on:
//!
//! * a virtual clock and deterministic event queue ([`EventQueue`]),
//! * administrative **domains** holding **storage resources** (tape →
//!   memory tiers, each with latency / bandwidth / cost) and **compute
//!   resources** ([`Topology`]),
//! * a **network** of inter-domain links with latency and shared
//!   bandwidth, plus routing ([`Route`], [`TransferModel`]),
//! * **schedule windows** ("run only on weekends / off-hours", §2.1 of the
//!   paper) ([`ScheduleWindow`]),
//! * a **failure injector** for resource churn experiments ([`FailurePlan`]).
//!
//! Everything above this crate (the DGMS, scheduler, DfMS) is the paper's
//! actual contribution; everything in this crate is the simulated
//! substitute for hardware, and is deliberately deterministic: the same
//! seed always yields the same trajectory.

mod builder;
mod compute;
mod event;
mod failure;
mod storage;
mod time;
mod topology;
mod transfer;
mod window;

pub use builder::{GridBuilder, GridPreset};
pub use compute::{ComputeId, ComputeResource};
pub use event::EventQueue;
pub use failure::{FailureEvent, FailurePlan};
pub use storage::{StorageId, StorageResource, StorageTier};
pub use time::{Duration, SimTime};
pub use topology::{Domain, DomainId, Link, LinkId, Route, Topology};
pub use transfer::{TransferHandle, TransferModel, TransferTotals};
pub use window::ScheduleWindow;
