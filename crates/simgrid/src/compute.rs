//! Compute resources: where grid-workflow business logic executes.

use crate::time::Duration;
use std::fmt;

/// Identifier of a compute resource within a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComputeId(pub u32);

impl fmt::Display for ComputeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cr{}", self.0)
    }
}

/// A cluster / node pool at one domain.
///
/// The paper's §2.3 cost model charges schedulers for "the number of CPU
/// cycles that would be left idle in the grid", so the resource tracks
/// busy slots explicitly.
#[derive(Debug, Clone)]
pub struct ComputeResource {
    /// Logical name ("sdsc-datastar", "scec-cluster", ...).
    pub name: String,
    /// Number of parallel execution slots (cores or nodes).
    pub slots: u32,
    /// Slots currently running tasks.
    pub busy: u32,
    /// Relative speed factor: a task's nominal duration is divided by
    /// this. 1.0 = reference machine.
    pub speed: f64,
    /// Whether the resource is currently reachable (failure injection).
    pub online: bool,
}

impl ComputeResource {
    /// A resource with `slots` slots at reference speed.
    pub fn new(name: impl Into<String>, slots: u32) -> Self {
        ComputeResource { name: name.into(), slots, busy: 0, speed: 1.0, online: true }
    }

    /// Builder-style speed override.
    #[must_use]
    pub fn with_speed(mut self, speed: f64) -> Self {
        assert!(speed > 0.0, "speed must be positive");
        self.speed = speed;
        self
    }

    /// Free execution slots.
    pub fn free_slots(&self) -> u32 {
        self.slots.saturating_sub(self.busy)
    }

    /// Try to claim one slot; false if saturated or offline.
    #[must_use]
    pub fn claim_slot(&mut self) -> bool {
        if !self.online || self.free_slots() == 0 {
            return false;
        }
        self.busy += 1;
        true
    }

    /// Release a claimed slot (saturating).
    pub fn release_slot(&mut self) {
        self.busy = self.busy.saturating_sub(1);
    }

    /// Wall time to execute a task whose nominal duration (on the
    /// reference machine) is `nominal`.
    pub fn execution_time(&self, nominal: Duration) -> Duration {
        Duration::from_secs_f64(nominal.as_secs_f64() / self.speed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_accounting() {
        let mut c = ComputeResource::new("c", 2);
        assert!(c.claim_slot());
        assert!(c.claim_slot());
        assert!(!c.claim_slot(), "saturated");
        c.release_slot();
        assert!(c.claim_slot());
        assert_eq!(c.free_slots(), 0);
        c.release_slot();
        c.release_slot();
        c.release_slot(); // saturating
        assert_eq!(c.busy, 0);
    }

    #[test]
    fn offline_resources_refuse_work() {
        let mut c = ComputeResource::new("c", 4);
        c.online = false;
        assert!(!c.claim_slot());
    }

    #[test]
    fn speed_scales_execution_time() {
        let fast = ComputeResource::new("fast", 1).with_speed(2.0);
        let slow = ComputeResource::new("slow", 1).with_speed(0.5);
        let nominal = Duration::from_secs(100);
        assert_eq!(fast.execution_time(nominal).as_secs(), 50);
        assert_eq!(slow.execution_time(nominal).as_secs(), 200);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speed_rejected() {
        let _ = ComputeResource::new("x", 1).with_speed(0.0);
    }
}
