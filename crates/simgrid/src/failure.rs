//! Deterministic failure injection for resource-churn experiments (E6).

use crate::compute::ComputeId;
use crate::storage::StorageId;
use crate::time::{Duration, SimTime};
use crate::topology::{LinkId, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One state change of one resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureEvent {
    /// A storage resource goes down / comes back.
    Storage(StorageId, bool),
    /// A compute resource goes down / comes back.
    Compute(ComputeId, bool),
    /// A link goes down / comes back.
    Link(LinkId, bool),
}

impl FailureEvent {
    /// Apply this event to a topology.
    pub fn apply(self, topology: &mut Topology) {
        match self {
            FailureEvent::Storage(id, online) => topology.storage_mut(id).online = online,
            FailureEvent::Compute(id, online) => topology.compute_mut(id).online = online,
            FailureEvent::Link(id, online) => topology.link_mut(id).online = online,
        }
    }
}

/// A pre-computed, seed-deterministic schedule of failures and repairs.
///
/// Churn is parameterized by mean-time-between-failures across the whole
/// grid and a fixed repair time; exponential inter-arrival times come
/// from the seeded RNG so the same seed replays the same outages.
#[derive(Debug, Clone)]
pub struct FailurePlan {
    events: Vec<(SimTime, FailureEvent)>,
}

impl FailurePlan {
    /// No failures at all.
    pub fn none() -> Self {
        FailurePlan { events: Vec::new() }
    }

    /// Generate a plan over `horizon` where some grid resource fails on
    /// average every `mtbf` and recovers after `repair`.
    ///
    /// Only compute resources and links fail (storage outages would strand
    /// replicas and are a different experiment); targets are drawn
    /// uniformly.
    pub fn generate(
        topology: &Topology,
        horizon: Duration,
        mtbf: Duration,
        repair: Duration,
        seed: u64,
    ) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut events = Vec::new();
        let compute: Vec<_> = topology.compute_ids().collect();
        let links: Vec<_> = (0..topology.link_count() as u32).map(LinkId).collect();
        if (compute.is_empty() && links.is_empty()) || mtbf == Duration::ZERO {
            return Self::none();
        }
        let mut t = SimTime::ZERO;
        loop {
            // Exponential inter-arrival with mean `mtbf`.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let gap = Duration::from_secs_f64(-u.ln() * mtbf.as_secs_f64());
            t += gap.max(Duration::from_secs(1));
            if t.since(SimTime::ZERO) > horizon {
                break;
            }
            let pick_compute = !compute.is_empty() && (links.is_empty() || rng.gen_bool(0.5));
            let (down, up) = if pick_compute {
                let id = compute[rng.gen_range(0..compute.len())];
                (FailureEvent::Compute(id, false), FailureEvent::Compute(id, true))
            } else {
                let id = links[rng.gen_range(0..links.len())];
                (FailureEvent::Link(id, false), FailureEvent::Link(id, true))
            };
            events.push((t, down));
            events.push((t + repair, up));
        }
        events.sort_by_key(|(t, _)| *t);
        FailurePlan { events }
    }

    /// All scheduled events in time order.
    pub fn events(&self) -> &[(SimTime, FailureEvent)] {
        &self.events
    }

    /// Apply every event scheduled in `(from, to]` to the topology,
    /// returning how many fired.
    pub fn apply_between(&self, topology: &mut Topology, from: SimTime, to: SimTime) -> usize {
        self.apply_between_logged(topology, from, to).len()
    }

    /// Like [`FailurePlan::apply_between`], but returns the fired events
    /// themselves (with their timestamps) so callers can forward them to
    /// an event log instead of just counting them.
    pub fn apply_between_logged(
        &self,
        topology: &mut Topology,
        from: SimTime,
        to: SimTime,
    ) -> Vec<(SimTime, FailureEvent)> {
        let mut fired = Vec::new();
        for (t, event) in &self.events {
            if *t > from && *t <= to {
                event.apply(topology);
                fired.push((*t, *event));
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::ComputeResource;
    use crate::storage::{StorageResource, StorageTier};

    fn grid() -> Topology {
        let mut t = Topology::new();
        let a = t.add_domain("a");
        let b = t.add_domain("b");
        t.add_link(a, b, Duration::from_millis(10), 1_000_000);
        t.add_compute(a, ComputeResource::new("ca", 4));
        t.add_compute(b, ComputeResource::new("cb", 4));
        t.add_storage(a, StorageResource::with_tier_defaults("sa", StorageTier::Disk, 1 << 30));
        t
    }

    #[test]
    fn same_seed_same_plan() {
        let t = grid();
        let p1 = FailurePlan::generate(&t, Duration::from_days(7), Duration::from_hours(6), Duration::from_hours(1), 42);
        let p2 = FailurePlan::generate(&t, Duration::from_days(7), Duration::from_hours(6), Duration::from_hours(1), 42);
        assert_eq!(p1.events(), p2.events());
        assert!(!p1.events().is_empty());
        let p3 = FailurePlan::generate(&t, Duration::from_days(7), Duration::from_hours(6), Duration::from_hours(1), 43);
        assert_ne!(p1.events(), p3.events(), "different seed, different outages");
    }

    #[test]
    fn every_failure_has_a_matching_repair() {
        let t = grid();
        let p = FailurePlan::generate(&t, Duration::from_days(30), Duration::from_hours(12), Duration::from_hours(2), 7);
        let downs = p.events().iter().filter(|(_, e)| matches!(e, FailureEvent::Compute(_, false) | FailureEvent::Link(_, false))).count();
        let ups = p.events().iter().filter(|(_, e)| matches!(e, FailureEvent::Compute(_, true) | FailureEvent::Link(_, true))).count();
        assert_eq!(downs, ups);
    }

    #[test]
    fn apply_between_flips_topology_state() {
        let mut t = grid();
        let p = FailurePlan::generate(&t, Duration::from_days(30), Duration::from_hours(4), Duration::from_hours(1), 1);
        let (first_t, first_e) = p.events()[0];
        assert!(matches!(first_e, FailureEvent::Compute(_, false) | FailureEvent::Link(_, false)));
        let fired = p.apply_between(&mut t, SimTime::ZERO, first_t);
        assert_eq!(fired, 1);
        let all_up = t.compute_ids().all(|c| t.compute(c).online) && (0..t.link_count() as u32).all(|l| t.link(LinkId(l)).online);
        assert!(!all_up, "something is down after the first event");
    }

    #[test]
    fn empty_grid_and_zero_mtbf_yield_no_failures() {
        let empty = Topology::new();
        assert!(FailurePlan::generate(&empty, Duration::from_days(1), Duration::from_hours(1), Duration::from_hours(1), 0).events().is_empty());
        let t = grid();
        assert!(FailurePlan::generate(&t, Duration::from_days(1), Duration::ZERO, Duration::from_hours(1), 0).events().is_empty());
        assert!(FailurePlan::none().events().is_empty());
    }

    #[test]
    fn mean_rate_roughly_matches_mtbf() {
        let t = grid();
        let horizon = Duration::from_days(100);
        let mtbf = Duration::from_hours(10);
        let p = FailurePlan::generate(&t, horizon, mtbf, Duration::from_hours(1), 99);
        let failures = p.events().len() / 2;
        let expected = (horizon.as_secs() / mtbf.as_secs()) as usize;
        assert!(failures > expected / 2 && failures < expected * 2, "{failures} vs expected ~{expected}");
    }
}
