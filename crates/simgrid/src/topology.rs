//! The grid topology: autonomous administrative domains, their resources,
//! and the wide-area links between them.

use crate::compute::{ComputeId, ComputeResource};
use crate::storage::{StorageId, StorageResource};
use crate::time::Duration;
use std::collections::BinaryHeap;
use std::fmt;

/// Identifier of an administrative domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u32);

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

/// Identifier of an inter-domain network link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// An autonomous administrative domain: one organization's slice of the
/// grid (a university, a hospital, a tier-1 center).
#[derive(Debug, Clone)]
pub struct Domain {
    /// Human name ("sdsc", "cern", "hospital-07").
    pub name: String,
    /// Storage resources owned by this domain.
    pub storage: Vec<StorageId>,
    /// Compute resources owned by this domain.
    pub compute: Vec<ComputeId>,
}

/// A bidirectional wide-area link between two domains.
#[derive(Debug, Clone)]
pub struct Link {
    /// Endpoint domains (unordered pair).
    pub endpoints: (DomainId, DomainId),
    /// One-way latency.
    pub latency: Duration,
    /// Capacity in bytes/second, shared by concurrent transfers.
    pub bandwidth: u64,
    /// Whether the link is up (failure injection).
    pub online: bool,
}

/// A routed path between two domains.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Links traversed, in order. Empty for intra-domain routes.
    pub links: Vec<LinkId>,
    /// Total one-way latency (zero intra-domain).
    pub latency: Duration,
    /// Bottleneck link capacity in bytes/second ([`u64::MAX`] intra-domain,
    /// meaning "limited only by the endpoints").
    pub bottleneck_bandwidth: u64,
}

impl Route {
    /// The degenerate route from a domain to itself.
    pub fn local() -> Self {
        Route { links: Vec::new(), latency: Duration::ZERO, bottleneck_bandwidth: u64::MAX }
    }

    /// True if the route stays inside one domain.
    pub fn is_local(&self) -> bool {
        self.links.is_empty()
    }
}

/// The whole physical grid: domains, resources, links.
///
/// Identifier types index into the internal vectors; identifiers are
/// only ever created by `add_*` methods, so lookups are infallible by
/// construction (out-of-range indices panic, which indicates a logic
/// error such as mixing topologies).
#[derive(Debug, Default, Clone)]
pub struct Topology {
    domains: Vec<Domain>,
    storage: Vec<(DomainId, StorageResource)>,
    compute: Vec<(DomainId, ComputeResource)>,
    links: Vec<Link>,
}

impl Topology {
    /// An empty grid.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new, empty domain.
    pub fn add_domain(&mut self, name: impl Into<String>) -> DomainId {
        let id = DomainId(self.domains.len() as u32);
        self.domains.push(Domain { name: name.into(), storage: Vec::new(), compute: Vec::new() });
        id
    }

    /// Place a storage resource inside `domain`.
    pub fn add_storage(&mut self, domain: DomainId, resource: StorageResource) -> StorageId {
        let id = StorageId(self.storage.len() as u32);
        self.storage.push((domain, resource));
        self.domains[domain.0 as usize].storage.push(id);
        id
    }

    /// Place a compute resource inside `domain`.
    pub fn add_compute(&mut self, domain: DomainId, resource: ComputeResource) -> ComputeId {
        let id = ComputeId(self.compute.len() as u32);
        self.compute.push((domain, resource));
        self.domains[domain.0 as usize].compute.push(id);
        id
    }

    /// Connect two domains with a bidirectional link.
    pub fn add_link(&mut self, a: DomainId, b: DomainId, latency: Duration, bandwidth: u64) -> LinkId {
        assert_ne!(a, b, "links connect distinct domains");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link { endpoints: (a, b), latency, bandwidth, online: true });
        id
    }

    /// Number of domains.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// All domain ids.
    pub fn domain_ids(&self) -> impl Iterator<Item = DomainId> {
        (0..self.domains.len() as u32).map(DomainId)
    }

    /// Immutable access to a domain.
    pub fn domain(&self, id: DomainId) -> &Domain {
        &self.domains[id.0 as usize]
    }

    /// Find a domain by name.
    pub fn domain_by_name(&self, name: &str) -> Option<DomainId> {
        self.domains.iter().position(|d| d.name == name).map(|i| DomainId(i as u32))
    }

    /// The domain owning a storage resource.
    pub fn storage_domain(&self, id: StorageId) -> DomainId {
        self.storage[id.0 as usize].0
    }

    /// Immutable access to a storage resource.
    pub fn storage(&self, id: StorageId) -> &StorageResource {
        &self.storage[id.0 as usize].1
    }

    /// Mutable access to a storage resource.
    pub fn storage_mut(&mut self, id: StorageId) -> &mut StorageResource {
        &mut self.storage[id.0 as usize].1
    }

    /// All storage ids.
    pub fn storage_ids(&self) -> impl Iterator<Item = StorageId> {
        (0..self.storage.len() as u32).map(StorageId)
    }

    /// Find a storage resource by logical name.
    pub fn storage_by_name(&self, name: &str) -> Option<StorageId> {
        self.storage.iter().position(|(_, r)| r.name == name).map(|i| StorageId(i as u32))
    }

    /// The domain owning a compute resource.
    pub fn compute_domain(&self, id: ComputeId) -> DomainId {
        self.compute[id.0 as usize].0
    }

    /// Immutable access to a compute resource.
    pub fn compute(&self, id: ComputeId) -> &ComputeResource {
        &self.compute[id.0 as usize].1
    }

    /// Mutable access to a compute resource.
    pub fn compute_mut(&mut self, id: ComputeId) -> &mut ComputeResource {
        &mut self.compute[id.0 as usize].1
    }

    /// All compute ids.
    pub fn compute_ids(&self) -> impl Iterator<Item = ComputeId> {
        (0..self.compute.len() as u32).map(ComputeId)
    }

    /// Immutable access to a link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Mutable access to a link.
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.0 as usize]
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Lowest-latency route between two domains over online links.
    ///
    /// Returns `None` when the domains are disconnected (e.g. by failure
    /// injection). Intra-domain routes are [`Route::local`].
    pub fn route(&self, from: DomainId, to: DomainId) -> Option<Route> {
        if from == to {
            return Some(Route::local());
        }
        // Dijkstra over link latency in microseconds.
        let n = self.domains.len();
        let mut dist = vec![u64::MAX; n];
        let mut prev: Vec<Option<LinkId>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[from.0 as usize] = 0;
        heap.push(std::cmp::Reverse((0u64, from)));
        while let Some(std::cmp::Reverse((d, at))) = heap.pop() {
            if d > dist[at.0 as usize] {
                continue;
            }
            if at == to {
                break;
            }
            for (idx, link) in self.links.iter().enumerate() {
                if !link.online {
                    continue;
                }
                let next = if link.endpoints.0 == at {
                    link.endpoints.1
                } else if link.endpoints.1 == at {
                    link.endpoints.0
                } else {
                    continue;
                };
                let nd = d + link.latency.0;
                if nd < dist[next.0 as usize] {
                    dist[next.0 as usize] = nd;
                    prev[next.0 as usize] = Some(LinkId(idx as u32));
                    heap.push(std::cmp::Reverse((nd, next)));
                }
            }
        }
        if dist[to.0 as usize] == u64::MAX {
            return None;
        }
        // Reconstruct the path backwards.
        let mut links = Vec::new();
        let mut at = to;
        while at != from {
            let lid = prev[at.0 as usize].expect("reachable node has a predecessor");
            let link = &self.links[lid.0 as usize];
            links.push(lid);
            at = if link.endpoints.0 == at { link.endpoints.1 } else { link.endpoints.0 };
        }
        links.reverse();
        let bottleneck = links.iter().map(|l| self.link(*l).bandwidth).min().unwrap_or(u64::MAX);
        Some(Route { links, latency: Duration(dist[to.0 as usize]), bottleneck_bandwidth: bottleneck })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::StorageTier;

    fn line_grid() -> (Topology, Vec<DomainId>) {
        // d0 -- d1 -- d2, plus a slow shortcut d0 -- d2.
        let mut t = Topology::new();
        let d: Vec<_> = (0..3).map(|i| t.add_domain(format!("d{i}"))).collect();
        t.add_link(d[0], d[1], Duration::from_millis(10), 100);
        t.add_link(d[1], d[2], Duration::from_millis(10), 50);
        t.add_link(d[0], d[2], Duration::from_millis(100), 200);
        (t, d)
    }

    #[test]
    fn routes_choose_lowest_latency() {
        let (t, d) = line_grid();
        let r = t.route(d[0], d[2]).unwrap();
        assert_eq!(r.links.len(), 2, "two 10ms hops beat one 100ms hop");
        assert_eq!(r.latency, Duration::from_millis(20));
        assert_eq!(r.bottleneck_bandwidth, 50, "bottleneck is the slower hop");
    }

    #[test]
    fn local_route_is_free() {
        let (t, d) = line_grid();
        let r = t.route(d[1], d[1]).unwrap();
        assert!(r.is_local());
        assert_eq!(r.latency, Duration::ZERO);
    }

    #[test]
    fn failed_links_reroute_or_disconnect() {
        let (mut t, d) = line_grid();
        t.link_mut(LinkId(0)).online = false; // kill d0--d1
        let r = t.route(d[0], d[2]).unwrap();
        assert_eq!(r.links.len(), 1, "falls back to the direct slow link");
        assert_eq!(r.latency, Duration::from_millis(100));
        t.link_mut(LinkId(2)).online = false; // kill d0--d2 too
        assert!(t.route(d[0], d[2]).is_none(), "d0 now disconnected");
        assert!(t.route(d[1], d[2]).is_some(), "others unaffected");
    }

    #[test]
    fn resources_belong_to_domains() {
        let (mut t, d) = line_grid();
        let s = t.add_storage(d[1], StorageResource::with_tier_defaults("gpfs", StorageTier::ParallelFs, 1 << 40));
        let c = t.add_compute(d[1], ComputeResource::new("cluster", 64));
        assert_eq!(t.storage_domain(s), d[1]);
        assert_eq!(t.compute_domain(c), d[1]);
        assert_eq!(t.domain(d[1]).storage, vec![s]);
        assert_eq!(t.domain(d[1]).compute, vec![c]);
        assert_eq!(t.storage_by_name("gpfs"), Some(s));
        assert_eq!(t.storage_by_name("nope"), None);
        assert_eq!(t.domain_by_name("d2"), Some(d[2]));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn self_links_rejected() {
        let mut t = Topology::new();
        let d = t.add_domain("a");
        t.add_link(d, d, Duration::ZERO, 1);
    }
}
