//! Convenience construction of the grid topologies the paper's scenarios
//! run on.

use crate::compute::ComputeResource;
use crate::storage::{StorageResource, StorageTier};
use crate::time::Duration;
use crate::topology::{DomainId, Topology};

const MB: u64 = 1_000_000;
const GB: u64 = 1_000_000_000;
const TB: u64 = 1_000 * GB;

/// Pre-canned topology shapes used by the experiment suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridPreset {
    /// `n` peer domains fully meshed with identical WAN links — the
    /// generic multi-organization datagrid of §1.
    UniformMesh { domains: u32 },
    /// One central archiver domain plus `sources` leaf domains (BBSRC
    /// hospitals → CCLRC archive, §2.1 "imploding star").
    ImplodingStar { sources: u32 },
    /// CMS-style tiered distribution: one Tier-0, `tier1` Tier-1 centers,
    /// `tier2_per_tier1` Tier-2 sites under each (§2.1 "exploding star").
    Tiered { tier1: u32, tier2_per_tier1: u32 },
}

/// Builder producing [`Topology`] instances with realistic tiering.
#[derive(Debug, Default)]
pub struct GridBuilder {
    topology: Topology,
}

impl GridBuilder {
    /// Start from an empty grid.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a fully-equipped domain: parallel-fs + disk + archive storage
    /// and one cluster. Returns the new domain id.
    pub fn add_site(&mut self, name: &str, cluster_slots: u32) -> DomainId {
        let d = self.topology.add_domain(name);
        self.topology.add_storage(d, StorageResource::with_tier_defaults(format!("{name}-pfs"), StorageTier::ParallelFs, 10 * TB));
        self.topology.add_storage(d, StorageResource::with_tier_defaults(format!("{name}-disk"), StorageTier::Disk, 50 * TB));
        self.topology.add_storage(d, StorageResource::with_tier_defaults(format!("{name}-archive"), StorageTier::Archive, 500 * TB));
        self.topology.add_compute(d, ComputeResource::new(format!("{name}-cluster"), cluster_slots));
        d
    }

    /// Add a minimal domain with a single disk store and no compute (a
    /// small data-producing site such as a hospital).
    pub fn add_leaf_site(&mut self, name: &str) -> DomainId {
        let d = self.topology.add_domain(name);
        self.topology.add_storage(d, StorageResource::with_tier_defaults(format!("{name}-disk"), StorageTier::Disk, 10 * TB));
        d
    }

    /// Connect two domains with a WAN link (default: 50 ms, 100 MB/s).
    pub fn wan_link(&mut self, a: DomainId, b: DomainId) {
        self.topology.add_link(a, b, Duration::from_millis(50), 100 * MB);
    }

    /// Connect two domains with a custom link.
    pub fn link(&mut self, a: DomainId, b: DomainId, latency: Duration, bandwidth: u64) {
        self.topology.add_link(a, b, latency, bandwidth);
    }

    /// Finish building.
    pub fn build(self) -> Topology {
        self.topology
    }

    /// Materialize a preset.
    pub fn preset(preset: GridPreset) -> Topology {
        let mut b = GridBuilder::new();
        match preset {
            GridPreset::UniformMesh { domains } => {
                assert!(domains >= 1);
                let ids: Vec<_> = (0..domains).map(|i| b.add_site(&format!("site{i}"), 32)).collect();
                for i in 0..ids.len() {
                    for j in (i + 1)..ids.len() {
                        b.wan_link(ids[i], ids[j]);
                    }
                }
            }
            GridPreset::ImplodingStar { sources } => {
                assert!(sources >= 1);
                let archive = b.topology.add_domain("archiver");
                // The archiver gets deep archive + tape, plus staging disk.
                b.topology.add_storage(archive, StorageResource::with_tier_defaults("archiver-disk", StorageTier::Disk, 100 * TB));
                b.topology.add_storage(archive, StorageResource::with_tier_defaults("archiver-archive", StorageTier::Archive, 1_000 * TB));
                b.topology.add_storage(archive, StorageResource::with_tier_defaults("archiver-tape", StorageTier::Tape, 10_000 * TB));
                b.topology.add_compute(archive, ComputeResource::new("archiver-ingest", 16));
                for i in 0..sources {
                    let s = b.add_leaf_site(&format!("hospital{i:02}"));
                    // Hospitals have modest uplinks.
                    b.link(s, archive, Duration::from_millis(30), 20 * MB);
                }
            }
            GridPreset::Tiered { tier1, tier2_per_tier1 } => {
                assert!(tier1 >= 1);
                let t0 = b.add_site("tier0", 128);
                for i in 0..tier1 {
                    let t1 = b.add_site(&format!("tier1-{i}"), 64);
                    // T0→T1: fat transatlantic pipes.
                    b.link(t0, t1, Duration::from_millis(80), 250 * MB);
                    for j in 0..tier2_per_tier1 {
                        let t2 = b.add_site(&format!("tier2-{i}-{j}"), 32);
                        b.link(t1, t2, Duration::from_millis(25), 50 * MB);
                    }
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_mesh_is_fully_connected() {
        let t = GridBuilder::preset(GridPreset::UniformMesh { domains: 4 });
        assert_eq!(t.domain_count(), 4);
        assert_eq!(t.link_count(), 6, "4 choose 2");
        for a in t.domain_ids() {
            for b in t.domain_ids() {
                let r = t.route(a, b).unwrap();
                assert!(r.links.len() <= 1, "mesh routes are direct");
            }
        }
    }

    #[test]
    fn imploding_star_centers_on_the_archiver() {
        let t = GridBuilder::preset(GridPreset::ImplodingStar { sources: 8 });
        assert_eq!(t.domain_count(), 9);
        let archiver = t.domain_by_name("archiver").unwrap();
        assert_eq!(t.domain(archiver).storage.len(), 3, "disk + archive + tape");
        let hospital = t.domain_by_name("hospital03").unwrap();
        let r = t.route(hospital, archiver).unwrap();
        assert_eq!(r.links.len(), 1);
        // Hospital-to-hospital traffic relays through the archiver hub.
        let other = t.domain_by_name("hospital05").unwrap();
        assert_eq!(t.route(hospital, other).unwrap().links.len(), 2);
    }

    #[test]
    fn tiered_preset_matches_cms_shape() {
        let t = GridBuilder::preset(GridPreset::Tiered { tier1: 4, tier2_per_tier1: 3 });
        assert_eq!(t.domain_count(), 1 + 4 + 12);
        let t0 = t.domain_by_name("tier0").unwrap();
        let t2 = t.domain_by_name("tier2-2-1").unwrap();
        let r = t.route(t0, t2).unwrap();
        assert_eq!(r.links.len(), 2, "T0 → T1 → T2");
        assert_eq!(r.bottleneck_bandwidth, 50 * MB, "last hop is the bottleneck");
    }

    #[test]
    fn sites_are_fully_equipped() {
        let mut b = GridBuilder::new();
        let d = b.add_site("sdsc", 64);
        let t = b.build();
        assert_eq!(t.domain(d).storage.len(), 3);
        assert_eq!(t.domain(d).compute.len(), 1);
        assert!(t.storage_by_name("sdsc-archive").is_some());
        let tiers: Vec<_> = t.domain(d).storage.iter().map(|s| t.storage(*s).tier).collect();
        assert!(tiers.contains(&StorageTier::ParallelFs) && tiers.contains(&StorageTier::Archive));
    }
}
