//! The wide-area transfer model: how long moving bytes takes when links
//! are shared.

use crate::storage::StorageId;
use crate::time::Duration;
use crate::topology::{LinkId, Route, Topology};
use std::collections::HashMap;

/// Handle for an in-flight transfer; return it to [`TransferModel::finish`]
/// so link shares are released.
#[derive(Debug)]
#[must_use = "finish() must be called to release link capacity"]
pub struct TransferHandle {
    links: Vec<LinkId>,
}

/// Tracks concurrent transfers per link and estimates transfer durations.
///
/// Model: a transfer's throughput is the minimum of source read bandwidth,
/// destination write bandwidth, and each traversed link's capacity divided
/// by its concurrent-transfer count (fair share, evaluated at start — a
/// documented simplification: durations are fixed when the transfer
/// begins rather than re-flowed as contention changes, which keeps the
/// event count linear in transfers and errs pessimistically under rising
/// contention).
///
/// Total time = route latency + storage latencies + bytes / throughput.
#[derive(Debug, Default)]
pub struct TransferModel {
    active: HashMap<LinkId, u32>,
    started: u64,
    bytes_started: u64,
}

/// Lifetime totals of a [`TransferModel`] — the passive observability
/// surface scraped into the `grid` metric scope by higher layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransferTotals {
    /// Transfers ever begun.
    pub started: u64,
    /// Bytes across all begun transfers.
    pub bytes: u64,
}

impl TransferModel {
    /// A model with no transfers in flight.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of transfers currently crossing `link`.
    pub fn active_on(&self, link: LinkId) -> u32 {
        self.active.get(&link).copied().unwrap_or(0)
    }

    /// Estimate the duration of a transfer *without* starting it
    /// (schedulers use this for cost estimation).
    pub fn estimate(
        &self,
        topology: &Topology,
        src: StorageId,
        dst: StorageId,
        route: &Route,
        bytes: u64,
    ) -> Duration {
        let src_r = topology.storage(src);
        let dst_r = topology.storage(dst);
        let mut throughput = src_r.bandwidth.min(dst_r.bandwidth).max(1);
        for link in &route.links {
            let capacity = topology.link(*link).bandwidth.max(1);
            let share = capacity / (self.active_on(*link) as u64 + 1);
            throughput = throughput.min(share.max(1));
        }
        let wire = Duration::from_secs_f64(bytes as f64 / throughput as f64);
        route.latency + src_r.latency + dst_r.latency + wire
    }

    /// Start a transfer: claims a share on every link of the route and
    /// returns both the duration and a handle to release it with.
    pub fn begin(
        &mut self,
        topology: &Topology,
        src: StorageId,
        dst: StorageId,
        route: &Route,
        bytes: u64,
    ) -> (Duration, TransferHandle) {
        let duration = self.estimate(topology, src, dst, route, bytes);
        for link in &route.links {
            *self.active.entry(*link).or_insert(0) += 1;
        }
        self.started += 1;
        self.bytes_started += bytes;
        (duration, TransferHandle { links: route.links.clone() })
    }

    /// Finish a transfer, releasing its link shares.
    pub fn finish(&mut self, handle: TransferHandle) {
        for link in handle.links {
            if let Some(n) = self.active.get_mut(&link) {
                *n = n.saturating_sub(1);
                if *n == 0 {
                    self.active.remove(&link);
                }
            }
        }
    }

    /// Total transfers in flight (across all links; a multi-link transfer
    /// counts once per link).
    pub fn total_active_shares(&self) -> u32 {
        self.active.values().sum()
    }

    /// Lifetime counters: every transfer ever begun and its bytes.
    pub fn totals(&self) -> TransferTotals {
        TransferTotals { started: self.started, bytes: self.bytes_started }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{StorageResource, StorageTier};
    use crate::topology::{DomainId, Topology};

    /// Two domains joined by one 100 MB/s, 50 ms link; parallel-fs on
    /// each side.
    fn wan() -> (Topology, StorageId, StorageId) {
        let mut t = Topology::new();
        let a = t.add_domain("a");
        let b = t.add_domain("b");
        t.add_link(a, b, Duration::from_millis(50), 100_000_000);
        let sa = t.add_storage(a, StorageResource::with_tier_defaults("sa", StorageTier::ParallelFs, u64::MAX));
        let sb = t.add_storage(b, StorageResource::with_tier_defaults("sb", StorageTier::ParallelFs, u64::MAX));
        (t, sa, sb)
    }

    #[test]
    fn single_transfer_is_bottlenecked_by_the_link() {
        let (t, sa, sb) = wan();
        let route = t.route(DomainId(0), DomainId(1)).unwrap();
        let model = TransferModel::new();
        // 1 GB at 100 MB/s = 10 s, plus 50 ms link + 2×5 ms storage latency.
        let d = model.estimate(&t, sa, sb, &route, 1_000_000_000);
        assert_eq!(d.as_secs(), 10);
        assert!(d > Duration::from_secs(10));
    }

    #[test]
    fn concurrent_transfers_share_bandwidth() {
        let (t, sa, sb) = wan();
        let route = t.route(DomainId(0), DomainId(1)).unwrap();
        let mut model = TransferModel::new();
        let (d1, h1) = model.begin(&t, sa, sb, &route, 1_000_000_000);
        let (d2, h2) = model.begin(&t, sa, sb, &route, 1_000_000_000);
        assert_eq!(d1.as_secs(), 10, "first sees the full link");
        assert_eq!(d2.as_secs(), 20, "second sees half the link");
        model.finish(h1);
        let d3 = model.estimate(&t, sa, sb, &route, 1_000_000_000);
        assert_eq!(d3.as_secs(), 20, "still sharing with the second transfer");
        model.finish(h2);
        assert_eq!(model.total_active_shares(), 0);
        assert_eq!(model.estimate(&t, sa, sb, &route, 1_000_000_000).as_secs(), 10);
    }

    #[test]
    fn local_transfers_are_bounded_by_storage() {
        let (mut t, sa, _) = wan();
        let slow = t.add_storage(
            DomainId(0),
            StorageResource::with_tier_defaults("tape", StorageTier::Tape, u64::MAX),
        );
        let route = Route::local();
        let model = TransferModel::new();
        // 300 MB from parallel-fs to tape: tape 30 MB/s dominates → 10 s + 60 s mount.
        let d = model.estimate(&t, sa, slow, &route, 300_000_000);
        assert_eq!(d.as_secs(), 70);
    }

    #[test]
    fn slow_endpoints_not_charged_for_link_share() {
        let (mut t, _, sb) = wan();
        let tape = t.add_storage(
            DomainId(0),
            StorageResource::with_tier_defaults("tape", StorageTier::Tape, u64::MAX),
        );
        let route = t.route(DomainId(0), DomainId(1)).unwrap();
        let model = TransferModel::new();
        // Tape at 30 MB/s is the bottleneck, not the 100 MB/s link.
        let d = model.estimate(&t, tape, sb, &route, 300_000_000);
        assert_eq!(d.as_secs(), (10 + 60), "300MB/30MBps + mount");
    }
}
