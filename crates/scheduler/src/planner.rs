//! Planners: matchmaking abstract tasks onto concrete resources.

use crate::cost::{CostBreakdown, CostWeights};
use crate::infra::InfraDescription;
use crate::task::AbstractTask;
use dgf_dgms::{DataGrid, LogicalPath};
use dgf_simgrid::{ComputeId, DomainId, Duration, StorageId, StorageTier};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Placement failures.
#[derive(Debug, Clone, PartialEq)]
pub enum PlannerError {
    /// No compute resource satisfies the requirement right now.
    NoEligibleResource { task: String, reason: String },
    /// An input path has no reachable replica.
    InputUnavailable { task: String, input: LogicalPath },
    /// No storage at the execution site can hold the inputs/outputs.
    NoStagingSpace { task: String, domain: String },
}

impl fmt::Display for PlannerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlannerError::NoEligibleResource { task, reason } => {
                write!(f, "task {task:?}: no eligible compute resource ({reason})")
            }
            PlannerError::InputUnavailable { task, input } => {
                write!(f, "task {task:?}: input {input} has no reachable replica")
            }
            PlannerError::NoStagingSpace { task, domain } => {
                write!(f, "task {task:?}: no staging storage available at {domain}")
            }
        }
    }
}

impl std::error::Error for PlannerError {}

/// One input-staging decision: copy `bytes` of `path` from `src` to `dst`
/// (skipped when the input is already local: `src == dst`).
#[derive(Debug, Clone, PartialEq)]
pub struct StagePlan {
    /// The input being staged.
    pub path: LogicalPath,
    /// Chosen source replica.
    pub src: StorageId,
    /// Destination storage at the execution domain.
    pub dst: StorageId,
    /// Bytes to move (0 when already local).
    pub bytes: u64,
}

impl StagePlan {
    /// True when no transfer is needed.
    pub fn is_local(&self) -> bool {
        self.src == self.dst || self.bytes == 0
    }
}

/// Concrete, infrastructure-based execution logic for one task — the
/// §2.3 "final infrastructure-based execution logic for each task would
/// have the chosen replica to use as input, the location of the output
/// data and the grid resource to use."
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// The chosen compute resource.
    pub compute: ComputeId,
    /// Its domain.
    pub domain: DomainId,
    /// Input staging plan (chosen replicas).
    pub stage: Vec<StagePlan>,
    /// Output destinations: (logical path, storage, bytes).
    pub outputs: Vec<(LogicalPath, StorageId, u64)>,
    /// Estimated cost components at planning time.
    pub estimate: CostBreakdown,
}

/// The placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlannerKind {
    /// Uniform random over eligible resources (the weakest baseline).
    Random,
    /// Cycle through eligible resources (load-spreading baseline).
    RoundRobin,
    /// Pick the domain holding the most input bytes (locality only).
    GreedyLocal,
    /// Minimize the full §2.3 weighted cost.
    CostBased,
}

impl fmt::Display for PlannerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PlannerKind::Random => "random",
            PlannerKind::RoundRobin => "round-robin",
            PlannerKind::GreedyLocal => "greedy-local",
            PlannerKind::CostBased => "cost-based",
        };
        f.write_str(s)
    }
}

impl PlannerKind {
    /// All planners, for experiment sweeps.
    pub const ALL: [PlannerKind; 4] =
        [PlannerKind::Random, PlannerKind::RoundRobin, PlannerKind::GreedyLocal, PlannerKind::CostBased];
}

/// The scheduler: holds policy, SLAs, weights, and deterministic state.
#[derive(Debug)]
pub struct Scheduler {
    kind: PlannerKind,
    weights: CostWeights,
    infra: InfraDescription,
    rng: SmallRng,
    rr_next: usize,
    obs: Option<dgf_obs::Obs>,
}

impl Scheduler {
    /// A scheduler with the given policy and default weights/SLAs.
    pub fn new(kind: PlannerKind, seed: u64) -> Self {
        Scheduler {
            kind,
            weights: CostWeights::default(),
            infra: InfraDescription::open(),
            rng: SmallRng::seed_from_u64(seed),
            rr_next: 0,
            obs: None,
        }
    }

    /// Attach an observability handle; planning decisions are counted
    /// under the `scheduler` metric scope from then on. The engine calls
    /// this when it takes ownership of the scheduler.
    pub fn set_obs(&mut self, obs: dgf_obs::Obs) {
        self.obs = Some(obs);
    }

    /// The attached observability handle, if any.
    pub fn obs(&self) -> Option<&dgf_obs::Obs> {
        self.obs.as_ref()
    }

    /// Builder-style cost weights.
    #[must_use]
    pub fn with_weights(mut self, weights: CostWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Builder-style infrastructure description.
    #[must_use]
    pub fn with_infra(mut self, infra: InfraDescription) -> Self {
        self.infra = infra;
        self
    }

    /// The active policy.
    pub fn kind(&self) -> PlannerKind {
        self.kind
    }

    /// The active cost weights.
    pub fn weights(&self) -> &CostWeights {
        &self.weights
    }

    /// The active infrastructure description (SLAs per resource).
    pub fn infra(&self) -> &InfraDescription {
        &self.infra
    }

    /// Convert a task's abstract requirement into a concrete placement
    /// against the grid's *current* state.
    ///
    /// With an [`Scheduler::set_obs`] handle attached, every call counts
    /// into `scheduler/plans.ok` or `scheduler/plans.failed`, and the
    /// winning placement's estimated stage-in time feeds the
    /// `scheduler/plan.stage_in` sim-time histogram.
    pub fn plan(&mut self, grid: &DataGrid, task: &AbstractTask) -> Result<Placement, PlannerError> {
        let result = self.plan_inner(grid, task);
        if let Some(obs) = &self.obs {
            match &result {
                Ok(p) => {
                    obs.inc("scheduler", "plans.ok");
                    obs.observe("scheduler", "plan.stage_in", p.estimate.stage_in);
                }
                Err(_) => obs.inc("scheduler", "plans.failed"),
            }
        }
        result
    }

    fn plan_inner(&mut self, grid: &DataGrid, task: &AbstractTask) -> Result<Placement, PlannerError> {
        let candidates = self.eligible(grid, task)?;
        let chosen = match self.kind {
            PlannerKind::Random => {
                let idx = self.rng.gen_range(0..candidates.len());
                candidates[idx]
            }
            PlannerKind::RoundRobin => {
                let idx = self.rr_next % candidates.len();
                self.rr_next = self.rr_next.wrapping_add(1);
                candidates[idx]
            }
            PlannerKind::GreedyLocal => {
                // Most input bytes already at the candidate's domain.
                *candidates
                    .iter()
                    .max_by_key(|c| {
                        let domain = grid.topology().compute_domain(**c);
                        local_input_bytes(grid, task, domain)
                    })
                    .expect("candidates is non-empty")
            }
            PlannerKind::CostBased => {
                let mut best: Option<(f64, ComputeId)> = None;
                let mut last_err = None;
                for &candidate in &candidates {
                    match self.placement_at(grid, task, candidate) {
                        Ok(p) => {
                            let score = p.estimate.total(&self.weights);
                            if best.map(|(b, _)| score < b).unwrap_or(true) {
                                best = Some((score, candidate));
                            }
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                match best {
                    Some((_, c)) => c,
                    None => {
                        // Surface the underlying cause (e.g. a missing
                        // input) rather than a generic "no candidate".
                        return Err(last_err.unwrap_or(PlannerError::NoEligibleResource {
                            task: task.code.clone(),
                            reason: "no candidate has a feasible staging plan".into(),
                        }));
                    }
                }
            }
        };
        self.placement_at(grid, task, chosen)
    }

    /// Could *any* resource ever satisfy this task's requirement and SLA,
    /// ignoring current load? Distinguishes "queue and retry" (saturated
    /// grid) from "reject" (structurally impossible requirement).
    pub fn feasible_ever(&self, grid: &DataGrid, task: &AbstractTask) -> bool {
        let topo = grid.topology();
        topo.compute_ids().any(|id| {
            let resource = topo.compute(id);
            if !resource.online {
                return false;
            }
            let sla = self.infra.sla(id);
            if !sla.admits_vo(task.vo.as_deref()) || sla.usable_slots(resource.slots) == 0 {
                return false;
            }
            if task.requirement.min_slots > 0 && resource.slots < task.requirement.min_slots {
                return false;
            }
            match &task.requirement.domain {
                Some(domain) => &topo.domain(topo.compute_domain(id)).name == domain,
                None => true,
            }
        })
    }

    /// All compute resources currently satisfying the requirement and SLA.
    fn eligible(&self, grid: &DataGrid, task: &AbstractTask) -> Result<Vec<ComputeId>, PlannerError> {
        let topo = grid.topology();
        let mut out = Vec::new();
        for id in topo.compute_ids() {
            let resource = topo.compute(id);
            if !resource.online {
                continue;
            }
            let sla = self.infra.sla(id);
            if !sla.admits_vo(task.vo.as_deref()) {
                continue;
            }
            let usable = sla.usable_slots(resource.slots);
            let grid_free = usable.saturating_sub(resource.busy);
            if grid_free == 0 {
                continue;
            }
            if task.requirement.min_slots > 0 && resource.slots < task.requirement.min_slots {
                continue;
            }
            if let Some(domain) = &task.requirement.domain {
                let d = topo.compute_domain(id);
                if &topo.domain(d).name != domain {
                    continue;
                }
            }
            out.push(id);
        }
        if out.is_empty() {
            return Err(PlannerError::NoEligibleResource {
                task: task.code.clone(),
                reason: "no online resource with free SLA slots matches the requirement".into(),
            });
        }
        Ok(out)
    }

    /// Build the concrete placement (staging + outputs + cost) for one
    /// candidate.
    fn placement_at(
        &self,
        grid: &DataGrid,
        task: &AbstractTask,
        compute: ComputeId,
    ) -> Result<Placement, PlannerError> {
        let topo = grid.topology();
        let domain = topo.compute_domain(compute);
        let mut stage = Vec::with_capacity(task.inputs.len());
        let mut stage_in = Duration::ZERO;
        let mut bytes_moved = 0u64;
        let mut link_occupancy = 0.0f64;

        for input in &task.inputs {
            let obj = grid
                .stat_object(input)
                .map_err(|_| PlannerError::InputUnavailable { task: task.code.clone(), input: input.clone() })?;
            // Already local? Pick the local replica with zero cost.
            if let Some(local) = obj
                .usable_replicas(|s| topo.storage(s).online)
                .find(|r| topo.storage_domain(r.storage) == domain)
            {
                stage.push(StagePlan { path: input.clone(), src: local.storage, dst: local.storage, bytes: 0 });
                continue;
            }
            // Replica selection: cheapest estimated transfer into the domain.
            let dst = staging_storage(grid, domain, obj.size)
                .ok_or_else(|| PlannerError::NoStagingSpace { task: task.code.clone(), domain: topo.domain(domain).name.clone() })?;
            let mut best: Option<(Duration, StorageId, f64)> = None;
            for replica in obj.usable_replicas(|s| topo.storage(s).online) {
                let src_domain = topo.storage_domain(replica.storage);
                let Some(route) = topo.route(src_domain, domain) else { continue };
                let est = grid.transfer_model().estimate(topo, replica.storage, dst, &route, obj.size);
                let occupancy = route.links.len() as f64
                    * (obj.size as f64 / route.bottleneck_bandwidth.max(1) as f64);
                if best.map(|(b, _, _)| est < b).unwrap_or(true) {
                    best = Some((est, replica.storage, occupancy));
                }
            }
            let (est, src, occupancy) = best
                .ok_or_else(|| PlannerError::InputUnavailable { task: task.code.clone(), input: input.clone() })?;
            // Transfers for distinct inputs run sequentially in the engine,
            // so stage-in adds up.
            stage_in += est;
            bytes_moved += obj.size;
            link_occupancy += occupancy;
            stage.push(StagePlan { path: input.clone(), src, dst, bytes: obj.size });
        }

        let mut outputs = Vec::with_capacity(task.outputs.len());
        for (path, size) in &task.outputs {
            let dst = staging_storage(grid, domain, *size)
                .ok_or_else(|| PlannerError::NoStagingSpace { task: task.code.clone(), domain: topo.domain(domain).name.clone() })?;
            outputs.push((path.clone(), dst, *size));
        }

        let exec = topo.compute(compute).execution_time(task.nominal);
        let estimate = CostBreakdown {
            stage_in,
            exec,
            bytes_moved,
            idle_slot_secs: stage_in.as_secs_f64(),
            link_occupancy_secs: link_occupancy,
        };
        Ok(Placement { compute, domain, stage, outputs, estimate })
    }
}

/// Total input bytes already replicated at `domain`.
fn local_input_bytes(grid: &DataGrid, task: &AbstractTask, domain: DomainId) -> u64 {
    let topo = grid.topology();
    task.inputs
        .iter()
        .filter_map(|input| grid.stat_object(input).ok())
        .filter(|obj| {
            obj.usable_replicas(|s| topo.storage(s).online)
                .any(|r| topo.storage_domain(r.storage) == domain)
        })
        .map(|obj| obj.size)
        .sum()
}

/// The best staging storage at a domain: fastest online tier with room.
fn staging_storage(grid: &DataGrid, domain: DomainId, bytes: u64) -> Option<StorageId> {
    let topo = grid.topology();
    topo.domain(domain)
        .storage
        .iter()
        .copied()
        .filter(|s| {
            let r = topo.storage(*s);
            r.online && r.free() >= bytes && r.tier >= StorageTier::Disk
        })
        .max_by_key(|s| topo.storage(*s).tier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::ResourceReq;
    use dgf_dgms::{Operation, Principal, UserRegistry};
    use dgf_simgrid::{GridBuilder, GridPreset, SimTime};

    fn path(s: &str) -> LogicalPath {
        LogicalPath::parse(s).unwrap()
    }

    /// 3-site mesh; input data lives at site0.
    fn grid_with_data() -> DataGrid {
        let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 3 });
        let mut users = UserRegistry::new();
        users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
        users.make_admin("u").unwrap();
        let mut g = DataGrid::new(topology, users);
        g.execute("u", Operation::Ingest { path: path("/in.dat"), size: 10_000_000_000, resource: "site0-pfs".into() }, SimTime::ZERO)
            .unwrap();
        g
    }

    fn data_task() -> AbstractTask {
        AbstractTask {
            code: "transform".into(),
            nominal: Duration::from_secs(60),
            inputs: vec![path("/in.dat")],
            outputs: vec![(path("/out.dat"), 1_000_000)],
            requirement: ResourceReq::default(),
            vo: None,
        }
    }

    #[test]
    fn cost_based_prefers_data_locality() {
        let g = grid_with_data();
        let mut s = Scheduler::new(PlannerKind::CostBased, 1);
        let p = s.plan(&g, &data_task()).unwrap();
        assert_eq!(g.topology().domain(p.domain).name, "site0", "runs where the 10 GB input lives");
        assert!(p.stage[0].is_local());
        assert_eq!(p.estimate.bytes_moved, 0);
        assert_eq!(p.estimate.stage_in, Duration::ZERO);
    }

    #[test]
    fn greedy_local_matches_cost_based_on_pure_locality() {
        let g = grid_with_data();
        let mut s = Scheduler::new(PlannerKind::GreedyLocal, 1);
        let p = s.plan(&g, &data_task()).unwrap();
        assert_eq!(g.topology().domain(p.domain).name, "site0");
    }

    #[test]
    fn round_robin_cycles_and_random_is_seeded() {
        let g = grid_with_data();
        let task = AbstractTask::compute_only("t", Duration::from_secs(1));
        let mut rr = Scheduler::new(PlannerKind::RoundRobin, 0);
        let picks: Vec<_> = (0..3).map(|_| rr.plan(&g, &task).unwrap().compute).collect();
        assert_eq!(picks.len(), 3);
        assert_ne!(picks[0], picks[1], "round robin moves on");

        let mut r1 = Scheduler::new(PlannerKind::Random, 7);
        let mut r2 = Scheduler::new(PlannerKind::Random, 7);
        for _ in 0..5 {
            assert_eq!(r1.plan(&g, &task).unwrap().compute, r2.plan(&g, &task).unwrap().compute);
        }
    }

    #[test]
    fn remote_placement_stages_inputs() {
        let g = grid_with_data();
        let mut s = Scheduler::new(PlannerKind::CostBased, 1);
        let mut task = data_task();
        task.requirement.domain = Some("site1".into()); // pin away from the data
        let p = s.plan(&g, &task).unwrap();
        assert_eq!(g.topology().domain(p.domain).name, "site1");
        assert!(!p.stage[0].is_local());
        assert_eq!(p.estimate.bytes_moved, 10_000_000_000);
        assert!(p.estimate.stage_in > Duration::from_secs(10));
        assert!(p.estimate.idle_slot_secs > 0.0);
        // Output lands at the execution site.
        let out_domain = g.topology().storage_domain(p.outputs[0].1);
        assert_eq!(out_domain, p.domain);
    }

    #[test]
    fn requirement_filters_resources() {
        let g = grid_with_data();
        let mut s = Scheduler::new(PlannerKind::CostBased, 1);
        let mut task = data_task();
        task.requirement.min_slots = 1000;
        assert!(matches!(s.plan(&g, &task), Err(PlannerError::NoEligibleResource { .. })));
        task.requirement.min_slots = 0;
        task.requirement.domain = Some("no-such-site".into());
        assert!(matches!(s.plan(&g, &task), Err(PlannerError::NoEligibleResource { .. })));
    }

    #[test]
    fn sla_restrictions_apply() {
        let g = grid_with_data();
        let mut infra = InfraDescription::open();
        for c in g.topology().compute_ids() {
            infra.publish(c, crate::infra::Sla::for_vos(&["cms"]));
        }
        let mut s = Scheduler::new(PlannerKind::CostBased, 1).with_infra(infra);
        let mut task = data_task();
        assert!(s.plan(&g, &task).is_err(), "anonymous task rejected everywhere");
        task.vo = Some("cms".into());
        assert!(s.plan(&g, &task).is_ok());
    }

    #[test]
    fn offline_and_busy_resources_are_skipped() {
        let mut g = grid_with_data();
        let ids: Vec<_> = g.topology().compute_ids().collect();
        // Saturate site0, kill site1: only site2 remains.
        let c0 = ids[0];
        let slots = g.topology().compute(c0).slots;
        for _ in 0..slots {
            assert!(g.topology_mut().compute_mut(c0).claim_slot());
        }
        g.topology_mut().compute_mut(ids[1]).online = false;
        let mut s = Scheduler::new(PlannerKind::CostBased, 1);
        let p = s.plan(&g, &AbstractTask::compute_only("t", Duration::from_secs(1))).unwrap();
        assert_eq!(p.compute, ids[2]);
    }

    #[test]
    fn missing_inputs_are_reported() {
        let g = grid_with_data();
        let mut s = Scheduler::new(PlannerKind::CostBased, 1);
        let mut task = data_task();
        task.inputs = vec![path("/ghost.dat")];
        assert!(matches!(s.plan(&g, &task), Err(PlannerError::InputUnavailable { .. })));
    }
}
