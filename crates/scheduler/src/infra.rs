//! The Infrastructure Description Language (§3.2): what each domain is
//! willing to share, and at what service level.

use dgf_simgrid::ComputeId;
use std::collections::HashMap;

/// The service-level agreement a domain publishes for one compute
/// resource. "The system administrators could change the infrastructure
/// logic based on their own domain requirements, assuring them full
/// autonomous control over what resources are shared with other grid
/// users and at what SLAs." (§2.3)
#[derive(Debug, Clone, PartialEq)]
pub struct Sla {
    /// Fraction of the resource's slots grid users may occupy (0.0–1.0).
    pub grid_share: f64,
    /// VOs allowed to use the resource; `None` = any.
    pub allowed_vos: Option<Vec<String>>,
}

impl Default for Sla {
    fn default() -> Self {
        Sla { grid_share: 1.0, allowed_vos: None }
    }
}

impl Sla {
    /// An SLA sharing only a fraction of slots. Out-of-range shares are
    /// clamped into [0.0, 1.0] (NaN counts as 0.0): a misconfigured
    /// domain should degrade to "share nothing" or "share everything,"
    /// not take the scheduler down.
    pub fn shared(grid_share: f64) -> Self {
        let grid_share = if grid_share.is_nan() { 0.0 } else { grid_share.clamp(0.0, 1.0) };
        Sla { grid_share, allowed_vos: None }
    }

    /// An SLA restricted to specific VOs.
    pub fn for_vos(vos: &[&str]) -> Self {
        Sla { grid_share: 1.0, allowed_vos: Some(vos.iter().map(|v| (*v).to_owned()).collect()) }
    }

    /// May `vo` use this resource at all?
    pub fn admits_vo(&self, vo: Option<&str>) -> bool {
        match &self.allowed_vos {
            None => true,
            Some(list) => vo.map(|v| list.iter().any(|a| a == v)).unwrap_or(false),
        }
    }

    /// How many of `total` slots grid tasks may use.
    pub fn usable_slots(&self, total: u32) -> u32 {
        ((total as f64) * self.grid_share).floor() as u32
    }
}

/// The grid-wide infrastructure description: SLAs per compute resource.
/// Resources without an entry get [`Sla::default`] (fully shared).
#[derive(Debug, Clone, Default)]
pub struct InfraDescription {
    slas: HashMap<ComputeId, Sla>,
}

impl InfraDescription {
    /// Everything fully shared.
    pub fn open() -> Self {
        Self::default()
    }

    /// Publish (or replace) an SLA for a resource.
    pub fn publish(&mut self, resource: ComputeId, sla: Sla) {
        self.slas.insert(resource, sla);
    }

    /// The effective SLA for a resource.
    pub fn sla(&self, resource: ComputeId) -> Sla {
        self.slas.get(&resource).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sla_is_open() {
        let infra = InfraDescription::open();
        let sla = infra.sla(ComputeId(0));
        assert!(sla.admits_vo(None));
        assert!(sla.admits_vo(Some("cms")));
        assert_eq!(sla.usable_slots(64), 64);
    }

    #[test]
    fn shares_limit_slots() {
        let sla = Sla::shared(0.25);
        assert_eq!(sla.usable_slots(64), 16);
        assert_eq!(sla.usable_slots(3), 0, "floors");
    }

    #[test]
    fn vo_restrictions() {
        let sla = Sla::for_vos(&["scec", "cms"]);
        assert!(sla.admits_vo(Some("scec")));
        assert!(!sla.admits_vo(Some("atlas")));
        assert!(!sla.admits_vo(None), "VO-restricted resources refuse anonymous tasks");
    }

    #[test]
    fn published_slas_override_default() {
        let mut infra = InfraDescription::open();
        infra.publish(ComputeId(3), Sla::shared(0.5));
        assert_eq!(infra.sla(ComputeId(3)).grid_share, 0.5);
        assert_eq!(infra.sla(ComputeId(4)).grid_share, 1.0);
    }

    #[test]
    fn out_of_range_shares_are_clamped() {
        assert_eq!(Sla::shared(1.5).grid_share, 1.0);
        assert_eq!(Sla::shared(-0.25).grid_share, 0.0);
        assert_eq!(Sla::shared(f64::INFINITY).grid_share, 1.0);
        assert_eq!(Sla::shared(f64::NEG_INFINITY).grid_share, 0.0);
        assert_eq!(Sla::shared(f64::NAN).grid_share, 0.0, "NaN shares nothing");
        // Clamped SLAs behave like their boundary values.
        assert_eq!(Sla::shared(7.0).usable_slots(64), 64);
        assert_eq!(Sla::shared(-1.0).usable_slots(64), 0);
    }
}
