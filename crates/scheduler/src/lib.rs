//! # dgf-scheduler — grid schedulers and brokers
//!
//! "Grid schedulers and brokers act as intermediaries, that do the
//! planning and matchmaking between the appropriate tasks in a workflow
//! with the resources that are available. They are used to convert the
//! abstract execution logic into concrete infrastructure-based execution
//! logic." (paper, §3.2)
//!
//! This crate implements:
//!
//! * the **abstract task** model ([`AbstractTask`]) — what a DGL
//!   `execute` step describes before binding,
//! * the **Infrastructure Description** ([`InfraDescription`]) — per-
//!   resource SLAs giving domains "full autonomous control over what
//!   resources are shared with other grid users" (§2.3),
//! * the §2.3 **cost model** ([`CostWeights`], [`CostBreakdown`]): data
//!   moved, idle CPU, clock time, bandwidth,
//! * four **planners** ([`PlannerKind`]): `Random`, `RoundRobin`,
//!   `GreedyLocal` (data locality only), and `CostBased` (full cost
//!   model) — the baselines and the paper's preferred approach,
//! * **late vs. early binding** ([`BindingMode`], [`BindingCache`]) — the
//!   §2.3 "infrastructure-based execution logic" conversion either ahead
//!   of time or per-execution,
//! * a **virtual-data catalog** ([`VirtualDataCatalog`]) in the style of
//!   GriPhyN Chimera: "if the required output data is already available
//!   (virtual data), it need not be derived again."

mod binding;
mod cost;
mod infra;
mod planner;
mod task;
mod virtual_data;

pub use binding::{BindingCache, BindingMode};
pub use cost::{CostBreakdown, CostWeights};
pub use infra::{InfraDescription, Sla};
pub use planner::{Placement, PlannerError, PlannerKind, Scheduler, StagePlan};
pub use task::{AbstractTask, ResourceReq};
pub use virtual_data::{Derivation, VirtualDataCatalog};
