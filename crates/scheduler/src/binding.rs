//! Late vs. early binding of abstract tasks to infrastructure.
//!
//! §2.3: "This late binding allows execution of the each iteration at a
//! different location based on the infrastructure availability just
//! before the tasks are executed." Early binding — planning the whole
//! workflow once, up front — is the comparison point for experiment E6.

use crate::planner::{Placement, PlannerError, Scheduler};
use crate::task::AbstractTask;
use dgf_dgms::DataGrid;
use std::collections::HashMap;

/// When tasks are bound to concrete resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BindingMode {
    /// Plan each task immediately before it runs (the paper's approach).
    #[default]
    Late,
    /// Plan every task against the grid state at submission time and
    /// stick to those choices even as the grid changes.
    Early,
}

/// A store of early-bound placements, keyed by task instance id.
///
/// Under [`BindingMode::Late`] the cache is bypassed entirely; under
/// [`BindingMode::Early`] the first `resolve` for a key plans and pins,
/// and later calls replay the pinned placement even if the resource has
/// since failed (the failure is then discovered — expensively — at
/// execution time, which is precisely the behaviour E6 measures).
#[derive(Debug)]
pub struct BindingCache {
    mode: BindingMode,
    pinned: HashMap<String, Placement>,
}

impl BindingCache {
    /// A cache operating in the given mode.
    pub fn new(mode: BindingMode) -> Self {
        BindingCache { mode, pinned: HashMap::new() }
    }

    /// The active mode.
    pub fn mode(&self) -> BindingMode {
        self.mode
    }

    /// Resolve a placement for task instance `key`.
    ///
    /// When the scheduler carries an observability handle, each call is
    /// counted into `scheduler/binding.plans` (a fresh plan was computed)
    /// or `scheduler/binding.replays` (an early-bound placement was
    /// replayed from the pin cache). When the caller also passes a span
    /// context (`ctx`), a `binding` attribute — `plan` or `replay` — is
    /// stamped on that span so traces show which path each task took.
    pub fn resolve(
        &mut self,
        scheduler: &mut Scheduler,
        grid: &DataGrid,
        key: &str,
        task: &AbstractTask,
        ctx: Option<dgf_obs::SpanContext>,
    ) -> Result<Placement, PlannerError> {
        let note = |scheduler: &Scheduler, which: &str| {
            if let Some(obs) = scheduler.obs() {
                obs.inc("scheduler", &format!("binding.{which}s"));
                if let Some(ctx) = ctx {
                    obs.span_attr(ctx, "binding", which);
                }
            }
        };
        match self.mode {
            BindingMode::Late => {
                note(scheduler, "plan");
                scheduler.plan(grid, task)
            }
            BindingMode::Early => {
                if let Some(p) = self.pinned.get(key) {
                    note(scheduler, "replay");
                    return Ok(p.clone());
                }
                note(scheduler, "plan");
                let p = scheduler.plan(grid, task)?;
                self.pinned.insert(key.to_owned(), p.clone());
                Ok(p)
            }
        }
    }

    /// Pre-plan a batch of tasks (what a Pegasus-style up-front planner
    /// does for a whole abstract workflow). No-op in late mode.
    pub fn plan_ahead<'a>(
        &mut self,
        scheduler: &mut Scheduler,
        grid: &DataGrid,
        tasks: impl IntoIterator<Item = (&'a str, &'a AbstractTask)>,
    ) -> Result<usize, PlannerError> {
        if self.mode == BindingMode::Late {
            return Ok(0);
        }
        let mut n = 0;
        for (key, task) in tasks {
            if !self.pinned.contains_key(key) {
                let p = scheduler.plan(grid, task)?;
                self.pinned.insert(key.to_owned(), p);
                n += 1;
            }
        }
        Ok(n)
    }

    /// Number of pinned placements.
    pub fn pinned_count(&self) -> usize {
        self.pinned.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::PlannerKind;
    use dgf_dgms::{Principal, UserRegistry};
    use dgf_simgrid::{Duration, GridBuilder, GridPreset};

    fn grid() -> DataGrid {
        let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 3 });
        let mut users = UserRegistry::new();
        users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
        DataGrid::new(topology, users)
    }

    #[test]
    fn late_mode_replans_every_time() {
        let mut g = grid();
        let mut s = Scheduler::new(PlannerKind::CostBased, 1);
        let mut cache = BindingCache::new(BindingMode::Late);
        let task = AbstractTask::compute_only("t", Duration::from_secs(10));
        let p1 = cache.resolve(&mut s, &g, "k", &task, None).unwrap();
        // Kill the chosen resource; late binding routes around it.
        g.topology_mut().compute_mut(p1.compute).online = false;
        let p2 = cache.resolve(&mut s, &g, "k", &task, None).unwrap();
        assert_ne!(p1.compute, p2.compute);
        assert_eq!(cache.pinned_count(), 0);
    }

    #[test]
    fn early_mode_pins_even_across_failures() {
        let mut g = grid();
        let mut s = Scheduler::new(PlannerKind::CostBased, 1);
        let mut cache = BindingCache::new(BindingMode::Early);
        let task = AbstractTask::compute_only("t", Duration::from_secs(10));
        let p1 = cache.resolve(&mut s, &g, "k", &task, None).unwrap();
        g.topology_mut().compute_mut(p1.compute).online = false;
        let p2 = cache.resolve(&mut s, &g, "k", &task, None).unwrap();
        assert_eq!(p1.compute, p2.compute, "early binding sticks to the stale choice");
        assert_eq!(cache.pinned_count(), 1);
    }

    #[test]
    fn plan_ahead_pins_batches() {
        let g = grid();
        let mut s = Scheduler::new(PlannerKind::RoundRobin, 1);
        let mut cache = BindingCache::new(BindingMode::Early);
        let t1 = AbstractTask::compute_only("a", Duration::from_secs(1));
        let t2 = AbstractTask::compute_only("b", Duration::from_secs(1));
        let n = cache.plan_ahead(&mut s, &g, [("a", &t1), ("b", &t2)]).unwrap();
        assert_eq!(n, 2);
        assert_eq!(cache.pinned_count(), 2);
        // Late mode ignores plan_ahead.
        let mut late = BindingCache::new(BindingMode::Late);
        assert_eq!(late.plan_ahead(&mut s, &g, [("a", &t1)]).unwrap(), 0);
    }
}
