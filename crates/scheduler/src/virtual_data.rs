//! The virtual-data catalog (GriPhyN Chimera substitute).
//!
//! "If the required output data is already available (virtual data), it
//! need not be derived again." (§2.3) The catalog records which outputs
//! each (code, inputs) derivation produced; a later identical derivation
//! whose outputs still exist is skipped.

use dgf_dgms::{DataGrid, LogicalPath};
use std::collections::HashMap;

/// One recorded derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Derivation {
    /// Business-logic code name.
    pub code: String,
    /// Input logical paths (order-normalized).
    pub inputs: Vec<LogicalPath>,
    /// Output logical paths the derivation produced.
    pub outputs: Vec<LogicalPath>,
}

/// Key: code + sorted inputs.
fn key(code: &str, inputs: &[LogicalPath]) -> String {
    let mut sorted: Vec<String> = inputs.iter().map(|p| p.to_string()).collect();
    sorted.sort_unstable();
    format!("{code}|{}", sorted.join(","))
}

/// The catalog itself.
#[derive(Debug, Default)]
pub struct VirtualDataCatalog {
    derivations: HashMap<String, Derivation>,
    hits: u64,
    misses: u64,
}

impl VirtualDataCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completed derivation.
    pub fn register(&mut self, code: &str, inputs: &[LogicalPath], outputs: &[LogicalPath]) {
        let mut sorted_inputs = inputs.to_vec();
        sorted_inputs.sort();
        self.derivations.insert(
            key(code, inputs),
            Derivation { code: code.to_owned(), inputs: sorted_inputs, outputs: outputs.to_vec() },
        );
    }

    /// Check whether this derivation can be skipped: it was registered
    /// before **and** every recorded output still exists in the grid.
    /// Updates hit/miss statistics.
    pub fn lookup(&mut self, grid: &DataGrid, code: &str, inputs: &[LogicalPath]) -> Option<&Derivation> {
        let k = key(code, inputs);
        let usable = match self.derivations.get(&k) {
            Some(d) => d.outputs.iter().all(|o| grid.exists(o)),
            None => false,
        };
        if usable {
            self.hits += 1;
            self.derivations.get(&k)
        } else {
            self.misses += 1;
            None
        }
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of recorded derivations.
    pub fn len(&self) -> usize {
        self.derivations.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.derivations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_dgms::{Operation, Principal, UserRegistry};
    use dgf_simgrid::{GridBuilder, GridPreset, SimTime};

    fn path(s: &str) -> LogicalPath {
        LogicalPath::parse(s).unwrap()
    }

    fn grid() -> DataGrid {
        let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 1 });
        let mut users = UserRegistry::new();
        users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
        users.make_admin("u").unwrap();
        DataGrid::new(topology, users)
    }

    #[test]
    fn hit_requires_outputs_to_exist() {
        let mut g = grid();
        let mut cat = VirtualDataCatalog::new();
        let inputs = vec![path("/in1"), path("/in2")];
        let outputs = vec![path("/out")];
        assert!(cat.lookup(&g, "transform", &inputs).is_none(), "unknown derivation");
        cat.register("transform", &inputs, &outputs);
        assert!(cat.lookup(&g, "transform", &inputs).is_none(), "output not in the grid yet");
        g.execute("u", Operation::Ingest { path: path("/out"), size: 1, resource: "site0-disk".into() }, SimTime::ZERO)
            .unwrap();
        let hit = cat.lookup(&g, "transform", &inputs).unwrap();
        assert_eq!(hit.outputs, outputs);
        assert_eq!(cat.stats(), (1, 2));
    }

    #[test]
    fn input_order_does_not_matter() {
        let mut g = grid();
        g.execute("u", Operation::Ingest { path: path("/out"), size: 1, resource: "site0-disk".into() }, SimTime::ZERO)
            .unwrap();
        let mut cat = VirtualDataCatalog::new();
        cat.register("t", &[path("/a"), path("/b")], &[path("/out")]);
        assert!(cat.lookup(&g, "t", &[path("/b"), path("/a")]).is_some());
    }

    #[test]
    fn different_code_or_inputs_miss() {
        let mut g = grid();
        g.execute("u", Operation::Ingest { path: path("/out"), size: 1, resource: "site0-disk".into() }, SimTime::ZERO)
            .unwrap();
        let mut cat = VirtualDataCatalog::new();
        cat.register("t", &[path("/a")], &[path("/out")]);
        assert!(cat.lookup(&g, "other", &[path("/a")]).is_none());
        assert!(cat.lookup(&g, "t", &[path("/a"), path("/b")]).is_none());
        assert_eq!(cat.len(), 1);
        assert!(!cat.is_empty());
    }

    #[test]
    fn deleted_outputs_force_rederivation() {
        let mut g = grid();
        g.execute("u", Operation::Ingest { path: path("/out"), size: 1, resource: "site0-disk".into() }, SimTime::ZERO)
            .unwrap();
        let mut cat = VirtualDataCatalog::new();
        cat.register("t", &[path("/a")], &[path("/out")]);
        assert!(cat.lookup(&g, "t", &[path("/a")]).is_some());
        g.execute("u", Operation::Delete { path: path("/out") }, SimTime::ZERO).unwrap();
        assert!(cat.lookup(&g, "t", &[path("/a")]).is_none(), "stale derivation rejected");
    }
}
