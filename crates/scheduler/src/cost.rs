//! The §2.3 scheduling cost model.
//!
//! "The cost of executing each task at a domain could be based on
//! multiple parameters including the amount of data moved, the number of
//! CPU cycles that would be left idle in the grid, the clock time taken
//! to execute all the tasks, the bandwidth utilized, etc. The cost is
//! just an approximate value based on certain heuristics used by the
//! scheduler."

use dgf_simgrid::Duration;

/// Relative weights of the four §2.3 cost terms. Zeroing a weight is the
/// ablation knob benchmarked in experiment E5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Weight per gigabyte moved across the grid.
    pub data_moved_per_gb: f64,
    /// Weight per slot-second the claimed CPU sits idle waiting for data.
    pub idle_cpu_per_slot_sec: f64,
    /// Weight per second of wall-clock (stage-in + execution).
    pub clock_per_sec: f64,
    /// Weight per second of WAN link occupancy.
    pub bandwidth_per_link_sec: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        // Balanced defaults: a gigabyte moved costs as much as ~10 s of
        // wall clock; idle CPU and link occupancy weigh lighter.
        CostWeights {
            data_moved_per_gb: 10.0,
            idle_cpu_per_slot_sec: 0.5,
            clock_per_sec: 1.0,
            bandwidth_per_link_sec: 0.2,
        }
    }
}

impl CostWeights {
    /// Pure-makespan weights (classic list scheduling).
    pub fn makespan_only() -> Self {
        CostWeights { data_moved_per_gb: 0.0, idle_cpu_per_slot_sec: 0.0, clock_per_sec: 1.0, bandwidth_per_link_sec: 0.0 }
    }

    /// Pure-data-movement weights (bandwidth-starved grids).
    pub fn data_only() -> Self {
        CostWeights { data_moved_per_gb: 1.0, idle_cpu_per_slot_sec: 0.0, clock_per_sec: 0.0, bandwidth_per_link_sec: 0.0 }
    }
}

/// The estimated cost components of placing one task at one site.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// Time spent staging inputs before execution can start.
    pub stage_in: Duration,
    /// Execution time at the chosen site.
    pub exec: Duration,
    /// Bytes transferred across the grid for staging.
    pub bytes_moved: u64,
    /// Slot-seconds the claimed slot idles during stage-in.
    pub idle_slot_secs: f64,
    /// Seconds of WAN-link occupancy (sum over traversed links).
    pub link_occupancy_secs: f64,
}

impl CostBreakdown {
    /// Stage-in plus execution: the task's wall-clock contribution.
    pub fn wall_clock(&self) -> Duration {
        self.stage_in + self.exec
    }

    /// The scalar score the cost-based planner minimizes.
    pub fn total(&self, w: &CostWeights) -> f64 {
        let gb = self.bytes_moved as f64 / 1e9;
        gb * w.data_moved_per_gb
            + self.idle_slot_secs * w.idle_cpu_per_slot_sec
            + self.wall_clock().as_secs_f64() * w.clock_per_sec
            + self.link_occupancy_secs * w.bandwidth_per_link_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CostBreakdown {
        CostBreakdown {
            stage_in: Duration::from_secs(20),
            exec: Duration::from_secs(100),
            bytes_moved: 2_000_000_000,
            idle_slot_secs: 20.0,
            link_occupancy_secs: 20.0,
        }
    }

    #[test]
    fn total_combines_all_terms() {
        let c = sample();
        let w = CostWeights::default();
        let expected = 2.0 * 10.0 + 20.0 * 0.5 + 120.0 * 1.0 + 20.0 * 0.2;
        assert!((c.total(&w) - expected).abs() < 1e-9);
        assert_eq!(c.wall_clock(), Duration::from_secs(120));
    }

    #[test]
    fn ablation_weights_isolate_terms() {
        let c = sample();
        assert_eq!(c.total(&CostWeights::makespan_only()), 120.0);
        assert_eq!(c.total(&CostWeights::data_only()), 2.0);
    }

    #[test]
    fn local_placement_costs_only_execution() {
        let c = CostBreakdown { exec: Duration::from_secs(50), ..Default::default() };
        assert_eq!(c.total(&CostWeights::default()), 50.0);
    }
}
