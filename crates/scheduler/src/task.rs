//! The abstract task: execution logic before infrastructure binding.

use dgf_dgms::LogicalPath;
use dgf_simgrid::Duration;

/// An abstract resource requirement — "the description might be just a
/// logical or abstract specification of the type of resource required
/// rather than a specific physical system" (§2.3).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResourceReq {
    /// Minimum free execution slots at the site.
    pub min_slots: u32,
    /// Pin to a named domain (rare; defeats late binding).
    pub domain: Option<String>,
}

impl ResourceReq {
    /// Parse the DGL `resourceType` attribute: `"compute"`,
    /// `"compute:16"` (≥16 slots), or `"compute@sdsc"` (pinned domain).
    pub fn parse(spec: &str) -> Option<ResourceReq> {
        let rest = spec.strip_prefix("compute")?;
        if rest.is_empty() {
            return Some(ResourceReq::default());
        }
        if let Some(n) = rest.strip_prefix(':') {
            return n.parse().ok().map(|min_slots| ResourceReq { min_slots, domain: None });
        }
        if let Some(d) = rest.strip_prefix('@') {
            return Some(ResourceReq { min_slots: 0, domain: Some(d.to_owned()) });
        }
        None
    }
}

/// One business-logic task awaiting placement: the scheduler's input.
#[derive(Debug, Clone, PartialEq)]
pub struct AbstractTask {
    /// Business-logic code name (provenance + virtual-data key).
    pub code: String,
    /// Nominal duration on the reference machine.
    pub nominal: Duration,
    /// Logical input paths (must exist in the DGMS at planning time).
    pub inputs: Vec<LogicalPath>,
    /// Logical outputs with their sizes.
    pub outputs: Vec<(LogicalPath, u64)>,
    /// Resource requirement.
    pub requirement: ResourceReq,
    /// Submitting VO (SLA matchmaking).
    pub vo: Option<String>,
}

impl AbstractTask {
    /// A task with no inputs or outputs (pure compute).
    pub fn compute_only(code: impl Into<String>, nominal: Duration) -> Self {
        AbstractTask {
            code: code.into(),
            nominal,
            inputs: Vec::new(),
            outputs: Vec::new(),
            requirement: ResourceReq::default(),
            vo: None,
        }
    }

    /// Total bytes this task will write.
    pub fn output_bytes(&self) -> u64 {
        self.outputs.iter().map(|(_, b)| b).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_req_parsing() {
        assert_eq!(ResourceReq::parse("compute"), Some(ResourceReq::default()));
        assert_eq!(ResourceReq::parse("compute:16"), Some(ResourceReq { min_slots: 16, domain: None }));
        assert_eq!(
            ResourceReq::parse("compute@sdsc"),
            Some(ResourceReq { min_slots: 0, domain: Some("sdsc".into()) })
        );
        assert_eq!(ResourceReq::parse("storage"), None);
        assert_eq!(ResourceReq::parse("compute:x"), None);
    }

    #[test]
    fn output_accounting() {
        let mut t = AbstractTask::compute_only("sum", Duration::from_secs(10));
        assert_eq!(t.output_bytes(), 0);
        t.outputs.push((LogicalPath::parse("/o1").unwrap(), 100));
        t.outputs.push((LogicalPath::parse("/o2").unwrap(), 50));
        assert_eq!(t.output_bytes(), 150);
    }
}
