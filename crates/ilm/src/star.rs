//! The §2.1 star topologies as DGL flow builders.

use dgf_dgl::{DglError, DglOperation, Flow, FlowBuilder};
use dgf_dgms::{DataGrid, LogicalPath};
use std::fmt;

/// Errors while assembling star flows.
#[derive(Debug, Clone, PartialEq)]
pub enum StarError {
    /// A named domain does not exist in the topology.
    UnknownDomain(String),
    /// A domain has no storage resource suitable for the role.
    NoSuitableStorage(String),
    /// A source collection holds no objects.
    EmptySource(LogicalPath),
    /// DGL-level assembly failed.
    Dgl(DglError),
}

impl fmt::Display for StarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StarError::UnknownDomain(d) => write!(f, "unknown domain {d:?}"),
            StarError::NoSuitableStorage(d) => write!(f, "domain {d:?} has no suitable storage"),
            StarError::EmptySource(p) => write!(f, "source collection {p} is empty"),
            StarError::Dgl(e) => write!(f, "DGL error: {e}"),
        }
    }
}

impl std::error::Error for StarError {}

impl From<DglError> for StarError {
    fn from(e: DglError) -> Self {
        StarError::Dgl(e)
    }
}

/// The **imploding star** (BBSRC-CCLRC): every object under each source
/// collection is replicated to the archiver's staging resource, verified
/// by checksum, then migrated to the archiver's deep store; finally the
/// source replica is trimmed.
///
/// "Information from all the domains in the datagrid is finally pulled
/// towards this domain. This certainly involves a very well planned
/// archival schedule." (§2.1)
///
/// Per-source work is wrapped in a parallel flow (sources are
/// independent hospitals); per-object steps are sequential (copy →
/// verify → deep-store → trim).
pub fn imploding_star_flow(
    grid: &DataGrid,
    sources: &[(LogicalPath, String)], // (collection, source resource name)
    staging_resource: &str,
    deep_resource: &str,
) -> Result<Flow, StarError> {
    // Resolve early so bad configuration fails at build time, not mid-run.
    for name in [staging_resource, deep_resource] {
        grid.resolve_resource(name).map_err(|_| StarError::NoSuitableStorage(name.to_owned()))?;
    }
    let mut outer = FlowBuilder::parallel("imploding-star");
    for (i, (collection, source_resource)) in sources.iter().enumerate() {
        grid.resolve_resource(source_resource)
            .map_err(|_| StarError::NoSuitableStorage(source_resource.clone()))?;
        let per_object = FlowBuilder::for_each_in_collection(
            format!("archive-src{i}"),
            "file",
            collection.to_string(),
        )
        .step(
            "stage",
            DglOperation::Replicate { path: "${file}".into(), src: Some(source_resource.clone()), dst: staging_resource.to_owned() },
        )
        .step(
            "verify",
            DglOperation::Checksum { path: "${file}".into(), resource: Some(staging_resource.to_owned()), register: false },
        )
        .step(
            "deep-store",
            DglOperation::Migrate { path: "${file}".into(), from: staging_resource.to_owned(), to: deep_resource.to_owned() },
        )
        .step(
            "release-source",
            DglOperation::Trim { path: "${file}".into(), resource: source_resource.clone() },
        )
        .build()?;
        outer = outer.flow(per_object);
    }
    Ok(outer.build()?)
}

/// One tier of an exploding star: the destination resource names at each
/// site of the tier, paired with the resource the tier reads *from*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TierSpec {
    /// Human label ("tier1").
    pub label: String,
    /// (source resource at the parent site, destination resource at this
    /// site) pairs — one per site in this tier.
    pub fanout: Vec<(String, String)>,
}

/// The **exploding star** (CMS/CERN): data created at the center is
/// "replicated in stages at different tiers across the globe" — tier N+1
/// reads from its tier-N parent, never from the center, so the center's
/// uplink is traversed once per tier-1 site only.
pub fn exploding_star_flow(
    grid: &DataGrid,
    dataset: &LogicalPath,
    tiers: &[TierSpec],
) -> Result<Flow, StarError> {
    if grid.list(dataset).map(|l| l.is_empty()).unwrap_or(true) {
        return Err(StarError::EmptySource(dataset.clone()));
    }
    for tier in tiers {
        for (src, dst) in &tier.fanout {
            for name in [src, dst] {
                grid.resolve_resource(name).map_err(|_| StarError::NoSuitableStorage(name.clone()))?;
            }
        }
    }
    // Tiers propagate sequentially; within a tier, sites replicate in
    // parallel; per site, every object in the dataset is copied.
    let mut stages = FlowBuilder::sequential("exploding-star");
    for tier in tiers {
        let mut tier_flow = FlowBuilder::parallel(format!("stage-{}", tier.label));
        for (site_idx, (src, dst)) in tier.fanout.iter().enumerate() {
            let per_site = FlowBuilder::for_each_in_collection(
                format!("{}-site{site_idx}", tier.label),
                "file",
                dataset.to_string(),
            )
            .step(
                "replicate",
                DglOperation::Replicate { path: "${file}".into(), src: Some(src.clone()), dst: dst.clone() },
            )
            .build()?;
            tier_flow = tier_flow.flow(per_site);
        }
        stages = stages.flow(tier_flow.build()?);
    }
    Ok(stages.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_dgl::{Children, ControlPattern};
    use dgf_dgms::{Operation, Principal, UserRegistry};
    use dgf_simgrid::{GridBuilder, GridPreset, SimTime};

    fn path(s: &str) -> LogicalPath {
        LogicalPath::parse(s).unwrap()
    }

    fn bbsrc_grid(sources: u32) -> DataGrid {
        let topology = GridBuilder::preset(GridPreset::ImplodingStar { sources });
        let mut users = UserRegistry::new();
        users.register(Principal::new("archivist", topology.domain_by_name("archiver").unwrap()));
        users.make_admin("archivist").unwrap();
        let mut g = DataGrid::new(topology, users);
        for i in 0..sources {
            let coll = format!("/hospital{i:02}");
            g.execute("archivist", Operation::CreateCollection { path: path(&coll) }, SimTime::ZERO).unwrap();
            for j in 0..3 {
                g.execute(
                    "archivist",
                    Operation::Ingest {
                        path: path(&format!("{coll}/scan{j}.dat")),
                        size: 1_000_000,
                        resource: format!("hospital{i:02}-disk"),
                    },
                    SimTime::ZERO,
                )
                .unwrap();
            }
        }
        g
    }

    #[test]
    fn imploding_star_builds_per_source_pipelines() {
        let g = bbsrc_grid(4);
        let sources: Vec<_> = (0..4)
            .map(|i| (path(&format!("/hospital{i:02}")), format!("hospital{i:02}-disk")))
            .collect();
        let flow = imploding_star_flow(&g, &sources, "archiver-disk", "archiver-tape").unwrap();
        flow.validate().unwrap();
        match &flow.children {
            Children::Flows(fs) => {
                assert_eq!(fs.len(), 4, "one pipeline per hospital");
                for f in fs {
                    assert!(matches!(f.logic.pattern, ControlPattern::ForEach { .. }));
                    assert_eq!(f.children.len(), 4, "stage/verify/deep-store/release");
                }
            }
            _ => panic!("expected sub-flows"),
        }
        assert!(matches!(flow.logic.pattern, ControlPattern::Parallel));
    }

    #[test]
    fn imploding_star_rejects_unknown_resources() {
        let g = bbsrc_grid(1);
        let sources = vec![(path("/hospital00"), "hospital00-disk".to_owned())];
        assert!(matches!(
            imploding_star_flow(&g, &sources, "no-such", "archiver-tape"),
            Err(StarError::NoSuitableStorage(_))
        ));
        let bad_sources = vec![(path("/hospital00"), "nope".to_owned())];
        assert!(imploding_star_flow(&g, &bad_sources, "archiver-disk", "archiver-tape").is_err());
    }

    fn cms_grid() -> DataGrid {
        let topology = GridBuilder::preset(GridPreset::Tiered { tier1: 2, tier2_per_tier1: 2 });
        let mut users = UserRegistry::new();
        users.register(Principal::new("cms", topology.domain_by_name("tier0").unwrap()));
        users.make_admin("cms").unwrap();
        let mut g = DataGrid::new(topology, users);
        g.execute("cms", Operation::CreateCollection { path: path("/run2005A") }, SimTime::ZERO).unwrap();
        for i in 0..5 {
            g.execute(
                "cms",
                Operation::Ingest { path: path(&format!("/run2005A/evt{i}.dat")), size: 2_000_000, resource: "tier0-pfs".into() },
                SimTime::ZERO,
            )
            .unwrap();
        }
        g
    }

    #[test]
    fn exploding_star_stages_through_tiers() {
        let g = cms_grid();
        let tiers = vec![
            TierSpec {
                label: "tier1".into(),
                fanout: vec![
                    ("tier0-pfs".into(), "tier1-0-disk".into()),
                    ("tier0-pfs".into(), "tier1-1-disk".into()),
                ],
            },
            TierSpec {
                label: "tier2".into(),
                fanout: vec![
                    ("tier1-0-disk".into(), "tier2-0-0-disk".into()),
                    ("tier1-0-disk".into(), "tier2-0-1-disk".into()),
                    ("tier1-1-disk".into(), "tier2-1-0-disk".into()),
                    ("tier1-1-disk".into(), "tier2-1-1-disk".into()),
                ],
            },
        ];
        let flow = exploding_star_flow(&g, &path("/run2005A"), &tiers).unwrap();
        flow.validate().unwrap();
        assert!(matches!(flow.logic.pattern, ControlPattern::Sequential), "tiers are staged");
        match &flow.children {
            Children::Flows(stages) => {
                assert_eq!(stages.len(), 2);
                assert!(matches!(stages[0].logic.pattern, ControlPattern::Parallel));
                assert_eq!(stages[0].children.len(), 2, "two tier-1 sites");
                assert_eq!(stages[1].children.len(), 4, "four tier-2 sites");
            }
            _ => panic!("expected staged sub-flows"),
        }
    }

    #[test]
    fn exploding_star_requires_a_nonempty_dataset() {
        let g = cms_grid();
        assert!(matches!(
            exploding_star_flow(&g, &path("/missing"), &[]),
            Err(StarError::EmptySource(_))
        ));
    }

    #[test]
    fn star_flows_serialize_to_dgl_documents() {
        let g = bbsrc_grid(2);
        let sources: Vec<_> = (0..2)
            .map(|i| (path(&format!("/hospital{i:02}")), format!("hospital{i:02}-disk")))
            .collect();
        let flow = imploding_star_flow(&g, &sources, "archiver-disk", "archiver-tape").unwrap();
        let req = dgf_dgl::DataGridRequest::flow("bbsrc-nightly", "archivist", flow.clone()).asynchronous();
        let parsed = dgf_dgl::parse_request(&req.to_xml()).unwrap();
        match parsed.body {
            dgf_dgl::RequestBody::Flow(f) => assert_eq!(f, flow),
            _ => panic!(),
        }
    }
}
