//! Recurring, window-constrained ILM jobs.

use dgf_dgl::Flow;
use dgf_simgrid::{Duration, ScheduleWindow, SimTime};

/// A long-run ILM process: a DGL flow to run repeatedly, but only inside
/// a schedule window ("an ILM process could only be run at some domains
/// during non-working hours or on weekends", §2.1).
///
/// The DfMS consumes these: at each period boundary it computes the next
/// permitted start with [`IlmJob::next_start`] and submits the flow.
#[derive(Debug, Clone)]
pub struct IlmJob {
    /// Job name (stable across runs; provenance groups by it).
    pub name: String,
    /// Grid user the job's flows run as.
    pub run_as: String,
    /// The flow each run executes.
    pub flow: Flow,
    /// When the job may run.
    pub window: ScheduleWindow,
    /// Desired period between run *starts* (e.g. daily).
    pub period: Duration,
}

impl IlmJob {
    /// A job runnable at any time.
    pub fn unconstrained(name: impl Into<String>, run_as: impl Into<String>, flow: Flow, period: Duration) -> Self {
        IlmJob { name: name.into(), run_as: run_as.into(), flow, window: ScheduleWindow::always(), period }
    }

    /// A job constrained to a window.
    pub fn windowed(
        name: impl Into<String>,
        run_as: impl Into<String>,
        flow: Flow,
        window: ScheduleWindow,
        period: Duration,
    ) -> Self {
        IlmJob { name: name.into(), run_as: run_as.into(), flow, window, period }
    }

    /// The earliest permitted start at or after `now`.
    pub fn next_start(&self, now: SimTime) -> SimTime {
        self.window.next_open(now)
    }

    /// The start of the run after one that started at `started`: one
    /// period later, shifted into the window.
    pub fn start_after(&self, started: SimTime) -> SimTime {
        self.next_start(started + self.period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_dgl::Flow as DglFlow;

    fn flow() -> DglFlow {
        DglFlow::sequence("noop", vec![])
    }

    #[test]
    fn unconstrained_jobs_start_immediately() {
        let j = IlmJob::unconstrained("j", "ilm", flow(), Duration::from_days(1));
        let t = SimTime::from_hours(5);
        assert_eq!(j.next_start(t), t);
        assert_eq!(j.start_after(t), t + Duration::from_days(1));
    }

    #[test]
    fn weekend_jobs_wait_for_saturday() {
        let j = IlmJob::windowed("archive", "ilm", flow(), ScheduleWindow::weekends(), Duration::from_days(7));
        // Wednesday (day 2) noon → Saturday (day 5) midnight.
        let wednesday_noon = SimTime::from_hours(2 * 24 + 12);
        assert_eq!(j.next_start(wednesday_noon), SimTime::from_days(5));
        // A run started Saturday recurs the following Saturday.
        let started = SimTime::from_days(5);
        assert_eq!(j.start_after(started), SimTime::from_days(12));
    }

    #[test]
    fn nightly_jobs_respect_off_hours() {
        let j = IlmJob::windowed("nightly", "ilm", flow(), ScheduleWindow::off_hours(20, 6), Duration::from_days(1));
        // Monday 10:00 → Monday 20:00.
        assert_eq!(j.next_start(SimTime::from_hours(10)), SimTime::from_hours(20));
        // Already inside the window: start now.
        assert_eq!(j.next_start(SimTime::from_hours(22)), SimTime::from_hours(22));
    }
}
