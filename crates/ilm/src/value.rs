//! The domain value model: what data is worth, to whom, and when.

use dgf_dgms::LogicalPath;
use dgf_simgrid::{DomainId, SimTime};

/// One value assertion: data under `scope` has business value `value`
/// (0.0–1.0) to `domain` as of `asserted_at`, decaying exponentially
/// with half-life `half_life_days` (0 = no decay).
///
/// §2.1: "data being created might be of interest to the domain that is
/// creating it. Later, some other domain in the data grid might have
/// more value for the same information."
#[derive(Debug, Clone, PartialEq)]
pub struct ValueEntry {
    /// The valuing domain.
    pub domain: DomainId,
    /// The subtree the value applies to.
    pub scope: LogicalPath,
    /// Value at assertion time, in `[0, 1]`.
    pub value: f64,
    /// When the value was asserted.
    pub asserted_at: SimTime,
    /// Exponential decay half-life in days; 0 disables decay.
    pub half_life_days: f64,
}

impl ValueEntry {
    /// The entry's value at time `now` (never negative; saturates at the
    /// asserted value for `now` before assertion).
    pub fn value_at(&self, now: SimTime) -> f64 {
        if self.half_life_days <= 0.0 || now <= self.asserted_at {
            return self.value;
        }
        let age_days = now.since(self.asserted_at).as_secs_f64() / 86_400.0;
        self.value * 0.5f64.powf(age_days / self.half_life_days)
    }
}

/// The grid-wide value model: a set of assertions, queried per
/// (domain, path, time). The most specific (deepest-scope) assertion for
/// a domain wins; absent any assertion the value is 0.
#[derive(Debug, Clone, Default)]
pub struct DomainValueModel {
    entries: Vec<ValueEntry>,
}

impl DomainValueModel {
    /// An empty model (everything worthless to everyone).
    pub fn new() -> Self {
        Self::default()
    }

    /// Assert a value.
    pub fn assert_value(&mut self, entry: ValueEntry) {
        self.entries.push(entry);
    }

    /// Convenience: assert a non-decaying value.
    pub fn set(&mut self, domain: DomainId, scope: LogicalPath, value: f64, at: SimTime) {
        self.assert_value(ValueEntry { domain, scope, value, asserted_at: at, half_life_days: 0.0 });
    }

    /// The value of `path` to `domain` at `now`.
    pub fn value(&self, domain: DomainId, path: &LogicalPath, now: SimTime) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.domain == domain && path.is_under(&e.scope))
            .max_by_key(|e| (e.scope.depth(), e.asserted_at))
            .map(|e| e.value_at(now))
            .unwrap_or(0.0)
    }

    /// The highest value any domain assigns to `path` at `now` — the
    /// grid-wide retention signal (data is kept as long as *someone*
    /// wants it).
    pub fn peak_value(&self, path: &LogicalPath, now: SimTime) -> f64 {
        self.entries
            .iter()
            .filter(|e| path.is_under(&e.scope))
            .map(|e| e.value_at(now))
            .fold(0.0, f64::max)
    }

    /// Number of assertions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no values are asserted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(s: &str) -> LogicalPath {
        LogicalPath::parse(s).unwrap()
    }

    #[test]
    fn most_specific_scope_wins() {
        let mut m = DomainValueModel::new();
        m.set(DomainId(0), path("/data"), 0.2, SimTime::ZERO);
        m.set(DomainId(0), path("/data/hot"), 0.9, SimTime::ZERO);
        assert_eq!(m.value(DomainId(0), &path("/data/cold/x"), SimTime::ZERO), 0.2);
        assert_eq!(m.value(DomainId(0), &path("/data/hot/x"), SimTime::ZERO), 0.9);
        assert_eq!(m.value(DomainId(1), &path("/data/hot/x"), SimTime::ZERO), 0.0, "other domain unaffected");
        assert_eq!(m.value(DomainId(0), &path("/elsewhere"), SimTime::ZERO), 0.0);
    }

    #[test]
    fn later_assertion_wins_at_equal_depth() {
        let mut m = DomainValueModel::new();
        m.set(DomainId(0), path("/d"), 0.9, SimTime::ZERO);
        m.set(DomainId(0), path("/d"), 0.1, SimTime::from_days(10));
        assert_eq!(m.value(DomainId(0), &path("/d/x"), SimTime::from_days(11)), 0.1);
    }

    #[test]
    fn decay_halves_per_half_life() {
        let e = ValueEntry {
            domain: DomainId(0),
            scope: path("/d"),
            value: 0.8,
            asserted_at: SimTime::ZERO,
            half_life_days: 30.0,
        };
        assert_eq!(e.value_at(SimTime::ZERO), 0.8);
        let after_30 = e.value_at(SimTime::from_days(30));
        assert!((after_30 - 0.4).abs() < 1e-9);
        let after_60 = e.value_at(SimTime::from_days(60));
        assert!((after_60 - 0.2).abs() < 1e-9);
    }

    #[test]
    fn peak_value_spans_domains() {
        let mut m = DomainValueModel::new();
        m.set(DomainId(0), path("/d"), 0.1, SimTime::ZERO);
        m.set(DomainId(1), path("/d"), 0.7, SimTime::ZERO);
        assert_eq!(m.peak_value(&path("/d/x"), SimTime::ZERO), 0.7);
        assert_eq!(m.peak_value(&path("/other"), SimTime::ZERO), 0.0);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    fn archiver_pattern_value_grows_elsewhere() {
        // §2.1: creator's interest decays; the archiver domain's interest
        // (asserted later) takes over.
        let mut m = DomainValueModel::new();
        m.assert_value(ValueEntry {
            domain: DomainId(0), // creator
            scope: path("/study"),
            value: 1.0,
            asserted_at: SimTime::ZERO,
            half_life_days: 14.0,
        });
        m.set(DomainId(9), path("/study"), 0.5, SimTime::from_days(30)); // archiver
        let now = SimTime::from_days(60);
        assert!(m.value(DomainId(0), &path("/study/scan1"), now) < 0.1);
        assert_eq!(m.value(DomainId(9), &path("/study/scan1"), now), 0.5);
    }
}
