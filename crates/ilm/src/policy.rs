//! Placement and retention policies, and the engine compiling them to
//! DGL flows.

use crate::value::DomainValueModel;
use dgf_dgl::{DglOperation, Flow, FlowBuilder};
use dgf_dgms::{DataGrid, LogicalPath};
use dgf_simgrid::{DomainId, SimTime, StorageTier};

/// One value band: objects whose domain value is at least `min_value`
/// belong on `tier` (bands are checked highest-first).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyBand {
    /// Inclusive lower bound of the band.
    pub min_value: f64,
    /// Target storage tier for the band.
    pub tier: StorageTier,
}

/// A placement policy: ordered value bands. Values below every band fall
/// through to the retention policy.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementPolicy {
    bands: Vec<PolicyBand>,
}

impl PlacementPolicy {
    /// A policy from bands (sorted highest `min_value` first internally).
    pub fn new(mut bands: Vec<PolicyBand>) -> Self {
        bands.sort_by(|a, b| b.min_value.partial_cmp(&a.min_value).expect("finite"));
        PlacementPolicy { bands }
    }

    /// The classic four-tier ILM ladder.
    pub fn standard() -> Self {
        Self::new(vec![
            PolicyBand { min_value: 0.8, tier: StorageTier::ParallelFs },
            PolicyBand { min_value: 0.4, tier: StorageTier::Disk },
            PolicyBand { min_value: 0.05, tier: StorageTier::Archive },
            PolicyBand { min_value: 0.0, tier: StorageTier::Tape },
        ])
    }

    /// The tier a value maps to, if any band covers it.
    pub fn tier_for(&self, value: f64) -> Option<StorageTier> {
        self.bands.iter().find(|b| value >= b.min_value).map(|b| b.tier)
    }
}

/// Retention: when is data allowed to leave the grid entirely?
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetentionPolicy {
    /// Delete when the grid-wide peak value drops below this.
    pub delete_below_value: f64,
    /// Never delete data younger than this many days, regardless of value.
    pub min_age_days: f64,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        RetentionPolicy { delete_below_value: 0.01, min_age_days: 30.0 }
    }
}

/// One decision the policy engine produced for one object.
#[derive(Debug, Clone, PartialEq)]
pub enum IlmAction {
    /// Move the domain's replica from `from` to `to` (resource names).
    Migrate { path: LogicalPath, from: String, to: String },
    /// Delete the object grid-wide (fell below retention).
    Delete { path: LogicalPath },
}

impl IlmAction {
    /// The affected path.
    pub fn path(&self) -> &LogicalPath {
        match self {
            IlmAction::Migrate { path, .. } | IlmAction::Delete { path } => path,
        }
    }
}

/// The ILM policy engine: evaluates one domain's holdings against the
/// value model and produces actions (and DGL flows).
#[derive(Debug, Clone)]
pub struct PolicyEngine {
    /// The placement ladder.
    pub placement: PlacementPolicy,
    /// The retention rule.
    pub retention: RetentionPolicy,
}

impl PolicyEngine {
    /// An engine with [`PlacementPolicy::standard`] and default retention.
    pub fn standard() -> Self {
        PolicyEngine { placement: PlacementPolicy::standard(), retention: RetentionPolicy::default() }
    }

    /// Evaluate every object with a replica in `domain` at time `now`.
    ///
    /// For each object: compute the domain value; if retention says
    /// delete (grid-wide peak below threshold and old enough), emit
    /// [`IlmAction::Delete`]; else if the object's replica in this domain
    /// sits on a different tier than the placement ladder demands — and
    /// the domain has a resource of the target tier with space — emit
    /// [`IlmAction::Migrate`].
    pub fn evaluate(
        &self,
        grid: &DataGrid,
        model: &DomainValueModel,
        domain: DomainId,
        now: SimTime,
    ) -> Vec<IlmAction> {
        let topo = grid.topology();
        let mut actions = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for storage in topo.domain(domain).storage.clone() {
            for path in grid.objects_on(storage) {
                if !seen.insert(path.clone()) {
                    continue;
                }
                let Ok(obj) = grid.stat_object(&path) else { continue };
                // Retention first: grid-wide signal.
                let age_days = now.since(obj.created).as_secs_f64() / 86_400.0;
                if model.peak_value(&path, now) < self.retention.delete_below_value
                    && age_days >= self.retention.min_age_days
                {
                    actions.push(IlmAction::Delete { path });
                    continue;
                }
                let value = model.value(domain, &path, now);
                let Some(target_tier) = self.placement.tier_for(value) else { continue };
                // Where does this domain hold the object now?
                let Some(current) = obj
                    .replicas
                    .iter()
                    .find(|r| topo.storage_domain(r.storage) == domain && r.valid)
                else {
                    continue;
                };
                let current_tier = topo.storage(current.storage).tier;
                if current_tier == target_tier {
                    continue;
                }
                // Find a target resource of the right tier with room.
                let Some(target) = topo
                    .domain(domain)
                    .storage
                    .iter()
                    .copied()
                    .find(|s| {
                        let r = topo.storage(*s);
                        r.tier == target_tier && r.online && r.free() >= obj.size
                    })
                else {
                    continue;
                };
                actions.push(IlmAction::Migrate {
                    path,
                    from: topo.storage(current.storage).name.clone(),
                    to: topo.storage(target).name.clone(),
                });
            }
        }
        actions
    }

    /// Compile a batch of actions into a single sequential DGL flow —
    /// the §2.1 requirement that ILM processes be expressible in the
    /// same interoperable language as everything else.
    pub fn compile_flow(&self, name: &str, actions: &[IlmAction]) -> Flow {
        let mut b = FlowBuilder::sequential(name);
        for (i, action) in actions.iter().enumerate() {
            let op = match action {
                IlmAction::Migrate { path, from, to } => {
                    DglOperation::Migrate { path: path.to_string(), from: from.clone(), to: to.clone() }
                }
                IlmAction::Delete { path } => DglOperation::Delete { path: path.to_string() },
            };
            b = b.step(format!("ilm-{i}"), op);
        }
        b.build().expect("generated flows are structurally valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgf_dgms::{Operation, Principal, UserRegistry};
    use dgf_simgrid::{GridBuilder, GridPreset};

    fn path(s: &str) -> LogicalPath {
        LogicalPath::parse(s).unwrap()
    }

    fn grid() -> DataGrid {
        let topology = GridBuilder::preset(GridPreset::UniformMesh { domains: 2 });
        let mut users = UserRegistry::new();
        users.register(Principal::new("u", topology.domain_ids().next().unwrap()));
        users.make_admin("u").unwrap();
        DataGrid::new(topology, users)
    }

    #[test]
    fn placement_bands_map_values_to_tiers() {
        let p = PlacementPolicy::standard();
        assert_eq!(p.tier_for(0.9), Some(StorageTier::ParallelFs));
        assert_eq!(p.tier_for(0.5), Some(StorageTier::Disk));
        assert_eq!(p.tier_for(0.1), Some(StorageTier::Archive));
        assert_eq!(p.tier_for(0.0), Some(StorageTier::Tape));
    }

    #[test]
    fn cooling_data_migrates_down_tier() {
        let mut g = grid();
        g.execute("u", Operation::Ingest { path: path("/hot.dat"), size: 100, resource: "site0-pfs".into() }, SimTime::ZERO)
            .unwrap();
        let mut model = DomainValueModel::new();
        let d0 = g.topology().domain_by_name("site0").unwrap();
        // Hot now, decaying with a 10-day half-life.
        model.assert_value(crate::value::ValueEntry {
            domain: d0,
            scope: path("/hot.dat"),
            value: 1.0,
            asserted_at: SimTime::ZERO,
            half_life_days: 10.0,
        });
        let engine = PolicyEngine::standard();
        // Day 0: already on the right tier, nothing to do.
        assert!(engine.evaluate(&g, &model, d0, SimTime::ZERO).is_empty());
        // Day 20: value = 0.25 → Archive.
        let actions = engine.evaluate(&g, &model, d0, SimTime::from_days(20));
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            IlmAction::Migrate { from, to, .. } => {
                assert_eq!(from, "site0-pfs");
                assert_eq!(to, "site0-archive");
            }
            other => panic!("expected migrate, got {other:?}"),
        }
    }

    #[test]
    fn retention_deletes_old_worthless_data_only() {
        let mut g = grid();
        g.execute("u", Operation::Ingest { path: path("/junk.dat"), size: 1, resource: "site0-disk".into() }, SimTime::ZERO)
            .unwrap();
        let model = DomainValueModel::new(); // nobody values anything
        let engine = PolicyEngine::standard();
        let d0 = g.topology().domain_by_name("site0").unwrap();
        // Too young to delete: falls through to placement → tape migrate.
        let actions = engine.evaluate(&g, &model, d0, SimTime::from_days(1));
        assert!(actions.iter().all(|a| matches!(a, IlmAction::Migrate { .. })), "{actions:?}");
        // Old enough: delete.
        let actions = engine.evaluate(&g, &model, d0, SimTime::from_days(40));
        assert_eq!(actions, vec![IlmAction::Delete { path: path("/junk.dat") }]);
    }

    #[test]
    fn other_domains_holdings_are_untouched() {
        let mut g = grid();
        g.execute("u", Operation::Ingest { path: path("/x"), size: 1, resource: "site1-disk".into() }, SimTime::ZERO)
            .unwrap();
        let model = DomainValueModel::new();
        let engine = PolicyEngine::standard();
        let d0 = g.topology().domain_by_name("site0").unwrap();
        assert!(engine.evaluate(&g, &model, d0, SimTime::from_days(100)).is_empty());
    }

    #[test]
    fn actions_compile_to_a_valid_dgl_flow() {
        let engine = PolicyEngine::standard();
        let actions = vec![
            IlmAction::Migrate { path: path("/a"), from: "x-disk".into(), to: "x-tape".into() },
            IlmAction::Delete { path: path("/b") },
        ];
        let flow = engine.compile_flow("nightly-ilm", &actions);
        assert_eq!(flow.step_count(), 2);
        flow.validate().unwrap();
        // Round-trips through DGL XML like any other flow.
        let req = dgf_dgl::DataGridRequest::flow("r", "ilm-daemon", flow.clone());
        let parsed = dgf_dgl::parse_request(&req.to_xml()).unwrap();
        match parsed.body {
            dgf_dgl::RequestBody::Flow(f) => assert_eq!(f, flow),
            _ => panic!("flow body expected"),
        }
    }

    #[test]
    fn full_disks_block_migration_gracefully() {
        let mut g = grid();
        g.execute("u", Operation::Ingest { path: path("/x"), size: 100, resource: "site0-pfs".into() }, SimTime::ZERO)
            .unwrap();
        // Fill the would-be archive target completely.
        let archive = g.resolve_resource("site0-archive").unwrap();
        let free = g.topology().storage(archive).free();
        assert!(g.topology_mut().storage_mut(archive).allocate(free));
        // Also fill tape so nothing fits.
        let tape_like: Vec<_> = g.topology().domain(g.topology().domain_by_name("site0").unwrap()).storage.clone();
        for s in tape_like {
            let free = g.topology().storage(s).free();
            let _ = g.topology_mut().storage_mut(s).allocate(free);
        }
        let model = DomainValueModel::new();
        let engine = PolicyEngine::standard();
        let d0 = g.topology().domain_by_name("site0").unwrap();
        let actions = engine.evaluate(&g, &model, d0, SimTime::from_days(1));
        assert!(actions.is_empty(), "no capacity → no actions, not a panic");
    }
}
