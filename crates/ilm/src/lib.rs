//! # dgf-ilm — datagrid Information Lifecycle Management (paper §2.1)
//!
//! "ILM solutions use data value and business policies to determine data
//! placement and retention. ... Information in the grid would have
//! different business values for different domains participating in the
//! datagrid."
//!
//! This crate implements:
//!
//! * the **domain value model** ([`DomainValueModel`]): per-domain,
//!   per-subtree business value that decays over time as users lose
//!   interest,
//! * **placement and retention policies** ([`PlacementPolicy`],
//!   [`PolicyEngine`]): value bands → storage tiers, low-value data
//!   migrated down-tier or deleted, with the decisions **compiled to DGL
//!   flows** — one language for every long-run process, exactly as §4
//!   argues,
//! * the two canonical topologies: the **imploding star** (BBSRC:
//!   hospital data pulled into an archiver domain) and the **exploding
//!   star** (CMS: CERN data staged out through tiers) as flow builders
//!   ([`imploding_star_flow`], [`exploding_star_flow`]),
//! * recurring, window-constrained **ILM jobs** ([`IlmJob`]): "an ILM
//!   process could only be run at some domains during non-working hours
//!   or on weekends".

mod job;
mod policy;
mod star;
mod value;

pub use job::IlmJob;
pub use policy::{IlmAction, PlacementPolicy, PolicyBand, PolicyEngine, RetentionPolicy};
pub use star::{exploding_star_flow, imploding_star_flow, StarError, TierSpec};
pub use value::{DomainValueModel, ValueEntry};
