//! Minimal offline stand-in for `criterion` (dev environment only).
//!
//! Implements just enough of the criterion 0.5 API surface for the
//! workspace's benches to compile, lint, and run without a registry:
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size`/`throughput`/`bench_with_input`,
//! `BenchmarkId`, `Throughput`, and `Bencher::iter`. Measurement is a
//! fixed short loop with a mean-time printout — honest wall-clock
//! numbers, none of criterion's statistics.

use std::fmt;
use std::time::Instant;

/// Timing loop driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    /// Mean seconds per iteration, recorded by [`Bencher::iter`].
    secs_per_iter: f64,
}

impl Bencher {
    /// Run `f` repeatedly and record the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call keeps cold-start noise out of the mean.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.secs_per_iter = start.elapsed().as_secs_f64() / self.iters as f64;
    }
}

/// Throughput annotation; echoed in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A parameterized benchmark name.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", name.into()) }
    }

    /// Parameter-only form (the group supplies the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 10 }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { iters: self.iters, secs_per_iter: 0.0 };
        f(&mut b);
        report(name, b.secs_per_iter, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), iters: self.iters, throughput: None, _criterion: self }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Criterion's sample count maps onto our fixed iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).max(1);
        self
    }

    /// Annotate subsequent benches with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { iters: self.iters, secs_per_iter: 0.0 };
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), b.secs_per_iter, self.throughput);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self {
        let mut b = Bencher { iters: self.iters, secs_per_iter: 0.0 };
        f(&mut b);
        report(&format!("{}/{id}", self.name), b.secs_per_iter, self.throughput);
        self
    }

    /// End the group (printing is per-bench; nothing to flush).
    pub fn finish(self) {}
}

fn report(name: &str, secs_per_iter: f64, throughput: Option<Throughput>) {
    let time = if secs_per_iter >= 1.0 {
        format!("{secs_per_iter:.3} s")
    } else if secs_per_iter >= 1e-3 {
        format!("{:.3} ms", secs_per_iter * 1e3)
    } else {
        format!("{:.3} µs", secs_per_iter * 1e6)
    };
    match throughput {
        Some(Throughput::Bytes(n)) if secs_per_iter > 0.0 => {
            println!("{name}: {time}/iter ({:.1} MiB/s)", n as f64 / secs_per_iter / (1024.0 * 1024.0));
        }
        Some(Throughput::Elements(n)) if secs_per_iter > 0.0 => {
            println!("{name}: {time}/iter ({:.0} elem/s)", n as f64 / secs_per_iter);
        }
        _ => println!("{name}: {time}/iter"),
    }
}

/// Bundle bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
