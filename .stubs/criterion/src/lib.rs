//! Empty offline stand-in for `criterion` (dev environment only); all
//! workspace benches use `harness = false` plain `main` functions.
