//! Local offline stand-in for `rand` 0.8 (dev environment only; never
//! committed into the dependency graph). Implements only the surface the
//! workspace uses: `SmallRng::seed_from_u64`, `gen_range` over integer and
//! f64 ranges, and `gen_bool`.

use std::ops::Range;

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p));
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro-style generator seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 2],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            SmallRng { s: [splitmix64(&mut st), splitmix64(&mut st)] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xoroshiro128+
            let s0 = self.s[0];
            let mut s1 = self.s[1];
            let out = s0.wrapping_add(s1);
            s1 ^= s0;
            self.s[0] = s0.rotate_left(24) ^ s1 ^ (s1 << 16);
            self.s[1] = s1.rotate_left(37);
            out
        }
    }
}
