//! Local offline stand-in for `crossbeam` channels (dev environment only).

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError};

    pub enum Sender<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            match self {
                Sender::Unbounded(s) => Sender::Unbounded(s.clone()),
                Sender::Bounded(s) => Sender::Bounded(s.clone()),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self {
                Sender::Unbounded(s) => s.send(value),
                Sender::Bounded(s) => s.send(value),
            }
        }
    }

    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender::Unbounded(tx), Receiver(rx))
    }

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender::Bounded(tx), Receiver(rx))
    }
}
