//! Local offline stand-in for `parking_lot` (dev environment only).

use std::sync::{Mutex as StdMutex, MutexGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}
