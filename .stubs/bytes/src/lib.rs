//! Local offline stand-in for `bytes` (dev environment only).

use std::ops::Deref;

#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

pub trait BufMut {
    fn put_u64_le(&mut self, v: u64);
    fn put_u8(&mut self, v: u8);
    fn put_slice(&mut self, s: &[u8]);
}

#[derive(Debug, Clone, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn truncate(&mut self, len: usize) {
        self.0.truncate(len)
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl BufMut for BytesMut {
    fn put_u64_le(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.0.extend_from_slice(s);
    }
}
