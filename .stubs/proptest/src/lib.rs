//! Empty offline stand-in for `proptest` (dev environment only). The
//! proptest-based test files are cfg-stripped while this stub is active.
