//! Offline stand-in for `proptest` (dev environment only).
//!
//! Implements the subset of the proptest API this repository's property
//! tests use — `proptest!`, `prop_oneof!`, `prop_assert*`/`prop_assume!`,
//! integer-range / regex-string / tuple / vec / option strategies,
//! `prop_map` and `prop_recursive` — over a deterministic splitmix64
//! generator seeded from the test name, so runs are reproducible and
//! need no network, persistence files, or shrinking machinery.

use std::rc::Rc;

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assert!`-style failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejection: the input is out of scope; retry.
    Reject(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with a message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic splitmix64 generator.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; 0 when `n` is 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// A value generator. Mirrors proptest's `Strategy` minus shrinking.
pub trait Strategy: Clone {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `f` receives a strategy for the
    /// recursive positions and returns the composite level. `depth`
    /// bounds nesting; the size/branch hints are accepted but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            cur = union2(leaf.clone(), f(cur).boxed());
        }
        cur
    }

    /// Type-erase into a clonable box.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy { generate: Rc::new(move |rng: &mut TestRng| self.generate(rng)) }
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<T> {
    generate: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { generate: Rc::clone(&self.generate) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

fn union2<T: 'static>(a: BoxedStrategy<T>, b: BoxedStrategy<T>) -> BoxedStrategy<T> {
    BoxedStrategy {
        generate: Rc::new(move |rng: &mut TestRng| {
            if rng.below(2) == 0 {
                a.generate(rng)
            } else {
                b.generate(rng)
            }
        }),
    }
}

/// Weighted choice among boxed arms — the `prop_oneof!` backend.
pub fn one_of<T>(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
    OneOf { arms: Rc::new(arms) }
}

/// The strategy produced by [`one_of`] / `prop_oneof!`.
pub struct OneOf<T> {
    arms: Rc<Vec<(u32, BoxedStrategy<T>)>>,
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf { arms: Rc::clone(&self.arms) }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total.max(1));
        for (w, arm) in self.arms.iter() {
            if pick < *w as u64 {
                return arm.generate(rng);
            }
            pick -= *w as u64;
        }
        self.arms.last().expect("prop_oneof! needs at least one arm").1.generate(rng)
    }
}

/// The strategy produced by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O + Clone> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                if span <= 0 {
                    return self.start;
                }
                ((self.start as i128) + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// String literals act as regex strategies, as in proptest.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate_matching(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:ident),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($n,)+) = self;
                ($($n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! { (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) (A, B, C, D, E, G) }

/// A strategy always yielding a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// The full-range strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<bool>()` et al.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// [`any`] strategy for `bool`.
#[derive(Clone)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.below(2) == 0
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! int_arbitrary {
    ($($t:ty => $any:ident),* $(,)?) => {$(
        /// [`any`] strategy for the corresponding integer type.
        #[derive(Clone)]
        pub struct $any;
        impl Strategy for $any {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = $any;
            fn arbitrary() -> $any {
                $any
            }
        }
    )*};
}
int_arbitrary! {
    u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64,
    i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64, usize => AnyUsize,
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A vector of `len in range` elements from `element`.
    pub fn vec<S: Strategy>(element: S, range: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, min: range.start, max: range.end }
    }

    /// The strategy produced by [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.max.saturating_sub(self.min).max(1) as u64;
            let n = self.min + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// `Some` half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// The strategy produced by [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(2) == 0 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Regex-subset string strategies.
pub mod string {
    use super::{Strategy, TestRng};

    /// Error from [`string_regex`] (never produced — kept for API shape).
    #[derive(Debug)]
    pub struct Error;

    /// A strategy generating strings matching a regex subset: literal
    /// characters, `[...]` classes (ranges, escapes, trailing `-`),
    /// `\PC` (printable), and `{m}` / `{m,n}` quantifiers.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        Ok(RegexStrategy { pattern: pattern.to_owned() })
    }

    /// The strategy produced by [`string_regex`].
    #[derive(Clone)]
    pub struct RegexStrategy {
        pattern: String,
    }

    impl Strategy for RegexStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_matching(&self.pattern, rng)
        }
    }

    const PRINTABLE: (char, char) = (' ', '~');

    fn pick(set: &[(char, char)], rng: &mut TestRng) -> char {
        let total: u64 = set.iter().map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1).sum();
        let mut idx = rng.below(total.max(1));
        for (lo, hi) in set {
            let width = (*hi as u64) - (*lo as u64) + 1;
            if idx < width {
                return char::from_u32(*lo as u32 + idx as u32).unwrap_or(*lo);
            }
            idx -= width;
        }
        set.first().map(|(lo, _)| *lo).unwrap_or('a')
    }

    fn parse_class(chars: &[char], mut i: usize) -> (Vec<(char, char)>, usize) {
        let mut set = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            // `a-z` is a range unless the `-` is last before `]`.
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                let hi = chars[i + 2];
                set.push((c.min(hi), c.max(hi)));
                i += 3;
            } else {
                set.push((c, c));
                i += 1;
            }
        }
        (set, i + 1)
    }

    fn parse_quantifier(chars: &[char], mut i: usize) -> (usize, usize, usize) {
        if chars.get(i) != Some(&'{') {
            return (1, 1, i);
        }
        i += 1;
        let mut digits = String::new();
        let mut min = 0usize;
        let mut saw_comma = false;
        while let Some(&c) = chars.get(i) {
            i += 1;
            match c {
                '0'..='9' => digits.push(c),
                ',' => {
                    min = digits.parse().unwrap_or(0);
                    digits.clear();
                    saw_comma = true;
                }
                '}' => {
                    let n: usize = digits.parse().unwrap_or(min);
                    let (lo, hi) = if saw_comma { (min, n.max(min)) } else { (n, n) };
                    return (lo, hi, i);
                }
                _ => {}
            }
        }
        (min, min, i)
    }

    pub(crate) fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let set: Vec<(char, char)> = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1);
                    i = next;
                    set
                }
                '\\' => {
                    i += 1;
                    match chars.get(i) {
                        // `\PC` / `\pC`: printable stand-in.
                        Some('P') | Some('p') => {
                            i += 1;
                            if chars.get(i) == Some(&'C') {
                                i += 1;
                            }
                            vec![PRINTABLE]
                        }
                        Some(&c) => {
                            i += 1;
                            vec![(c, c)]
                        }
                        None => break,
                    }
                }
                c => {
                    i += 1;
                    vec![(c, c)]
                }
            };
            let (min, max, next) = parse_quantifier(&chars, i);
            i = next;
            let n = min + rng.below((max.saturating_sub(min) + 1) as u64) as usize;
            for _ in 0..n {
                out.push(pick(&set, rng));
            }
        }
        out
    }
}

/// The case-loop driver used by the `proptest!` expansion.
pub mod runner {
    use super::{ProptestConfig, TestCaseError, TestRng};

    fn fnv(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Run `cases` generated cases of `body`; rejections retry (with a
    /// bounded budget) and failures panic with the case's message.
    pub fn run<F>(config: ProptestConfig, name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let seed = fnv(name);
        let mut passed = 0u32;
        let mut attempts = 0u64;
        let budget = (config.cases as u64).saturating_mul(20).max(20);
        while passed < config.cases && attempts < budget {
            attempts += 1;
            let mut rng = TestRng::new(seed ^ attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            match body(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed (case {attempts}): {msg}")
                }
            }
        }
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            <$crate::ProptestConfig as ::std::default::Default>::default(); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __proptest_cfg: $crate::ProptestConfig = $cfg;
            $crate::runner::run(__proptest_cfg, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                let __proptest_result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                __proptest_result
            });
        }
    )*};
}

/// Weighted (`w => strategy`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::one_of(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::one_of(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Assert a property; failing aborts the current case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality; failing aborts the current case with both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Reject the current case (it is regenerated, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The glob-import surface test files use.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}
