(function() {
    const implementors = Object.fromEntries([["dgf_dgms",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/str/traits/trait.FromStr.html\" title=\"trait core::str::traits::FromStr\">FromStr</a> for <a class=\"struct\" href=\"dgf_dgms/struct.LogicalPath.html\" title=\"struct dgf_dgms::LogicalPath\">LogicalPath</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[297]}