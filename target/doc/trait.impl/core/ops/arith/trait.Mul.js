(function() {
    const implementors = Object.fromEntries([["dgf_simgrid",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Mul.html\" title=\"trait core::ops::arith::Mul\">Mul</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.u64.html\">u64</a>&gt; for <a class=\"struct\" href=\"dgf_simgrid/struct.Duration.html\" title=\"struct dgf_simgrid::Duration\">Duration</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[386]}