(function() {
    const implementors = Object.fromEntries([["dgf_simgrid",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Add.html\" title=\"trait core::ops::arith::Add\">Add</a> for <a class=\"struct\" href=\"dgf_simgrid/struct.Duration.html\" title=\"struct dgf_simgrid::Duration\">Duration</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/ops/arith/trait.Add.html\" title=\"trait core::ops::arith::Add\">Add</a>&lt;<a class=\"struct\" href=\"dgf_simgrid/struct.Duration.html\" title=\"struct dgf_simgrid::Duration\">Duration</a>&gt; for <a class=\"struct\" href=\"dgf_simgrid/struct.SimTime.html\" title=\"struct dgf_simgrid::SimTime\">SimTime</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[667]}