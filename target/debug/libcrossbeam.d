/root/repo/target/debug/libcrossbeam.rlib: /root/repo/.stubs/crossbeam/src/lib.rs
