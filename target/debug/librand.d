/root/repo/target/debug/librand.rlib: /root/repo/.stubs/rand/src/lib.rs
