/root/repo/target/debug/examples/bbsrc_imploding_star-4c9f5194048980e0.d: crates/datagridflows/../../examples/bbsrc_imploding_star.rs

/root/repo/target/debug/examples/bbsrc_imploding_star-4c9f5194048980e0: crates/datagridflows/../../examples/bbsrc_imploding_star.rs

crates/datagridflows/../../examples/bbsrc_imploding_star.rs:
