/root/repo/target/debug/examples/trigger_automation-c2d277b96bdcf5ae.d: crates/datagridflows/../../examples/trigger_automation.rs

/root/repo/target/debug/examples/trigger_automation-c2d277b96bdcf5ae: crates/datagridflows/../../examples/trigger_automation.rs

crates/datagridflows/../../examples/trigger_automation.rs:
