/root/repo/target/debug/examples/cms_exploding_star-f4c382d48e1dfaf1.d: crates/datagridflows/../../examples/cms_exploding_star.rs

/root/repo/target/debug/examples/cms_exploding_star-f4c382d48e1dfaf1: crates/datagridflows/../../examples/cms_exploding_star.rs

crates/datagridflows/../../examples/cms_exploding_star.rs:
