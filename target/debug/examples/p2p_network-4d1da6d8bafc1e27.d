/root/repo/target/debug/examples/p2p_network-4d1da6d8bafc1e27.d: crates/datagridflows/../../examples/p2p_network.rs

/root/repo/target/debug/examples/p2p_network-4d1da6d8bafc1e27: crates/datagridflows/../../examples/p2p_network.rs

crates/datagridflows/../../examples/p2p_network.rs:
