/root/repo/target/debug/examples/scec_ingest-57a663b89a36faf6.d: crates/datagridflows/../../examples/scec_ingest.rs

/root/repo/target/debug/examples/scec_ingest-57a663b89a36faf6: crates/datagridflows/../../examples/scec_ingest.rs

crates/datagridflows/../../examples/scec_ingest.rs:
