/root/repo/target/debug/examples/quickstart-e222edb114451ba4.d: crates/datagridflows/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e222edb114451ba4: crates/datagridflows/../../examples/quickstart.rs

crates/datagridflows/../../examples/quickstart.rs:
