/root/repo/target/debug/examples/quickstart-0f68153608cfb980.d: crates/datagridflows/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0f68153608cfb980: crates/datagridflows/../../examples/quickstart.rs

crates/datagridflows/../../examples/quickstart.rs:
