/root/repo/target/debug/examples/p2p_network-7b3308be3760d8a1.d: crates/datagridflows/../../examples/p2p_network.rs

/root/repo/target/debug/examples/p2p_network-7b3308be3760d8a1: crates/datagridflows/../../examples/p2p_network.rs

crates/datagridflows/../../examples/p2p_network.rs:
