/root/repo/target/debug/examples/ucsd_md5_integrity-81a59a1c6c208190.d: crates/datagridflows/../../examples/ucsd_md5_integrity.rs

/root/repo/target/debug/examples/ucsd_md5_integrity-81a59a1c6c208190: crates/datagridflows/../../examples/ucsd_md5_integrity.rs

crates/datagridflows/../../examples/ucsd_md5_integrity.rs:
