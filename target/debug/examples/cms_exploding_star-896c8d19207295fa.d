/root/repo/target/debug/examples/cms_exploding_star-896c8d19207295fa.d: crates/datagridflows/../../examples/cms_exploding_star.rs

/root/repo/target/debug/examples/cms_exploding_star-896c8d19207295fa: crates/datagridflows/../../examples/cms_exploding_star.rs

crates/datagridflows/../../examples/cms_exploding_star.rs:
