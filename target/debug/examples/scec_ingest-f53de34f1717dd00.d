/root/repo/target/debug/examples/scec_ingest-f53de34f1717dd00.d: crates/datagridflows/../../examples/scec_ingest.rs

/root/repo/target/debug/examples/scec_ingest-f53de34f1717dd00: crates/datagridflows/../../examples/scec_ingest.rs

crates/datagridflows/../../examples/scec_ingest.rs:
