/root/repo/target/debug/examples/trigger_automation-283de1d1cd731852.d: crates/datagridflows/../../examples/trigger_automation.rs

/root/repo/target/debug/examples/trigger_automation-283de1d1cd731852: crates/datagridflows/../../examples/trigger_automation.rs

crates/datagridflows/../../examples/trigger_automation.rs:
