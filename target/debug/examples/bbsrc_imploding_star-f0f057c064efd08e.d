/root/repo/target/debug/examples/bbsrc_imploding_star-f0f057c064efd08e.d: crates/datagridflows/../../examples/bbsrc_imploding_star.rs

/root/repo/target/debug/examples/bbsrc_imploding_star-f0f057c064efd08e: crates/datagridflows/../../examples/bbsrc_imploding_star.rs

crates/datagridflows/../../examples/bbsrc_imploding_star.rs:
