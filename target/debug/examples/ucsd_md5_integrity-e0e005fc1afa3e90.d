/root/repo/target/debug/examples/ucsd_md5_integrity-e0e005fc1afa3e90.d: crates/datagridflows/../../examples/ucsd_md5_integrity.rs

/root/repo/target/debug/examples/ucsd_md5_integrity-e0e005fc1afa3e90: crates/datagridflows/../../examples/ucsd_md5_integrity.rs

crates/datagridflows/../../examples/ucsd_md5_integrity.rs:
