/root/repo/target/debug/examples/observability-2ece82dc2163ebbf.d: crates/datagridflows/../../examples/observability.rs

/root/repo/target/debug/examples/observability-2ece82dc2163ebbf: crates/datagridflows/../../examples/observability.rs

crates/datagridflows/../../examples/observability.rs:
