/root/repo/target/debug/examples/wire_probe-1c31ca57d4ecab76.d: crates/datagridflows/examples/wire_probe.rs

/root/repo/target/debug/examples/wire_probe-1c31ca57d4ecab76: crates/datagridflows/examples/wire_probe.rs

crates/datagridflows/examples/wire_probe.rs:
