/root/repo/target/debug/deps/dgf_triggers-3b416fde7c674241.d: crates/triggers/src/lib.rs crates/triggers/src/engine.rs crates/triggers/src/trigger.rs

/root/repo/target/debug/deps/libdgf_triggers-3b416fde7c674241.rlib: crates/triggers/src/lib.rs crates/triggers/src/engine.rs crates/triggers/src/trigger.rs

/root/repo/target/debug/deps/libdgf_triggers-3b416fde7c674241.rmeta: crates/triggers/src/lib.rs crates/triggers/src/engine.rs crates/triggers/src/trigger.rs

crates/triggers/src/lib.rs:
crates/triggers/src/engine.rs:
crates/triggers/src/trigger.rs:
