/root/repo/target/debug/deps/engine_behaviour-4434a81c8fbaaa67.d: crates/core/tests/engine_behaviour.rs

/root/repo/target/debug/deps/engine_behaviour-4434a81c8fbaaa67: crates/core/tests/engine_behaviour.rs

crates/core/tests/engine_behaviour.rs:
