/root/repo/target/debug/deps/engine_behaviour-f679f11bf2f26a80.d: crates/core/tests/engine_behaviour.rs

/root/repo/target/debug/deps/engine_behaviour-f679f11bf2f26a80: crates/core/tests/engine_behaviour.rs

crates/core/tests/engine_behaviour.rs:
