/root/repo/target/debug/deps/cross_crate_provenance-5b278ff65261203f.d: crates/datagridflows/../../tests/cross_crate_provenance.rs

/root/repo/target/debug/deps/cross_crate_provenance-5b278ff65261203f: crates/datagridflows/../../tests/cross_crate_provenance.rs

crates/datagridflows/../../tests/cross_crate_provenance.rs:
