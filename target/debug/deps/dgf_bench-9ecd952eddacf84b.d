/root/repo/target/debug/deps/dgf_bench-9ecd952eddacf84b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdgf_bench-9ecd952eddacf84b.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdgf_bench-9ecd952eddacf84b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
