/root/repo/target/debug/deps/chaos-b5c4fde6c8f3409c.d: crates/datagridflows/../../tests/chaos.rs

/root/repo/target/debug/deps/chaos-b5c4fde6c8f3409c: crates/datagridflows/../../tests/chaos.rs

crates/datagridflows/../../tests/chaos.rs:
