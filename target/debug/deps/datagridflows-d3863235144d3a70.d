/root/repo/target/debug/deps/datagridflows-d3863235144d3a70.d: crates/datagridflows/src/lib.rs

/root/repo/target/debug/deps/libdatagridflows-d3863235144d3a70.rlib: crates/datagridflows/src/lib.rs

/root/repo/target/debug/deps/libdatagridflows-d3863235144d3a70.rmeta: crates/datagridflows/src/lib.rs

crates/datagridflows/src/lib.rs:
