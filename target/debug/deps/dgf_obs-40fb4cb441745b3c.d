/root/repo/target/debug/deps/dgf_obs-40fb4cb441745b3c.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/ring.rs

/root/repo/target/debug/deps/libdgf_obs-40fb4cb441745b3c.rmeta: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/ring.rs

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
crates/obs/src/ring.rs:
