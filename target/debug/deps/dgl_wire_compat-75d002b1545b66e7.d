/root/repo/target/debug/deps/dgl_wire_compat-75d002b1545b66e7.d: crates/datagridflows/../../tests/dgl_wire_compat.rs

/root/repo/target/debug/deps/dgl_wire_compat-75d002b1545b66e7: crates/datagridflows/../../tests/dgl_wire_compat.rs

crates/datagridflows/../../tests/dgl_wire_compat.rs:
