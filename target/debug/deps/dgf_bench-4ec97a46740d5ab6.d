/root/repo/target/debug/deps/dgf_bench-4ec97a46740d5ab6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/dgf_bench-4ec97a46740d5ab6: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
