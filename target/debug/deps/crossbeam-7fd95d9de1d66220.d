/root/repo/target/debug/deps/crossbeam-7fd95d9de1d66220.d: .stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-7fd95d9de1d66220.rlib: .stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-7fd95d9de1d66220.rmeta: .stubs/crossbeam/src/lib.rs

.stubs/crossbeam/src/lib.rs:
