/root/repo/target/debug/deps/parking_lot-3fbd5a2479904c9c.d: .stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-3fbd5a2479904c9c.rlib: .stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-3fbd5a2479904c9c.rmeta: .stubs/parking_lot/src/lib.rs

.stubs/parking_lot/src/lib.rs:
