/root/repo/target/debug/deps/proptest_sim-a22df5fad2addd4e.d: crates/simgrid/tests/proptest_sim.rs

/root/repo/target/debug/deps/proptest_sim-a22df5fad2addd4e: crates/simgrid/tests/proptest_sim.rs

crates/simgrid/tests/proptest_sim.rs:
