/root/repo/target/debug/deps/grid_operations-23014249499e9c10.d: crates/dgms/tests/grid_operations.rs

/root/repo/target/debug/deps/grid_operations-23014249499e9c10: crates/dgms/tests/grid_operations.rs

crates/dgms/tests/grid_operations.rs:
