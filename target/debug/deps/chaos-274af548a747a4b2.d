/root/repo/target/debug/deps/chaos-274af548a747a4b2.d: crates/datagridflows/../../tests/chaos.rs

/root/repo/target/debug/deps/chaos-274af548a747a4b2: crates/datagridflows/../../tests/chaos.rs

crates/datagridflows/../../tests/chaos.rs:
