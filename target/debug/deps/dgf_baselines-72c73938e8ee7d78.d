/root/repo/target/debug/deps/dgf_baselines-72c73938e8ee7d78.d: crates/baselines/src/lib.rs crates/baselines/src/client_engine.rs crates/baselines/src/cron.rs

/root/repo/target/debug/deps/dgf_baselines-72c73938e8ee7d78: crates/baselines/src/lib.rs crates/baselines/src/client_engine.rs crates/baselines/src/cron.rs

crates/baselines/src/lib.rs:
crates/baselines/src/client_engine.rs:
crates/baselines/src/cron.rs:
