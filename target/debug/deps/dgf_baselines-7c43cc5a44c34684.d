/root/repo/target/debug/deps/dgf_baselines-7c43cc5a44c34684.d: crates/baselines/src/lib.rs crates/baselines/src/client_engine.rs crates/baselines/src/cron.rs

/root/repo/target/debug/deps/libdgf_baselines-7c43cc5a44c34684.rlib: crates/baselines/src/lib.rs crates/baselines/src/client_engine.rs crates/baselines/src/cron.rs

/root/repo/target/debug/deps/libdgf_baselines-7c43cc5a44c34684.rmeta: crates/baselines/src/lib.rs crates/baselines/src/client_engine.rs crates/baselines/src/cron.rs

crates/baselines/src/lib.rs:
crates/baselines/src/client_engine.rs:
crates/baselines/src/cron.rs:
