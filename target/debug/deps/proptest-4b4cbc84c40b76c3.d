/root/repo/target/debug/deps/proptest-4b4cbc84c40b76c3.d: .stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-4b4cbc84c40b76c3: .stubs/proptest/src/lib.rs

.stubs/proptest/src/lib.rs:
