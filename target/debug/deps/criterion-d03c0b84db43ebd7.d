/root/repo/target/debug/deps/criterion-d03c0b84db43ebd7.d: .stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-d03c0b84db43ebd7.rlib: .stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-d03c0b84db43ebd7.rmeta: .stubs/criterion/src/lib.rs

.stubs/criterion/src/lib.rs:
