/root/repo/target/debug/deps/dgf_dfms-1e67a2fac3f76e6f.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/network.rs crates/core/src/provenance.rs crates/core/src/run.rs crates/core/src/server.rs

/root/repo/target/debug/deps/dgf_dfms-1e67a2fac3f76e6f: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/network.rs crates/core/src/provenance.rs crates/core/src/run.rs crates/core/src/server.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/network.rs:
crates/core/src/provenance.rs:
crates/core/src/run.rs:
crates/core/src/server.rs:
