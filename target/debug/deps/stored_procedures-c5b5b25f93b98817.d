/root/repo/target/debug/deps/stored_procedures-c5b5b25f93b98817.d: crates/core/tests/stored_procedures.rs

/root/repo/target/debug/deps/stored_procedures-c5b5b25f93b98817: crates/core/tests/stored_procedures.rs

crates/core/tests/stored_procedures.rs:
