/root/repo/target/debug/deps/engine_extras-18fab51ac11292e6.d: crates/core/tests/engine_extras.rs

/root/repo/target/debug/deps/engine_extras-18fab51ac11292e6: crates/core/tests/engine_extras.rs

crates/core/tests/engine_extras.rs:
