/root/repo/target/debug/deps/dgl_parse-b8af7861612df53a.d: crates/bench/benches/dgl_parse.rs

/root/repo/target/debug/deps/dgl_parse-b8af7861612df53a: crates/bench/benches/dgl_parse.rs

crates/bench/benches/dgl_parse.rs:
