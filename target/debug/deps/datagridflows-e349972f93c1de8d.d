/root/repo/target/debug/deps/datagridflows-e349972f93c1de8d.d: crates/datagridflows/src/lib.rs

/root/repo/target/debug/deps/datagridflows-e349972f93c1de8d: crates/datagridflows/src/lib.rs

crates/datagridflows/src/lib.rs:
