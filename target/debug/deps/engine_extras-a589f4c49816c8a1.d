/root/repo/target/debug/deps/engine_extras-a589f4c49816c8a1.d: crates/core/tests/engine_extras.rs

/root/repo/target/debug/deps/engine_extras-a589f4c49816c8a1: crates/core/tests/engine_extras.rs

crates/core/tests/engine_extras.rs:
