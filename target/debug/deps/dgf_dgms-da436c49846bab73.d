/root/repo/target/debug/deps/dgf_dgms-da436c49846bab73.d: crates/dgms/src/lib.rs crates/dgms/src/acl.rs crates/dgms/src/content.rs crates/dgms/src/error.rs crates/dgms/src/grid.rs crates/dgms/src/md5.rs crates/dgms/src/meta.rs crates/dgms/src/namespace.rs crates/dgms/src/ops.rs crates/dgms/src/path.rs

/root/repo/target/debug/deps/libdgf_dgms-da436c49846bab73.rmeta: crates/dgms/src/lib.rs crates/dgms/src/acl.rs crates/dgms/src/content.rs crates/dgms/src/error.rs crates/dgms/src/grid.rs crates/dgms/src/md5.rs crates/dgms/src/meta.rs crates/dgms/src/namespace.rs crates/dgms/src/ops.rs crates/dgms/src/path.rs

crates/dgms/src/lib.rs:
crates/dgms/src/acl.rs:
crates/dgms/src/content.rs:
crates/dgms/src/error.rs:
crates/dgms/src/grid.rs:
crates/dgms/src/md5.rs:
crates/dgms/src/meta.rs:
crates/dgms/src/namespace.rs:
crates/dgms/src/ops.rs:
crates/dgms/src/path.rs:
