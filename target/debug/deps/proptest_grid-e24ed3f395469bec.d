/root/repo/target/debug/deps/proptest_grid-e24ed3f395469bec.d: crates/dgms/tests/proptest_grid.rs

/root/repo/target/debug/deps/proptest_grid-e24ed3f395469bec: crates/dgms/tests/proptest_grid.rs

crates/dgms/tests/proptest_grid.rs:
