/root/repo/target/debug/deps/dgf_bench-6b4f4cd8c766176b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdgf_bench-6b4f4cd8c766176b.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdgf_bench-6b4f4cd8c766176b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
