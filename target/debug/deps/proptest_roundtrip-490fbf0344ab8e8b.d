/root/repo/target/debug/deps/proptest_roundtrip-490fbf0344ab8e8b.d: crates/xml/tests/proptest_roundtrip.rs

/root/repo/target/debug/deps/proptest_roundtrip-490fbf0344ab8e8b: crates/xml/tests/proptest_roundtrip.rs

crates/xml/tests/proptest_roundtrip.rs:
