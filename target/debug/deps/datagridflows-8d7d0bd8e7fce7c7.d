/root/repo/target/debug/deps/datagridflows-8d7d0bd8e7fce7c7.d: crates/datagridflows/src/lib.rs

/root/repo/target/debug/deps/libdatagridflows-8d7d0bd8e7fce7c7.rlib: crates/datagridflows/src/lib.rs

/root/repo/target/debug/deps/libdatagridflows-8d7d0bd8e7fce7c7.rmeta: crates/datagridflows/src/lib.rs

crates/datagridflows/src/lib.rs:
