/root/repo/target/debug/deps/dgf_xml-59cc55af0e8fc44a.d: crates/xml/src/lib.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/parser.rs crates/xml/src/tree.rs crates/xml/src/writer.rs

/root/repo/target/debug/deps/libdgf_xml-59cc55af0e8fc44a.rlib: crates/xml/src/lib.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/parser.rs crates/xml/src/tree.rs crates/xml/src/writer.rs

/root/repo/target/debug/deps/libdgf_xml-59cc55af0e8fc44a.rmeta: crates/xml/src/lib.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/parser.rs crates/xml/src/tree.rs crates/xml/src/writer.rs

crates/xml/src/lib.rs:
crates/xml/src/error.rs:
crates/xml/src/escape.rs:
crates/xml/src/parser.rs:
crates/xml/src/tree.rs:
crates/xml/src/writer.rs:
