/root/repo/target/debug/deps/bytes-7fac28c0dd9889d9.d: .stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-7fac28c0dd9889d9.rmeta: .stubs/bytes/src/lib.rs

.stubs/bytes/src/lib.rs:
