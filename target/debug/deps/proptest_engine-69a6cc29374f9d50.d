/root/repo/target/debug/deps/proptest_engine-69a6cc29374f9d50.d: crates/core/tests/proptest_engine.rs

/root/repo/target/debug/deps/proptest_engine-69a6cc29374f9d50: crates/core/tests/proptest_engine.rs

crates/core/tests/proptest_engine.rs:
