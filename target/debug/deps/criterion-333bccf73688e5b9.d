/root/repo/target/debug/deps/criterion-333bccf73688e5b9.d: .stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-333bccf73688e5b9: .stubs/criterion/src/lib.rs

.stubs/criterion/src/lib.rs:
