/root/repo/target/debug/deps/crossbeam-b789e069e945b904.d: .stubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-b789e069e945b904: .stubs/crossbeam/src/lib.rs

.stubs/crossbeam/src/lib.rs:
