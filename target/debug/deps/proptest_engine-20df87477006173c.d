/root/repo/target/debug/deps/proptest_engine-20df87477006173c.d: crates/core/tests/proptest_engine.rs

/root/repo/target/debug/deps/proptest_engine-20df87477006173c: crates/core/tests/proptest_engine.rs

crates/core/tests/proptest_engine.rs:
