/root/repo/target/debug/deps/dgf_xml-fed1feeec562683b.d: crates/xml/src/lib.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/parser.rs crates/xml/src/tree.rs crates/xml/src/writer.rs

/root/repo/target/debug/deps/dgf_xml-fed1feeec562683b: crates/xml/src/lib.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/parser.rs crates/xml/src/tree.rs crates/xml/src/writer.rs

crates/xml/src/lib.rs:
crates/xml/src/error.rs:
crates/xml/src/escape.rs:
crates/xml/src/parser.rs:
crates/xml/src/tree.rs:
crates/xml/src/writer.rs:
