/root/repo/target/debug/deps/observability-2424b2176e920df6.d: crates/datagridflows/../../tests/observability.rs

/root/repo/target/debug/deps/observability-2424b2176e920df6: crates/datagridflows/../../tests/observability.rs

crates/datagridflows/../../tests/observability.rs:
