/root/repo/target/debug/deps/parking_lot-00e857822faa787d.d: .stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-00e857822faa787d: .stubs/parking_lot/src/lib.rs

.stubs/parking_lot/src/lib.rs:
