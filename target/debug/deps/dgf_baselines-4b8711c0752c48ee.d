/root/repo/target/debug/deps/dgf_baselines-4b8711c0752c48ee.d: crates/baselines/src/lib.rs crates/baselines/src/client_engine.rs crates/baselines/src/cron.rs

/root/repo/target/debug/deps/dgf_baselines-4b8711c0752c48ee: crates/baselines/src/lib.rs crates/baselines/src/client_engine.rs crates/baselines/src/cron.rs

crates/baselines/src/lib.rs:
crates/baselines/src/client_engine.rs:
crates/baselines/src/cron.rs:
