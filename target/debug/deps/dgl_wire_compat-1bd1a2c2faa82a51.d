/root/repo/target/debug/deps/dgl_wire_compat-1bd1a2c2faa82a51.d: crates/datagridflows/../../tests/dgl_wire_compat.rs

/root/repo/target/debug/deps/dgl_wire_compat-1bd1a2c2faa82a51: crates/datagridflows/../../tests/dgl_wire_compat.rs

crates/datagridflows/../../tests/dgl_wire_compat.rs:
