/root/repo/target/debug/deps/bytes-5b8bdce80884ec7e.d: .stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-5b8bdce80884ec7e: .stubs/bytes/src/lib.rs

.stubs/bytes/src/lib.rs:
