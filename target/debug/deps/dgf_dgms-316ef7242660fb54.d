/root/repo/target/debug/deps/dgf_dgms-316ef7242660fb54.d: crates/dgms/src/lib.rs crates/dgms/src/acl.rs crates/dgms/src/content.rs crates/dgms/src/error.rs crates/dgms/src/grid.rs crates/dgms/src/md5.rs crates/dgms/src/meta.rs crates/dgms/src/namespace.rs crates/dgms/src/ops.rs crates/dgms/src/path.rs

/root/repo/target/debug/deps/dgf_dgms-316ef7242660fb54: crates/dgms/src/lib.rs crates/dgms/src/acl.rs crates/dgms/src/content.rs crates/dgms/src/error.rs crates/dgms/src/grid.rs crates/dgms/src/md5.rs crates/dgms/src/meta.rs crates/dgms/src/namespace.rs crates/dgms/src/ops.rs crates/dgms/src/path.rs

crates/dgms/src/lib.rs:
crates/dgms/src/acl.rs:
crates/dgms/src/content.rs:
crates/dgms/src/error.rs:
crates/dgms/src/grid.rs:
crates/dgms/src/md5.rs:
crates/dgms/src/meta.rs:
crates/dgms/src/namespace.rs:
crates/dgms/src/ops.rs:
crates/dgms/src/path.rs:
