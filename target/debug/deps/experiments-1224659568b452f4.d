/root/repo/target/debug/deps/experiments-1224659568b452f4.d: crates/bench/benches/experiments.rs

/root/repo/target/debug/deps/experiments-1224659568b452f4: crates/bench/benches/experiments.rs

crates/bench/benches/experiments.rs:
