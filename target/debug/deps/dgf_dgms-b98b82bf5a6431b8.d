/root/repo/target/debug/deps/dgf_dgms-b98b82bf5a6431b8.d: crates/dgms/src/lib.rs crates/dgms/src/acl.rs crates/dgms/src/content.rs crates/dgms/src/error.rs crates/dgms/src/grid.rs crates/dgms/src/md5.rs crates/dgms/src/meta.rs crates/dgms/src/namespace.rs crates/dgms/src/ops.rs crates/dgms/src/path.rs

/root/repo/target/debug/deps/libdgf_dgms-b98b82bf5a6431b8.rlib: crates/dgms/src/lib.rs crates/dgms/src/acl.rs crates/dgms/src/content.rs crates/dgms/src/error.rs crates/dgms/src/grid.rs crates/dgms/src/md5.rs crates/dgms/src/meta.rs crates/dgms/src/namespace.rs crates/dgms/src/ops.rs crates/dgms/src/path.rs

/root/repo/target/debug/deps/libdgf_dgms-b98b82bf5a6431b8.rmeta: crates/dgms/src/lib.rs crates/dgms/src/acl.rs crates/dgms/src/content.rs crates/dgms/src/error.rs crates/dgms/src/grid.rs crates/dgms/src/md5.rs crates/dgms/src/meta.rs crates/dgms/src/namespace.rs crates/dgms/src/ops.rs crates/dgms/src/path.rs

crates/dgms/src/lib.rs:
crates/dgms/src/acl.rs:
crates/dgms/src/content.rs:
crates/dgms/src/error.rs:
crates/dgms/src/grid.rs:
crates/dgms/src/md5.rs:
crates/dgms/src/meta.rs:
crates/dgms/src/namespace.rs:
crates/dgms/src/ops.rs:
crates/dgms/src/path.rs:
