/root/repo/target/debug/deps/datagridflows-443b2ab798526c77.d: crates/datagridflows/src/lib.rs

/root/repo/target/debug/deps/datagridflows-443b2ab798526c77: crates/datagridflows/src/lib.rs

crates/datagridflows/src/lib.rs:
