/root/repo/target/debug/deps/dgf_ilm-242035131589d0a5.d: crates/ilm/src/lib.rs crates/ilm/src/job.rs crates/ilm/src/policy.rs crates/ilm/src/star.rs crates/ilm/src/value.rs

/root/repo/target/debug/deps/libdgf_ilm-242035131589d0a5.rlib: crates/ilm/src/lib.rs crates/ilm/src/job.rs crates/ilm/src/policy.rs crates/ilm/src/star.rs crates/ilm/src/value.rs

/root/repo/target/debug/deps/libdgf_ilm-242035131589d0a5.rmeta: crates/ilm/src/lib.rs crates/ilm/src/job.rs crates/ilm/src/policy.rs crates/ilm/src/star.rs crates/ilm/src/value.rs

crates/ilm/src/lib.rs:
crates/ilm/src/job.rs:
crates/ilm/src/policy.rs:
crates/ilm/src/star.rs:
crates/ilm/src/value.rs:
