/root/repo/target/debug/deps/stored_procedures-43d0a935d0071983.d: crates/core/tests/stored_procedures.rs

/root/repo/target/debug/deps/stored_procedures-43d0a935d0071983: crates/core/tests/stored_procedures.rs

crates/core/tests/stored_procedures.rs:
