/root/repo/target/debug/deps/rand-3b13760f969eceac.d: .stubs/rand/src/lib.rs

/root/repo/target/debug/deps/rand-3b13760f969eceac: .stubs/rand/src/lib.rs

.stubs/rand/src/lib.rs:
