/root/repo/target/debug/deps/dgf_bench-c34fc10bdef2c726.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/dgf_bench-c34fc10bdef2c726: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
