/root/repo/target/debug/deps/dgf_triggers-e89af02093eae746.d: crates/triggers/src/lib.rs crates/triggers/src/engine.rs crates/triggers/src/trigger.rs

/root/repo/target/debug/deps/libdgf_triggers-e89af02093eae746.rmeta: crates/triggers/src/lib.rs crates/triggers/src/engine.rs crates/triggers/src/trigger.rs

crates/triggers/src/lib.rs:
crates/triggers/src/engine.rs:
crates/triggers/src/trigger.rs:
