/root/repo/target/debug/deps/cross_crate_provenance-3319f3d91489e8c9.d: crates/datagridflows/../../tests/cross_crate_provenance.rs

/root/repo/target/debug/deps/cross_crate_provenance-3319f3d91489e8c9: crates/datagridflows/../../tests/cross_crate_provenance.rs

crates/datagridflows/../../tests/cross_crate_provenance.rs:
