/root/repo/target/debug/deps/proptest-fa1667b40a33ab2f.d: .stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-fa1667b40a33ab2f.rlib: .stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-fa1667b40a33ab2f.rmeta: .stubs/proptest/src/lib.rs

.stubs/proptest/src/lib.rs:
