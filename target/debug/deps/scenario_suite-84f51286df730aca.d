/root/repo/target/debug/deps/scenario_suite-84f51286df730aca.d: crates/datagridflows/../../tests/scenario_suite.rs

/root/repo/target/debug/deps/scenario_suite-84f51286df730aca: crates/datagridflows/../../tests/scenario_suite.rs

crates/datagridflows/../../tests/scenario_suite.rs:
