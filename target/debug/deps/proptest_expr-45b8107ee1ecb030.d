/root/repo/target/debug/deps/proptest_expr-45b8107ee1ecb030.d: crates/dgl/tests/proptest_expr.rs

/root/repo/target/debug/deps/proptest_expr-45b8107ee1ecb030: crates/dgl/tests/proptest_expr.rs

crates/dgl/tests/proptest_expr.rs:
