/root/repo/target/debug/deps/dgf_dfms-fdbe0a36e6c99e73.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/network.rs crates/core/src/provenance.rs crates/core/src/run.rs crates/core/src/server.rs

/root/repo/target/debug/deps/libdgf_dfms-fdbe0a36e6c99e73.rlib: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/network.rs crates/core/src/provenance.rs crates/core/src/run.rs crates/core/src/server.rs

/root/repo/target/debug/deps/libdgf_dfms-fdbe0a36e6c99e73.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/network.rs crates/core/src/provenance.rs crates/core/src/run.rs crates/core/src/server.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/network.rs:
crates/core/src/provenance.rs:
crates/core/src/run.rs:
crates/core/src/server.rs:
