/root/repo/target/debug/deps/dgf_dfms-bac4bc28b3f401a9.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/network.rs crates/core/src/provenance.rs crates/core/src/run.rs crates/core/src/server.rs

/root/repo/target/debug/deps/libdgf_dfms-bac4bc28b3f401a9.rlib: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/network.rs crates/core/src/provenance.rs crates/core/src/run.rs crates/core/src/server.rs

/root/repo/target/debug/deps/libdgf_dfms-bac4bc28b3f401a9.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/network.rs crates/core/src/provenance.rs crates/core/src/run.rs crates/core/src/server.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/network.rs:
crates/core/src/provenance.rs:
crates/core/src/run.rs:
crates/core/src/server.rs:
