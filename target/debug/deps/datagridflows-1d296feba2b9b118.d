/root/repo/target/debug/deps/datagridflows-1d296feba2b9b118.d: crates/datagridflows/src/lib.rs

/root/repo/target/debug/deps/libdatagridflows-1d296feba2b9b118.rlib: crates/datagridflows/src/lib.rs

/root/repo/target/debug/deps/libdatagridflows-1d296feba2b9b118.rmeta: crates/datagridflows/src/lib.rs

crates/datagridflows/src/lib.rs:
