/root/repo/target/debug/deps/dgf_triggers-08d517b285b69b77.d: crates/triggers/src/lib.rs crates/triggers/src/engine.rs crates/triggers/src/trigger.rs

/root/repo/target/debug/deps/libdgf_triggers-08d517b285b69b77.rlib: crates/triggers/src/lib.rs crates/triggers/src/engine.rs crates/triggers/src/trigger.rs

/root/repo/target/debug/deps/libdgf_triggers-08d517b285b69b77.rmeta: crates/triggers/src/lib.rs crates/triggers/src/engine.rs crates/triggers/src/trigger.rs

crates/triggers/src/lib.rs:
crates/triggers/src/engine.rs:
crates/triggers/src/trigger.rs:
