/root/repo/target/debug/deps/dgf_xml-06dd3cba533bbc51.d: crates/xml/src/lib.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/parser.rs crates/xml/src/tree.rs crates/xml/src/writer.rs

/root/repo/target/debug/deps/libdgf_xml-06dd3cba533bbc51.rmeta: crates/xml/src/lib.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/parser.rs crates/xml/src/tree.rs crates/xml/src/writer.rs

crates/xml/src/lib.rs:
crates/xml/src/error.rs:
crates/xml/src/escape.rs:
crates/xml/src/parser.rs:
crates/xml/src/tree.rs:
crates/xml/src/writer.rs:
