/root/repo/target/debug/deps/dgf_baselines-b4754459e3250a39.d: crates/baselines/src/lib.rs crates/baselines/src/client_engine.rs crates/baselines/src/cron.rs

/root/repo/target/debug/deps/libdgf_baselines-b4754459e3250a39.rmeta: crates/baselines/src/lib.rs crates/baselines/src/client_engine.rs crates/baselines/src/cron.rs

crates/baselines/src/lib.rs:
crates/baselines/src/client_engine.rs:
crates/baselines/src/cron.rs:
