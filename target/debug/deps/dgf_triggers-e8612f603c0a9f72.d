/root/repo/target/debug/deps/dgf_triggers-e8612f603c0a9f72.d: crates/triggers/src/lib.rs crates/triggers/src/engine.rs crates/triggers/src/trigger.rs

/root/repo/target/debug/deps/dgf_triggers-e8612f603c0a9f72: crates/triggers/src/lib.rs crates/triggers/src/engine.rs crates/triggers/src/trigger.rs

crates/triggers/src/lib.rs:
crates/triggers/src/engine.rs:
crates/triggers/src/trigger.rs:
