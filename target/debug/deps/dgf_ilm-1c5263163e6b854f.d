/root/repo/target/debug/deps/dgf_ilm-1c5263163e6b854f.d: crates/ilm/src/lib.rs crates/ilm/src/job.rs crates/ilm/src/policy.rs crates/ilm/src/star.rs crates/ilm/src/value.rs

/root/repo/target/debug/deps/dgf_ilm-1c5263163e6b854f: crates/ilm/src/lib.rs crates/ilm/src/job.rs crates/ilm/src/policy.rs crates/ilm/src/star.rs crates/ilm/src/value.rs

crates/ilm/src/lib.rs:
crates/ilm/src/job.rs:
crates/ilm/src/policy.rs:
crates/ilm/src/star.rs:
crates/ilm/src/value.rs:
