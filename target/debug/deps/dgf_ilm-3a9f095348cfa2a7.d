/root/repo/target/debug/deps/dgf_ilm-3a9f095348cfa2a7.d: crates/ilm/src/lib.rs crates/ilm/src/job.rs crates/ilm/src/policy.rs crates/ilm/src/star.rs crates/ilm/src/value.rs

/root/repo/target/debug/deps/libdgf_ilm-3a9f095348cfa2a7.rmeta: crates/ilm/src/lib.rs crates/ilm/src/job.rs crates/ilm/src/policy.rs crates/ilm/src/star.rs crates/ilm/src/value.rs

crates/ilm/src/lib.rs:
crates/ilm/src/job.rs:
crates/ilm/src/policy.rs:
crates/ilm/src/star.rs:
crates/ilm/src/value.rs:
