/root/repo/target/debug/deps/rand-6bed326025859123.d: .stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-6bed326025859123.rlib: .stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-6bed326025859123.rmeta: .stubs/rand/src/lib.rs

.stubs/rand/src/lib.rs:
