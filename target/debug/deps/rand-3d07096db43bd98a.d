/root/repo/target/debug/deps/rand-3d07096db43bd98a.d: .stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-3d07096db43bd98a.rmeta: .stubs/rand/src/lib.rs

.stubs/rand/src/lib.rs:
