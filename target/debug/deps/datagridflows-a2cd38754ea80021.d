/root/repo/target/debug/deps/datagridflows-a2cd38754ea80021.d: crates/datagridflows/src/lib.rs

/root/repo/target/debug/deps/libdatagridflows-a2cd38754ea80021.rmeta: crates/datagridflows/src/lib.rs

crates/datagridflows/src/lib.rs:
