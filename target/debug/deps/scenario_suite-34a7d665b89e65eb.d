/root/repo/target/debug/deps/scenario_suite-34a7d665b89e65eb.d: crates/datagridflows/../../tests/scenario_suite.rs

/root/repo/target/debug/deps/scenario_suite-34a7d665b89e65eb: crates/datagridflows/../../tests/scenario_suite.rs

crates/datagridflows/../../tests/scenario_suite.rs:
