/root/repo/target/debug/deps/dgf_scheduler-ca4af8595cb03140.d: crates/scheduler/src/lib.rs crates/scheduler/src/binding.rs crates/scheduler/src/cost.rs crates/scheduler/src/infra.rs crates/scheduler/src/planner.rs crates/scheduler/src/task.rs crates/scheduler/src/virtual_data.rs

/root/repo/target/debug/deps/dgf_scheduler-ca4af8595cb03140: crates/scheduler/src/lib.rs crates/scheduler/src/binding.rs crates/scheduler/src/cost.rs crates/scheduler/src/infra.rs crates/scheduler/src/planner.rs crates/scheduler/src/task.rs crates/scheduler/src/virtual_data.rs

crates/scheduler/src/lib.rs:
crates/scheduler/src/binding.rs:
crates/scheduler/src/cost.rs:
crates/scheduler/src/infra.rs:
crates/scheduler/src/planner.rs:
crates/scheduler/src/task.rs:
crates/scheduler/src/virtual_data.rs:
