/root/repo/target/debug/deps/dgf_dfms-6b8e427415552925.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/network.rs crates/core/src/provenance.rs crates/core/src/run.rs crates/core/src/server.rs

/root/repo/target/debug/deps/dgf_dfms-6b8e427415552925: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/network.rs crates/core/src/provenance.rs crates/core/src/run.rs crates/core/src/server.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/network.rs:
crates/core/src/provenance.rs:
crates/core/src/run.rs:
crates/core/src/server.rs:
