/root/repo/target/debug/deps/dgf_triggers-45d3fa117e910450.d: crates/triggers/src/lib.rs crates/triggers/src/engine.rs crates/triggers/src/trigger.rs

/root/repo/target/debug/deps/dgf_triggers-45d3fa117e910450: crates/triggers/src/lib.rs crates/triggers/src/engine.rs crates/triggers/src/trigger.rs

crates/triggers/src/lib.rs:
crates/triggers/src/engine.rs:
crates/triggers/src/trigger.rs:
