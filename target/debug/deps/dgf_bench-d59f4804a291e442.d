/root/repo/target/debug/deps/dgf_bench-d59f4804a291e442.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdgf_bench-d59f4804a291e442.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libdgf_bench-d59f4804a291e442.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
