/root/repo/target/debug/deps/end_to_end-9e7f12a7b86d060c.d: crates/datagridflows/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-9e7f12a7b86d060c: crates/datagridflows/../../tests/end_to_end.rs

crates/datagridflows/../../tests/end_to_end.rs:
