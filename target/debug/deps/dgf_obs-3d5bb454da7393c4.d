/root/repo/target/debug/deps/dgf_obs-3d5bb454da7393c4.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/ring.rs

/root/repo/target/debug/deps/dgf_obs-3d5bb454da7393c4: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/ring.rs

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
crates/obs/src/ring.rs:
