/root/repo/target/debug/deps/dgf_dgl-1b2a21a966d08b27.d: crates/dgl/src/lib.rs crates/dgl/src/builder.rs crates/dgl/src/error.rs crates/dgl/src/expr.rs crates/dgl/src/flow.rs crates/dgl/src/request.rs crates/dgl/src/response.rs crates/dgl/src/scope.rs crates/dgl/src/status.rs crates/dgl/src/step.rs crates/dgl/src/value.rs crates/dgl/src/xml_codec.rs

/root/repo/target/debug/deps/libdgf_dgl-1b2a21a966d08b27.rmeta: crates/dgl/src/lib.rs crates/dgl/src/builder.rs crates/dgl/src/error.rs crates/dgl/src/expr.rs crates/dgl/src/flow.rs crates/dgl/src/request.rs crates/dgl/src/response.rs crates/dgl/src/scope.rs crates/dgl/src/status.rs crates/dgl/src/step.rs crates/dgl/src/value.rs crates/dgl/src/xml_codec.rs

crates/dgl/src/lib.rs:
crates/dgl/src/builder.rs:
crates/dgl/src/error.rs:
crates/dgl/src/expr.rs:
crates/dgl/src/flow.rs:
crates/dgl/src/request.rs:
crates/dgl/src/response.rs:
crates/dgl/src/scope.rs:
crates/dgl/src/status.rs:
crates/dgl/src/step.rs:
crates/dgl/src/value.rs:
crates/dgl/src/xml_codec.rs:
