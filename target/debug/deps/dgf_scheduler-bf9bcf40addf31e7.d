/root/repo/target/debug/deps/dgf_scheduler-bf9bcf40addf31e7.d: crates/scheduler/src/lib.rs crates/scheduler/src/binding.rs crates/scheduler/src/cost.rs crates/scheduler/src/infra.rs crates/scheduler/src/planner.rs crates/scheduler/src/task.rs crates/scheduler/src/virtual_data.rs

/root/repo/target/debug/deps/libdgf_scheduler-bf9bcf40addf31e7.rlib: crates/scheduler/src/lib.rs crates/scheduler/src/binding.rs crates/scheduler/src/cost.rs crates/scheduler/src/infra.rs crates/scheduler/src/planner.rs crates/scheduler/src/task.rs crates/scheduler/src/virtual_data.rs

/root/repo/target/debug/deps/libdgf_scheduler-bf9bcf40addf31e7.rmeta: crates/scheduler/src/lib.rs crates/scheduler/src/binding.rs crates/scheduler/src/cost.rs crates/scheduler/src/infra.rs crates/scheduler/src/planner.rs crates/scheduler/src/task.rs crates/scheduler/src/virtual_data.rs

crates/scheduler/src/lib.rs:
crates/scheduler/src/binding.rs:
crates/scheduler/src/cost.rs:
crates/scheduler/src/infra.rs:
crates/scheduler/src/planner.rs:
crates/scheduler/src/task.rs:
crates/scheduler/src/virtual_data.rs:
