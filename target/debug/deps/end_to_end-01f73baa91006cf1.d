/root/repo/target/debug/deps/end_to_end-01f73baa91006cf1.d: crates/datagridflows/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-01f73baa91006cf1: crates/datagridflows/../../tests/end_to_end.rs

crates/datagridflows/../../tests/end_to_end.rs:
