/root/repo/target/debug/deps/dgf_obs-3382ba9738e1e932.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/ring.rs

/root/repo/target/debug/deps/libdgf_obs-3382ba9738e1e932.rlib: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/ring.rs

/root/repo/target/debug/deps/libdgf_obs-3382ba9738e1e932.rmeta: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/ring.rs

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
crates/obs/src/ring.rs:
