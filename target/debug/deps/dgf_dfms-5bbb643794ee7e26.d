/root/repo/target/debug/deps/dgf_dfms-5bbb643794ee7e26.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/network.rs crates/core/src/provenance.rs crates/core/src/run.rs crates/core/src/server.rs

/root/repo/target/debug/deps/libdgf_dfms-5bbb643794ee7e26.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/network.rs crates/core/src/provenance.rs crates/core/src/run.rs crates/core/src/server.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/network.rs:
crates/core/src/provenance.rs:
crates/core/src/run.rs:
crates/core/src/server.rs:
