/root/repo/target/debug/deps/dgf_simgrid-a015d4e47ff2684b.d: crates/simgrid/src/lib.rs crates/simgrid/src/builder.rs crates/simgrid/src/compute.rs crates/simgrid/src/event.rs crates/simgrid/src/failure.rs crates/simgrid/src/storage.rs crates/simgrid/src/time.rs crates/simgrid/src/topology.rs crates/simgrid/src/transfer.rs crates/simgrid/src/window.rs

/root/repo/target/debug/deps/libdgf_simgrid-a015d4e47ff2684b.rmeta: crates/simgrid/src/lib.rs crates/simgrid/src/builder.rs crates/simgrid/src/compute.rs crates/simgrid/src/event.rs crates/simgrid/src/failure.rs crates/simgrid/src/storage.rs crates/simgrid/src/time.rs crates/simgrid/src/topology.rs crates/simgrid/src/transfer.rs crates/simgrid/src/window.rs

crates/simgrid/src/lib.rs:
crates/simgrid/src/builder.rs:
crates/simgrid/src/compute.rs:
crates/simgrid/src/event.rs:
crates/simgrid/src/failure.rs:
crates/simgrid/src/storage.rs:
crates/simgrid/src/time.rs:
crates/simgrid/src/topology.rs:
crates/simgrid/src/transfer.rs:
crates/simgrid/src/window.rs:
