/root/repo/target/debug/deps/bytes-a389f28c2daeee0e.d: .stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-a389f28c2daeee0e.rlib: .stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-a389f28c2daeee0e.rmeta: .stubs/bytes/src/lib.rs

.stubs/bytes/src/lib.rs:
