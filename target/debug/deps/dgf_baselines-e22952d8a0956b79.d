/root/repo/target/debug/deps/dgf_baselines-e22952d8a0956b79.d: crates/baselines/src/lib.rs crates/baselines/src/client_engine.rs crates/baselines/src/cron.rs

/root/repo/target/debug/deps/libdgf_baselines-e22952d8a0956b79.rlib: crates/baselines/src/lib.rs crates/baselines/src/client_engine.rs crates/baselines/src/cron.rs

/root/repo/target/debug/deps/libdgf_baselines-e22952d8a0956b79.rmeta: crates/baselines/src/lib.rs crates/baselines/src/client_engine.rs crates/baselines/src/cron.rs

crates/baselines/src/lib.rs:
crates/baselines/src/client_engine.rs:
crates/baselines/src/cron.rs:
