/root/repo/target/debug/libcriterion.rlib: /root/repo/.stubs/criterion/src/lib.rs
