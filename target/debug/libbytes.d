/root/repo/target/debug/libbytes.rlib: /root/repo/.stubs/bytes/src/lib.rs
