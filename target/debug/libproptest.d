/root/repo/target/debug/libproptest.rlib: /root/repo/.stubs/proptest/src/lib.rs
