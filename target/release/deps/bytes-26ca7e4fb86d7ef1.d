/root/repo/target/release/deps/bytes-26ca7e4fb86d7ef1.d: .stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-26ca7e4fb86d7ef1.rlib: .stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-26ca7e4fb86d7ef1.rmeta: .stubs/bytes/src/lib.rs

.stubs/bytes/src/lib.rs:
