/root/repo/target/release/deps/dgf_baselines-ad8453f56c7536e1.d: crates/baselines/src/lib.rs crates/baselines/src/client_engine.rs crates/baselines/src/cron.rs

/root/repo/target/release/deps/libdgf_baselines-ad8453f56c7536e1.rlib: crates/baselines/src/lib.rs crates/baselines/src/client_engine.rs crates/baselines/src/cron.rs

/root/repo/target/release/deps/libdgf_baselines-ad8453f56c7536e1.rmeta: crates/baselines/src/lib.rs crates/baselines/src/client_engine.rs crates/baselines/src/cron.rs

crates/baselines/src/lib.rs:
crates/baselines/src/client_engine.rs:
crates/baselines/src/cron.rs:
