/root/repo/target/release/deps/dgf_simgrid-3df41238175d8506.d: crates/simgrid/src/lib.rs crates/simgrid/src/builder.rs crates/simgrid/src/compute.rs crates/simgrid/src/event.rs crates/simgrid/src/failure.rs crates/simgrid/src/storage.rs crates/simgrid/src/time.rs crates/simgrid/src/topology.rs crates/simgrid/src/transfer.rs crates/simgrid/src/window.rs

/root/repo/target/release/deps/libdgf_simgrid-3df41238175d8506.rlib: crates/simgrid/src/lib.rs crates/simgrid/src/builder.rs crates/simgrid/src/compute.rs crates/simgrid/src/event.rs crates/simgrid/src/failure.rs crates/simgrid/src/storage.rs crates/simgrid/src/time.rs crates/simgrid/src/topology.rs crates/simgrid/src/transfer.rs crates/simgrid/src/window.rs

/root/repo/target/release/deps/libdgf_simgrid-3df41238175d8506.rmeta: crates/simgrid/src/lib.rs crates/simgrid/src/builder.rs crates/simgrid/src/compute.rs crates/simgrid/src/event.rs crates/simgrid/src/failure.rs crates/simgrid/src/storage.rs crates/simgrid/src/time.rs crates/simgrid/src/topology.rs crates/simgrid/src/transfer.rs crates/simgrid/src/window.rs

crates/simgrid/src/lib.rs:
crates/simgrid/src/builder.rs:
crates/simgrid/src/compute.rs:
crates/simgrid/src/event.rs:
crates/simgrid/src/failure.rs:
crates/simgrid/src/storage.rs:
crates/simgrid/src/time.rs:
crates/simgrid/src/topology.rs:
crates/simgrid/src/transfer.rs:
crates/simgrid/src/window.rs:
