/root/repo/target/release/deps/criterion-7f477a169f1314fb.d: .stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-7f477a169f1314fb.rlib: .stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-7f477a169f1314fb.rmeta: .stubs/criterion/src/lib.rs

.stubs/criterion/src/lib.rs:
