/root/repo/target/release/deps/dgf_bench-6f86d134da84e080.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdgf_bench-6f86d134da84e080.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdgf_bench-6f86d134da84e080.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
