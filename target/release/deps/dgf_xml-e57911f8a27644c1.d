/root/repo/target/release/deps/dgf_xml-e57911f8a27644c1.d: crates/xml/src/lib.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/parser.rs crates/xml/src/tree.rs crates/xml/src/writer.rs

/root/repo/target/release/deps/libdgf_xml-e57911f8a27644c1.rlib: crates/xml/src/lib.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/parser.rs crates/xml/src/tree.rs crates/xml/src/writer.rs

/root/repo/target/release/deps/libdgf_xml-e57911f8a27644c1.rmeta: crates/xml/src/lib.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/parser.rs crates/xml/src/tree.rs crates/xml/src/writer.rs

crates/xml/src/lib.rs:
crates/xml/src/error.rs:
crates/xml/src/escape.rs:
crates/xml/src/parser.rs:
crates/xml/src/tree.rs:
crates/xml/src/writer.rs:
