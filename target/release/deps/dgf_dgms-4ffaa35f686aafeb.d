/root/repo/target/release/deps/dgf_dgms-4ffaa35f686aafeb.d: crates/dgms/src/lib.rs crates/dgms/src/acl.rs crates/dgms/src/content.rs crates/dgms/src/error.rs crates/dgms/src/grid.rs crates/dgms/src/md5.rs crates/dgms/src/meta.rs crates/dgms/src/namespace.rs crates/dgms/src/ops.rs crates/dgms/src/path.rs

/root/repo/target/release/deps/libdgf_dgms-4ffaa35f686aafeb.rlib: crates/dgms/src/lib.rs crates/dgms/src/acl.rs crates/dgms/src/content.rs crates/dgms/src/error.rs crates/dgms/src/grid.rs crates/dgms/src/md5.rs crates/dgms/src/meta.rs crates/dgms/src/namespace.rs crates/dgms/src/ops.rs crates/dgms/src/path.rs

/root/repo/target/release/deps/libdgf_dgms-4ffaa35f686aafeb.rmeta: crates/dgms/src/lib.rs crates/dgms/src/acl.rs crates/dgms/src/content.rs crates/dgms/src/error.rs crates/dgms/src/grid.rs crates/dgms/src/md5.rs crates/dgms/src/meta.rs crates/dgms/src/namespace.rs crates/dgms/src/ops.rs crates/dgms/src/path.rs

crates/dgms/src/lib.rs:
crates/dgms/src/acl.rs:
crates/dgms/src/content.rs:
crates/dgms/src/error.rs:
crates/dgms/src/grid.rs:
crates/dgms/src/md5.rs:
crates/dgms/src/meta.rs:
crates/dgms/src/namespace.rs:
crates/dgms/src/ops.rs:
crates/dgms/src/path.rs:
