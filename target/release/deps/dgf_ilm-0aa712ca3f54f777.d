/root/repo/target/release/deps/dgf_ilm-0aa712ca3f54f777.d: crates/ilm/src/lib.rs crates/ilm/src/job.rs crates/ilm/src/policy.rs crates/ilm/src/star.rs crates/ilm/src/value.rs

/root/repo/target/release/deps/libdgf_ilm-0aa712ca3f54f777.rlib: crates/ilm/src/lib.rs crates/ilm/src/job.rs crates/ilm/src/policy.rs crates/ilm/src/star.rs crates/ilm/src/value.rs

/root/repo/target/release/deps/libdgf_ilm-0aa712ca3f54f777.rmeta: crates/ilm/src/lib.rs crates/ilm/src/job.rs crates/ilm/src/policy.rs crates/ilm/src/star.rs crates/ilm/src/value.rs

crates/ilm/src/lib.rs:
crates/ilm/src/job.rs:
crates/ilm/src/policy.rs:
crates/ilm/src/star.rs:
crates/ilm/src/value.rs:
