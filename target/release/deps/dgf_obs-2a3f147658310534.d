/root/repo/target/release/deps/dgf_obs-2a3f147658310534.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/ring.rs

/root/repo/target/release/deps/libdgf_obs-2a3f147658310534.rlib: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/ring.rs

/root/repo/target/release/deps/libdgf_obs-2a3f147658310534.rmeta: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/ring.rs

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
crates/obs/src/ring.rs:
