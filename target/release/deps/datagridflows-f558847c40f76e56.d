/root/repo/target/release/deps/datagridflows-f558847c40f76e56.d: crates/datagridflows/src/lib.rs

/root/repo/target/release/deps/libdatagridflows-f558847c40f76e56.rlib: crates/datagridflows/src/lib.rs

/root/repo/target/release/deps/libdatagridflows-f558847c40f76e56.rmeta: crates/datagridflows/src/lib.rs

crates/datagridflows/src/lib.rs:
