/root/repo/target/release/deps/proptest-3c6a55a21bd4e0c1.d: .stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-3c6a55a21bd4e0c1.rlib: .stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-3c6a55a21bd4e0c1.rmeta: .stubs/proptest/src/lib.rs

.stubs/proptest/src/lib.rs:
