/root/repo/target/release/deps/dgf_scheduler-81c9be18b0f2b272.d: crates/scheduler/src/lib.rs crates/scheduler/src/binding.rs crates/scheduler/src/cost.rs crates/scheduler/src/infra.rs crates/scheduler/src/planner.rs crates/scheduler/src/task.rs crates/scheduler/src/virtual_data.rs

/root/repo/target/release/deps/libdgf_scheduler-81c9be18b0f2b272.rlib: crates/scheduler/src/lib.rs crates/scheduler/src/binding.rs crates/scheduler/src/cost.rs crates/scheduler/src/infra.rs crates/scheduler/src/planner.rs crates/scheduler/src/task.rs crates/scheduler/src/virtual_data.rs

/root/repo/target/release/deps/libdgf_scheduler-81c9be18b0f2b272.rmeta: crates/scheduler/src/lib.rs crates/scheduler/src/binding.rs crates/scheduler/src/cost.rs crates/scheduler/src/infra.rs crates/scheduler/src/planner.rs crates/scheduler/src/task.rs crates/scheduler/src/virtual_data.rs

crates/scheduler/src/lib.rs:
crates/scheduler/src/binding.rs:
crates/scheduler/src/cost.rs:
crates/scheduler/src/infra.rs:
crates/scheduler/src/planner.rs:
crates/scheduler/src/task.rs:
crates/scheduler/src/virtual_data.rs:
