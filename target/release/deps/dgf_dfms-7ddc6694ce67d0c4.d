/root/repo/target/release/deps/dgf_dfms-7ddc6694ce67d0c4.d: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/network.rs crates/core/src/provenance.rs crates/core/src/run.rs crates/core/src/server.rs

/root/repo/target/release/deps/libdgf_dfms-7ddc6694ce67d0c4.rlib: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/network.rs crates/core/src/provenance.rs crates/core/src/run.rs crates/core/src/server.rs

/root/repo/target/release/deps/libdgf_dfms-7ddc6694ce67d0c4.rmeta: crates/core/src/lib.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/network.rs crates/core/src/provenance.rs crates/core/src/run.rs crates/core/src/server.rs

crates/core/src/lib.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/network.rs:
crates/core/src/provenance.rs:
crates/core/src/run.rs:
crates/core/src/server.rs:
