/root/repo/target/release/deps/dgf_bench-0ef5f952177d0ba5.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdgf_bench-0ef5f952177d0ba5.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libdgf_bench-0ef5f952177d0ba5.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
