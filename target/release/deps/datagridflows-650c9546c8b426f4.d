/root/repo/target/release/deps/datagridflows-650c9546c8b426f4.d: crates/datagridflows/src/lib.rs

/root/repo/target/release/deps/libdatagridflows-650c9546c8b426f4.rlib: crates/datagridflows/src/lib.rs

/root/repo/target/release/deps/libdatagridflows-650c9546c8b426f4.rmeta: crates/datagridflows/src/lib.rs

crates/datagridflows/src/lib.rs:
