/root/repo/target/release/deps/parking_lot-82b02f166a8bd087.d: .stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-82b02f166a8bd087.rlib: .stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-82b02f166a8bd087.rmeta: .stubs/parking_lot/src/lib.rs

.stubs/parking_lot/src/lib.rs:
