/root/repo/target/release/deps/experiments-c02206c0e3cee262.d: crates/bench/benches/experiments.rs

/root/repo/target/release/deps/experiments-c02206c0e3cee262: crates/bench/benches/experiments.rs

crates/bench/benches/experiments.rs:
