/root/repo/target/release/deps/rand-098070e1a859b3b3.d: .stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-098070e1a859b3b3.rlib: .stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-098070e1a859b3b3.rmeta: .stubs/rand/src/lib.rs

.stubs/rand/src/lib.rs:
