/root/repo/target/release/deps/crossbeam-753d89a75dd370e4.d: .stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-753d89a75dd370e4.rlib: .stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-753d89a75dd370e4.rmeta: .stubs/crossbeam/src/lib.rs

.stubs/crossbeam/src/lib.rs:
