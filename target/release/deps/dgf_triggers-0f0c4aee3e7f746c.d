/root/repo/target/release/deps/dgf_triggers-0f0c4aee3e7f746c.d: crates/triggers/src/lib.rs crates/triggers/src/engine.rs crates/triggers/src/trigger.rs

/root/repo/target/release/deps/libdgf_triggers-0f0c4aee3e7f746c.rlib: crates/triggers/src/lib.rs crates/triggers/src/engine.rs crates/triggers/src/trigger.rs

/root/repo/target/release/deps/libdgf_triggers-0f0c4aee3e7f746c.rmeta: crates/triggers/src/lib.rs crates/triggers/src/engine.rs crates/triggers/src/trigger.rs

crates/triggers/src/lib.rs:
crates/triggers/src/engine.rs:
crates/triggers/src/trigger.rs:
