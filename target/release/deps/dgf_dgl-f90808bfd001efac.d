/root/repo/target/release/deps/dgf_dgl-f90808bfd001efac.d: crates/dgl/src/lib.rs crates/dgl/src/builder.rs crates/dgl/src/error.rs crates/dgl/src/expr.rs crates/dgl/src/flow.rs crates/dgl/src/request.rs crates/dgl/src/response.rs crates/dgl/src/scope.rs crates/dgl/src/status.rs crates/dgl/src/step.rs crates/dgl/src/value.rs crates/dgl/src/xml_codec.rs

/root/repo/target/release/deps/libdgf_dgl-f90808bfd001efac.rlib: crates/dgl/src/lib.rs crates/dgl/src/builder.rs crates/dgl/src/error.rs crates/dgl/src/expr.rs crates/dgl/src/flow.rs crates/dgl/src/request.rs crates/dgl/src/response.rs crates/dgl/src/scope.rs crates/dgl/src/status.rs crates/dgl/src/step.rs crates/dgl/src/value.rs crates/dgl/src/xml_codec.rs

/root/repo/target/release/deps/libdgf_dgl-f90808bfd001efac.rmeta: crates/dgl/src/lib.rs crates/dgl/src/builder.rs crates/dgl/src/error.rs crates/dgl/src/expr.rs crates/dgl/src/flow.rs crates/dgl/src/request.rs crates/dgl/src/response.rs crates/dgl/src/scope.rs crates/dgl/src/status.rs crates/dgl/src/step.rs crates/dgl/src/value.rs crates/dgl/src/xml_codec.rs

crates/dgl/src/lib.rs:
crates/dgl/src/builder.rs:
crates/dgl/src/error.rs:
crates/dgl/src/expr.rs:
crates/dgl/src/flow.rs:
crates/dgl/src/request.rs:
crates/dgl/src/response.rs:
crates/dgl/src/scope.rs:
crates/dgl/src/status.rs:
crates/dgl/src/step.rs:
crates/dgl/src/value.rs:
crates/dgl/src/xml_codec.rs:
