/root/repo/target/release/deps/experiments-53e87c2aebb9afa8.d: crates/bench/benches/experiments.rs

/root/repo/target/release/deps/experiments-53e87c2aebb9afa8: crates/bench/benches/experiments.rs

crates/bench/benches/experiments.rs:
